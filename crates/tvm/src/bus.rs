//! The trace bus: batched trace events as a first-class intermediate
//! representation.
//!
//! The TEST hardware observes one sequential execution; every analysis
//! is a *consumer* of that single event stream. This module promotes
//! the stream from transient virtual-dispatch callbacks to a durable,
//! batched IR so the pipeline can **record once and replay many**:
//!
//! * [`EventBatch`] — a fixed-capacity chunk of [`Event`]s with a
//!   struct-of-arrays fast path for heap loads/stores (which dominate
//!   event volume by an order of magnitude);
//! * [`Batcher`] — a [`TraceSink`] that groups an emission stream into
//!   batches and hands each full batch to a flush callback;
//! * [`Tee`] — a fan-out combinator: one emission feeds N sinks;
//! * [`TraceBus`] — the orchestrator. It replays batches into labelled
//!   sinks either inline ([`TraceBus::replay`]) or with one thread per
//!   sink draining bounded channels ([`TraceBus::replay_threaded`]),
//!   and can drive the interpreter directly so consumers drain batches
//!   *while the program still executes*
//!   ([`TraceBus::run_threaded`]). Every mode produces a [`BusReport`]
//!   with per-sink event counts, drain times and (in threaded mode)
//!   lag/drop counters.
//!
//! Replay order is the emission order, so any sink observes exactly
//! the stream a direct [`crate::interp::Interp`] run would have fed
//! it — analyses are bit-identical across modes.

use crate::cost::CostModel;
use crate::hotloc::LocationHook;
use crate::interp::{FinalState, Interp, RunResult};
use crate::isa::Pc;
use crate::program::Program;
use crate::record::Event;
use crate::trace::{Addr, Cycles, TraceSink};
use crate::VmError;
use obs::{Trace as ObsTrace, TrackId};
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::mpsc::{sync_channel, TrySendError};
use std::sync::Arc;
use std::time::Instant;

/// Default number of events per [`EventBatch`].
pub const DEFAULT_BATCH_CAPACITY: usize = 4096;

/// Default bound of the per-sink batch channel in threaded modes.
pub const DEFAULT_CHANNEL_DEPTH: usize = 8;

/// The discriminant of a trace event, for per-kind accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventKind {
    /// Heap (or static) load.
    HeapLoad,
    /// Heap (or static) store.
    HeapStore,
    /// `lwl` local-variable load annotation.
    LocalLoad,
    /// `swl` local-variable store annotation.
    LocalStore,
    /// `sloop` loop entry.
    LoopEnter,
    /// `eoi` thread boundary.
    LoopIter,
    /// `eloop` loop exit.
    LoopExit,
    /// End-of-STL statistics read.
    StatsRead,
    /// Function call.
    CallEnter,
    /// Function return.
    CallExit,
    /// First consumption of a call's return value.
    CallResultUse,
}

/// Number of distinct [`EventKind`]s.
pub const N_EVENT_KINDS: usize = 11;

impl EventKind {
    /// Every kind, in discriminant order.
    pub const ALL: [EventKind; N_EVENT_KINDS] = [
        EventKind::HeapLoad,
        EventKind::HeapStore,
        EventKind::LocalLoad,
        EventKind::LocalStore,
        EventKind::LoopEnter,
        EventKind::LoopIter,
        EventKind::LoopExit,
        EventKind::StatsRead,
        EventKind::CallEnter,
        EventKind::CallExit,
        EventKind::CallResultUse,
    ];

    /// Dense index of this kind (0..[`N_EVENT_KINDS`]).
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::HeapLoad => "heap_load",
            EventKind::HeapStore => "heap_store",
            EventKind::LocalLoad => "local_load",
            EventKind::LocalStore => "local_store",
            EventKind::LoopEnter => "loop_enter",
            EventKind::LoopIter => "loop_iter",
            EventKind::LoopExit => "loop_exit",
            EventKind::StatsRead => "stats_read",
            EventKind::CallEnter => "call_enter",
            EventKind::CallExit => "call_exit",
            EventKind::CallResultUse => "call_result_use",
        }
    }

    /// Inverse of [`EventKind::name`].
    pub fn from_name(name: &str) -> Option<EventKind> {
        EventKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

impl Event {
    /// The kind of this event.
    pub fn kind(&self) -> EventKind {
        match self {
            Event::HeapLoad(..) => EventKind::HeapLoad,
            Event::HeapStore(..) => EventKind::HeapStore,
            Event::LocalLoad(..) => EventKind::LocalLoad,
            Event::LocalStore(..) => EventKind::LocalStore,
            Event::LoopEnter(..) => EventKind::LoopEnter,
            Event::LoopIter(..) => EventKind::LoopIter,
            Event::LoopExit(..) => EventKind::LoopExit,
            Event::StatsRead(..) => EventKind::StatsRead,
            Event::CallEnter(..) => EventKind::CallEnter,
            Event::CallExit(..) => EventKind::CallExit,
            Event::CallResultUse(..) => EventKind::CallResultUse,
        }
    }
}

/// Event counts by [`EventKind`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KindCounts {
    counts: [u64; N_EVENT_KINDS],
}

impl KindCounts {
    /// Records `n` events of `kind`.
    #[inline]
    pub fn add(&mut self, kind: EventKind, n: u64) {
        self.counts[kind.index()] += n;
    }

    /// Count for one kind.
    #[inline]
    pub fn get(&self, kind: EventKind) -> u64 {
        self.counts[kind.index()]
    }

    /// Total events across kinds.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Adds every count of `other` into `self`.
    pub fn merge(&mut self, other: &KindCounts) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
    }

    /// `(kind, count)` pairs in discriminant order.
    pub fn iter(&self) -> impl Iterator<Item = (EventKind, u64)> + '_ {
        EventKind::ALL.iter().map(move |&k| (k, self.get(k)))
    }
}

/// Control-stream entry: where the payload of one event lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ctrl {
    /// Payload in the heap struct-of-arrays columns; event is a load.
    HeapLoad,
    /// Payload in the heap struct-of-arrays columns; event is a store.
    HeapStore,
    /// Payload in the `misc` event vector.
    Misc,
}

/// A fixed-capacity chunk of trace events.
///
/// Heap loads and stores — the overwhelming majority of the stream —
/// are stored in struct-of-arrays columns (`addr`/`cycle`/`pc`); all
/// other events live in a side vector of [`Event`]. A one-byte control
/// stream preserves the exact emission order across both storages, so
/// [`EventBatch::replay_into`] reproduces the original stream exactly.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EventBatch {
    ctrl: Vec<Ctrl>,
    heap_addr: Vec<Addr>,
    heap_cycle: Vec<Cycles>,
    heap_pc: Vec<Pc>,
    misc: Vec<Event>,
}

impl EventBatch {
    /// Creates an empty batch sized for `capacity` events.
    pub fn with_capacity(capacity: usize) -> EventBatch {
        EventBatch {
            ctrl: Vec::with_capacity(capacity),
            // heap accesses dominate: size their columns for the bulk
            heap_addr: Vec::with_capacity(capacity),
            heap_cycle: Vec::with_capacity(capacity),
            heap_pc: Vec::with_capacity(capacity),
            misc: Vec::new(),
        }
    }

    /// Number of events in the batch.
    #[inline]
    pub fn len(&self) -> usize {
        self.ctrl.len()
    }

    /// True when no event was pushed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ctrl.is_empty()
    }

    /// Empties the batch, keeping its allocations for reuse. This is
    /// what lets the zero-copy replay path run allocation-free in the
    /// steady state: one buffer, filled and drained per batch.
    pub fn clear(&mut self) {
        self.ctrl.clear();
        self.heap_addr.clear();
        self.heap_cycle.clear();
        self.heap_pc.clear();
        self.misc.clear();
    }

    /// Appends a heap load without constructing an [`Event`].
    #[inline]
    pub fn push_heap_load(&mut self, addr: Addr, now: Cycles, pc: Pc) {
        self.ctrl.push(Ctrl::HeapLoad);
        self.heap_addr.push(addr);
        self.heap_cycle.push(now);
        self.heap_pc.push(pc);
    }

    /// Appends a heap store without constructing an [`Event`].
    #[inline]
    pub fn push_heap_store(&mut self, addr: Addr, now: Cycles, pc: Pc) {
        self.ctrl.push(Ctrl::HeapStore);
        self.heap_addr.push(addr);
        self.heap_cycle.push(now);
        self.heap_pc.push(pc);
    }

    /// Appends any event, routing heap accesses to the SoA columns.
    pub fn push(&mut self, event: Event) {
        match event {
            Event::HeapLoad(a, t, pc) => self.push_heap_load(a, t, pc),
            Event::HeapStore(a, t, pc) => self.push_heap_store(a, t, pc),
            e => {
                self.ctrl.push(Ctrl::Misc);
                self.misc.push(e);
            }
        }
    }

    /// Feeds every event into `sink` in emission order.
    pub fn replay_into<S: TraceSink + ?Sized>(&self, sink: &mut S) {
        let mut heap = 0usize;
        let mut misc = 0usize;
        for &c in &self.ctrl {
            match c {
                Ctrl::HeapLoad => {
                    sink.heap_load(
                        self.heap_addr[heap],
                        self.heap_cycle[heap],
                        self.heap_pc[heap],
                    );
                    heap += 1;
                }
                Ctrl::HeapStore => {
                    sink.heap_store(
                        self.heap_addr[heap],
                        self.heap_cycle[heap],
                        self.heap_pc[heap],
                    );
                    heap += 1;
                }
                Ctrl::Misc => {
                    match self.misc[misc] {
                        Event::LocalLoad(v, act, t, pc) => sink.local_load(v, act, t, pc),
                        Event::LocalStore(v, act, t, pc) => sink.local_store(v, act, t, pc),
                        Event::LoopEnter(l, n, act, t) => sink.loop_enter(l, n, act, t),
                        Event::LoopIter(l, t) => sink.loop_iter(l, t),
                        Event::LoopExit(l, t) => sink.loop_exit(l, t),
                        Event::StatsRead(l, t) => sink.stats_read(l, t),
                        Event::CallEnter(pc, act, t) => sink.call_enter(pc, act, t),
                        Event::CallExit(pc, t) => sink.call_exit(pc, t),
                        Event::CallResultUse(pc, t) => sink.call_result_use(pc, t),
                        Event::HeapLoad(..) | Event::HeapStore(..) => {
                            unreachable!("heap events live in the SoA columns, never in misc")
                        }
                    }
                    misc += 1;
                }
            }
        }
    }

    /// Reconstructs the events in emission order.
    pub fn events(&self) -> Vec<Event> {
        let mut out = Vec::with_capacity(self.len());
        let mut heap = 0usize;
        let mut misc = 0usize;
        for &c in &self.ctrl {
            match c {
                Ctrl::HeapLoad => {
                    out.push(Event::HeapLoad(
                        self.heap_addr[heap],
                        self.heap_cycle[heap],
                        self.heap_pc[heap],
                    ));
                    heap += 1;
                }
                Ctrl::HeapStore => {
                    out.push(Event::HeapStore(
                        self.heap_addr[heap],
                        self.heap_cycle[heap],
                        self.heap_pc[heap],
                    ));
                    heap += 1;
                }
                Ctrl::Misc => {
                    out.push(self.misc[misc]);
                    misc += 1;
                }
            }
        }
        out
    }

    /// Iterates the events in emission order without materializing a
    /// vector — heap accesses are reconstructed from the SoA columns
    /// on the fly. This is the hot-path companion to
    /// [`TraceSink::consume_batch`]: a sink that overrides it walks
    /// this iterator and dispatches concretely.
    pub fn iter(&self) -> EventBatchIter<'_> {
        EventBatchIter {
            batch: self,
            ctrl: 0,
            heap: 0,
            misc: 0,
        }
    }

    /// Per-kind event counts of this batch.
    pub fn kind_counts(&self) -> KindCounts {
        let mut k = KindCounts::default();
        for &c in &self.ctrl {
            match c {
                Ctrl::HeapLoad => k.add(EventKind::HeapLoad, 1),
                Ctrl::HeapStore => k.add(EventKind::HeapStore, 1),
                Ctrl::Misc => {}
            }
        }
        for e in &self.misc {
            k.add(e.kind(), 1);
        }
        k
    }
}

/// Iterator over an [`EventBatch`], yielding [`Event`]s in emission
/// order. Created by [`EventBatch::iter`].
#[derive(Debug, Clone)]
pub struct EventBatchIter<'a> {
    batch: &'a EventBatch,
    ctrl: usize,
    heap: usize,
    misc: usize,
}

impl Iterator for EventBatchIter<'_> {
    type Item = Event;

    #[inline]
    fn next(&mut self) -> Option<Event> {
        let c = *self.batch.ctrl.get(self.ctrl)?;
        self.ctrl += 1;
        Some(match c {
            Ctrl::HeapLoad => {
                let i = self.heap;
                self.heap += 1;
                Event::HeapLoad(
                    self.batch.heap_addr[i],
                    self.batch.heap_cycle[i],
                    self.batch.heap_pc[i],
                )
            }
            Ctrl::HeapStore => {
                let i = self.heap;
                self.heap += 1;
                Event::HeapStore(
                    self.batch.heap_addr[i],
                    self.batch.heap_cycle[i],
                    self.batch.heap_pc[i],
                )
            }
            Ctrl::Misc => {
                let i = self.misc;
                self.misc += 1;
                self.batch.misc[i]
            }
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rest = self.batch.ctrl.len() - self.ctrl;
        (rest, Some(rest))
    }
}

impl ExactSizeIterator for EventBatchIter<'_> {}

/// A [`TraceSink`] that groups the event stream into fixed-capacity
/// [`EventBatch`]es and hands each full batch to `flush`. Call
/// [`Batcher::finish`] to flush the final partial batch.
pub struct Batcher<F: FnMut(EventBatch)> {
    capacity: usize,
    batch: EventBatch,
    flush: F,
    batches: u64,
    events: u64,
}

impl<F: FnMut(EventBatch)> Batcher<F> {
    /// Creates a batcher emitting batches of up to `capacity` events.
    /// A zero capacity is promoted to 1.
    pub fn new(capacity: usize, flush: F) -> Batcher<F> {
        let capacity = capacity.max(1);
        Batcher {
            capacity,
            batch: EventBatch::with_capacity(capacity),
            flush,
            batches: 0,
            events: 0,
        }
    }

    #[inline]
    fn roll(&mut self) {
        if self.batch.len() >= self.capacity {
            let full = std::mem::replace(&mut self.batch, EventBatch::with_capacity(self.capacity));
            self.batches += 1;
            self.events += full.len() as u64;
            (self.flush)(full);
        }
    }

    /// Flushes the trailing partial batch and returns
    /// `(batches, events)` totals.
    pub fn finish(mut self) -> (u64, u64) {
        if !self.batch.is_empty() {
            let last = std::mem::take(&mut self.batch);
            self.batches += 1;
            self.events += last.len() as u64;
            (self.flush)(last);
        }
        (self.batches, self.events)
    }
}

impl<F: FnMut(EventBatch)> TraceSink for Batcher<F> {
    fn heap_load(&mut self, addr: Addr, now: Cycles, pc: Pc) {
        self.batch.push_heap_load(addr, now, pc);
        self.roll();
    }
    fn heap_store(&mut self, addr: Addr, now: Cycles, pc: Pc) {
        self.batch.push_heap_store(addr, now, pc);
        self.roll();
    }
    fn local_load(&mut self, var: u16, activation: u32, now: Cycles, pc: Pc) {
        self.batch.push(Event::LocalLoad(var, activation, now, pc));
        self.roll();
    }
    fn local_store(&mut self, var: u16, activation: u32, now: Cycles, pc: Pc) {
        self.batch.push(Event::LocalStore(var, activation, now, pc));
        self.roll();
    }
    fn loop_enter(
        &mut self,
        loop_id: crate::isa::LoopId,
        n_locals: u16,
        activation: u32,
        now: Cycles,
    ) {
        self.batch
            .push(Event::LoopEnter(loop_id, n_locals, activation, now));
        self.roll();
    }
    fn loop_iter(&mut self, loop_id: crate::isa::LoopId, now: Cycles) {
        self.batch.push(Event::LoopIter(loop_id, now));
        self.roll();
    }
    fn loop_exit(&mut self, loop_id: crate::isa::LoopId, now: Cycles) {
        self.batch.push(Event::LoopExit(loop_id, now));
        self.roll();
    }
    fn stats_read(&mut self, loop_id: crate::isa::LoopId, now: Cycles) {
        self.batch.push(Event::StatsRead(loop_id, now));
        self.roll();
    }
    fn call_enter(&mut self, site: Pc, activation: u32, now: Cycles) {
        self.batch.push(Event::CallEnter(site, activation, now));
        self.roll();
    }
    fn call_exit(&mut self, site: Pc, now: Cycles) {
        self.batch.push(Event::CallExit(site, now));
        self.roll();
    }
    fn call_result_use(&mut self, site: Pc, now: Cycles) {
        self.batch.push(Event::CallResultUse(site, now));
        self.roll();
    }
}

/// Interprets `program` once, capturing its full event stream as
/// batches of `capacity` events.
///
/// # Errors
///
/// Any [`VmError`] from the underlying execution.
pub fn record_batches(
    program: &Program,
    capacity: usize,
) -> Result<(RunResult, Vec<EventBatch>), VmError> {
    let mut batches = Vec::new();
    let mut batcher = Batcher::new(capacity, |b| batches.push(b));
    let run = Interp::run(program, &mut batcher)?;
    batcher.finish();
    Ok((run, batches))
}

/// Like [`record_batches`], but with a [`LocationHook`] observing the
/// run, and returning the final memory image alongside the batches.
/// The recorded event stream is bit-identical to an un-hooked
/// recording: hooks are free in simulated time.
///
/// This is the online tier's epoch driver — one call per execution
/// epoch, with the tier controller's hot-location table as the hook.
///
/// # Errors
///
/// Any [`VmError`] from the underlying execution.
pub fn record_batches_hooked<H: LocationHook>(
    program: &Program,
    capacity: usize,
    hook: &mut H,
) -> Result<(FinalState, Vec<EventBatch>), VmError> {
    let mut batches = Vec::new();
    let mut batcher = Batcher::new(capacity, |b| batches.push(b));
    let state = Interp::run_to_state_hooked(
        program,
        &mut batcher,
        CostModel::default(),
        Interp::DEFAULT_FUEL,
        hook,
    )?;
    batcher.finish();
    Ok((state, batches))
}

/// Fan-out combinator: forwards every event to each inner sink, in
/// registration order.
#[derive(Default)]
pub struct Tee<'a> {
    sinks: Vec<&'a mut (dyn TraceSink + Send)>,
}

impl<'a> Tee<'a> {
    /// Creates an empty tee.
    pub fn new() -> Tee<'a> {
        Tee { sinks: Vec::new() }
    }

    /// Adds a sink; events are forwarded in registration order.
    #[must_use]
    pub fn sink(mut self, sink: &'a mut (dyn TraceSink + Send)) -> Tee<'a> {
        self.sinks.push(sink);
        self
    }

    /// Number of registered sinks.
    pub fn len(&self) -> usize {
        self.sinks.len()
    }

    /// True when no sink is registered.
    pub fn is_empty(&self) -> bool {
        self.sinks.is_empty()
    }
}

macro_rules! tee_forward {
    ($($method:ident($($arg:ident: $ty:ty),*);)*) => {
        impl TraceSink for Tee<'_> {
            $(fn $method(&mut self, $($arg: $ty),*) {
                for s in self.sinks.iter_mut() {
                    s.$method($($arg),*);
                }
            })*
        }
    };
}

tee_forward! {
    heap_load(addr: Addr, now: Cycles, pc: Pc);
    heap_store(addr: Addr, now: Cycles, pc: Pc);
    local_load(var: u16, activation: u32, now: Cycles, pc: Pc);
    local_store(var: u16, activation: u32, now: Cycles, pc: Pc);
    loop_enter(loop_id: crate::isa::LoopId, n_locals: u16, activation: u32, now: Cycles);
    loop_iter(loop_id: crate::isa::LoopId, now: Cycles);
    loop_exit(loop_id: crate::isa::LoopId, now: Cycles);
    stats_read(loop_id: crate::isa::LoopId, now: Cycles);
    call_enter(site: Pc, activation: u32, now: Cycles);
    call_exit(site: Pc, now: Cycles);
    call_result_use(site: Pc, now: Cycles);
}

/// Per-sink observability counters of one bus run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SinkStats {
    /// The sink's registration label.
    pub label: String,
    /// Events delivered.
    pub events: u64,
    /// Events delivered, by kind.
    pub by_kind: KindCounts,
    /// Batches delivered.
    pub batches: u64,
    /// Threaded mode: batches for which the producer found this sink's
    /// channel full and had to wait (back-pressure).
    pub lagged_batches: u64,
    /// Threaded mode: batches lost because the consumer disappeared.
    /// Always 0 in normal operation — consumers drain to completion.
    pub dropped_batches: u64,
    /// Wall time spent inside the sink's callbacks, in nanoseconds.
    pub drain_nanos: u64,
    /// Threaded mode: the deepest this sink's bounded channel got
    /// (batches enqueued and not yet drained). 0 in unthreaded modes,
    /// which have no queue.
    pub queue_depth_high_water: u64,
}

impl SinkStats {
    /// Mean events per delivered batch. Returns 0.0 for a sink that
    /// received nothing (e.g. a panicked consumer), never `NaN`.
    pub fn avg_batch_occupancy(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.events as f64 / self.batches as f64
        }
    }

    /// Events delivered per second of drain wall time. Returns 0.0 for
    /// an empty window instead of `inf`/`NaN`.
    pub fn events_per_sec(&self) -> f64 {
        if self.drain_nanos == 0 {
            0.0
        } else {
            self.events as f64 * 1e9 / self.drain_nanos as f64
        }
    }
}

/// Observability summary of one bus run (replay or live).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BusReport {
    /// Batches that crossed the bus.
    pub batches: u64,
    /// Events that crossed the bus.
    pub events: u64,
    /// Configured per-batch capacity.
    pub batch_capacity: usize,
    /// Events by kind.
    pub by_kind: KindCounts,
    /// Per-sink counters, in registration order.
    pub sinks: Vec<SinkStats>,
    /// True when consumers ran on their own threads.
    pub threaded: bool,
}

impl BusReport {
    /// Mean fill fraction of the batches that crossed the bus.
    pub fn avg_batch_occupancy(&self) -> f64 {
        if self.batches == 0 || self.batch_capacity == 0 {
            0.0
        } else {
            self.events as f64 / (self.batches * self.batch_capacity as u64) as f64
        }
    }
}

/// The trace bus orchestrator: labelled sinks plus a delivery policy.
///
/// ```
/// use tvm::bus::{record_batches, TraceBus, DEFAULT_BATCH_CAPACITY};
/// use tvm::trace::CountingSink;
/// use tvm::{ElemKind, ProgramBuilder};
///
/// # fn main() -> Result<(), tvm::VmError> {
/// let mut b = ProgramBuilder::new();
/// let main = b.function("main", 0, false, |f| {
///     let (a, i) = (f.local(), f.local());
///     f.ci(8).newarray(ElemKind::Int).st(a);
///     f.for_in(i, 0.into(), 8.into(), |f| {
///         f.arr_set(a, |f| { f.ld(i); }, |f| { f.ld(i); });
///     });
///     f.ret_void();
/// });
/// let program = b.finish(main)?;
///
/// // record once ...
/// let (_run, batches) = record_batches(&program, DEFAULT_BATCH_CAPACITY)?;
/// // ... replay into any number of consumers
/// let mut a = CountingSink::default();
/// let mut b2 = CountingSink::default();
/// let report = TraceBus::new()
///     .sink("a", &mut a)
///     .sink("b", &mut b2)
///     .replay(&batches);
/// assert_eq!(a, b2);
/// assert_eq!(report.sinks.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Default)]
pub struct TraceBus<'a> {
    sinks: Vec<(String, &'a mut (dyn TraceSink + Send))>,
    channel_depth: usize,
    trace: Option<Arc<ObsTrace>>,
}

impl<'a> TraceBus<'a> {
    /// Creates a bus with no sinks and the default channel depth.
    pub fn new() -> TraceBus<'a> {
        TraceBus {
            sinks: Vec::new(),
            channel_depth: DEFAULT_CHANNEL_DEPTH,
            trace: None,
        }
    }

    /// Records this run into `trace`: each sink becomes a wall-clock
    /// track named `sink:<label>` carrying a `drain` span per batch and
    /// a cumulative `events` counter series; threaded modes add a
    /// `bus:producer` track with per-batch `batch_len` samples, a
    /// cumulative `lagged` counter, and a `lag sink <i>` instant per
    /// back-pressure stall.
    #[must_use]
    pub fn observe(mut self, trace: Arc<ObsTrace>) -> TraceBus<'a> {
        self.trace = Some(trace);
        self
    }

    /// Sets the bound of each consumer's batch channel (threaded
    /// modes). A zero depth is promoted to 1.
    #[must_use]
    pub fn channel_depth(mut self, depth: usize) -> TraceBus<'a> {
        self.channel_depth = depth.max(1);
        self
    }

    /// Registers a labelled consumer.
    #[must_use]
    pub fn sink(mut self, label: &str, sink: &'a mut (dyn TraceSink + Send)) -> TraceBus<'a> {
        self.sinks.push((label.to_string(), sink));
        self
    }

    /// Replays `batches` into every sink on the calling thread. Each
    /// batch is delivered to all sinks (in registration order) before
    /// the next batch, mirroring the threaded delivery order.
    pub fn replay(mut self, batches: &[EventBatch]) -> BusReport {
        let trace = self.trace.clone();
        let mut report = BusReport {
            batch_capacity: batches.iter().map(EventBatch::len).max().unwrap_or(0),
            ..BusReport::default()
        };
        let mut stats: Vec<SinkStats> = self
            .sinks
            .iter()
            .map(|(label, _)| SinkStats {
                label: label.clone(),
                ..SinkStats::default()
            })
            .collect();
        let tracks: Vec<Option<TrackId>> = match &trace {
            Some(tr) => self
                .sinks
                .iter()
                .map(|(l, _)| Some(tr.track(&format!("sink:{l}"))))
                .collect(),
            None => vec![None; self.sinks.len()],
        };
        for batch in batches {
            let counts = batch.kind_counts();
            report.batches += 1;
            report.events += batch.len() as u64;
            report.by_kind.merge(&counts);
            for (i, ((_, sink), st)) in self.sinks.iter_mut().zip(stats.iter_mut()).enumerate() {
                if let (Some(tr), Some(track)) = (&trace, tracks[i]) {
                    tr.begin(track, "drain");
                }
                let t = Instant::now();
                sink.consume_batch(batch);
                st.drain_nanos += t.elapsed().as_nanos() as u64;
                st.batches += 1;
                st.events += batch.len() as u64;
                st.by_kind.merge(&counts);
                if let (Some(tr), Some(track)) = (&trace, tracks[i]) {
                    tr.end(track, "drain");
                    tr.counter(track, "events", st.events);
                }
            }
        }
        report.sinks = stats;
        report
    }

    /// Replays `batches` with one draining thread per sink, fed
    /// through bounded channels. Every sink still observes the exact
    /// emission order; back-pressure is counted per sink as
    /// [`SinkStats::lagged_batches`], never resolved by dropping.
    pub fn replay_threaded(self, batches: &[EventBatch]) -> BusReport {
        let capacity = batches.iter().map(EventBatch::len).max().unwrap_or(0);
        let depth = self.channel_depth;
        let trace = self.trace.clone();
        let mut report = BusReport {
            batch_capacity: capacity,
            threaded: true,
            ..BusReport::default()
        };
        for batch in batches {
            report.batches += 1;
            report.events += batch.len() as u64;
            report.by_kind.merge(&batch.kind_counts());
        }
        let sinks = self.sinks;
        let mut out: Vec<SinkStats> = Vec::with_capacity(sinks.len());
        // per-sink in-flight batch counters, shared producer/consumer;
        // the producer derives each channel's depth high-water from
        // them (obs cannot be a tvm dependency, so plain atomics here
        // and the registry copy happens in jrpm's bus recording)
        let inflight: Vec<AtomicU64> = (0..sinks.len()).map(|_| AtomicU64::new(0)).collect();
        std::thread::scope(|scope| {
            let mut txs = Vec::with_capacity(sinks.len());
            let mut handles = Vec::with_capacity(sinks.len());
            let mut labels = Vec::with_capacity(sinks.len());
            for (i, (label, sink)) in sinks.into_iter().enumerate() {
                labels.push(label.clone());
                let (tx, rx) = sync_channel::<&EventBatch>(depth);
                txs.push(tx);
                let thread_trace = trace.clone();
                let inflight = &inflight[i];
                handles.push(scope.spawn(move || {
                    let track = thread_trace
                        .as_ref()
                        .map(|tr| tr.track(&format!("sink:{label}")));
                    let mut st = SinkStats {
                        label,
                        ..SinkStats::default()
                    };
                    while let Ok(batch) = rx.recv() {
                        inflight.fetch_sub(1, AtomicOrdering::Relaxed);
                        if let (Some(tr), Some(t)) = (&thread_trace, track) {
                            tr.begin(t, "drain");
                        }
                        let t = Instant::now();
                        sink.consume_batch(batch);
                        st.drain_nanos += t.elapsed().as_nanos() as u64;
                        st.batches += 1;
                        st.events += batch.len() as u64;
                        st.by_kind.merge(&batch.kind_counts());
                        if let (Some(tr), Some(t)) = (&thread_trace, track) {
                            tr.end(t, "drain");
                            tr.counter(t, "events", st.events);
                        }
                    }
                    st
                }));
            }
            let producer = trace.as_ref().map(|tr| tr.track("bus:producer"));
            let mut lagged = vec![0u64; txs.len()];
            let mut dropped = vec![0u64; txs.len()];
            let mut high_water = vec![0u64; txs.len()];
            for batch in batches {
                if let (Some(tr), Some(t)) = (&trace, producer) {
                    tr.counter(t, "batch_len", batch.len() as u64);
                }
                for (i, tx) in txs.iter().enumerate() {
                    // count the batch in-flight *before* handing it
                    // over: the consumer's decrement is ordered after
                    // its recv, so the counter never underflows
                    let d = inflight[i].fetch_add(1, AtomicOrdering::Relaxed) + 1;
                    high_water[i] = high_water[i].max(d);
                    let sent = match tx.try_send(batch) {
                        Ok(()) => true,
                        Err(TrySendError::Full(b)) => {
                            lagged[i] += 1;
                            if let (Some(tr), Some(t)) = (&trace, producer) {
                                tr.instant(t, &format!("lag sink {i}"));
                                tr.counter(t, "lagged", lagged.iter().sum());
                            }
                            if tx.send(b).is_err() {
                                dropped[i] += 1;
                                false
                            } else {
                                true
                            }
                        }
                        Err(TrySendError::Disconnected(_)) => {
                            dropped[i] += 1;
                            false
                        }
                    };
                    if !sent {
                        inflight[i].fetch_sub(1, AtomicOrdering::Relaxed);
                    }
                }
            }
            drop(txs);
            for (i, h) in handles.into_iter().enumerate() {
                // A panicking sink must not take down the bus (or, at
                // service scale, the whole server loop): synthesize
                // its stats instead, marking the full stream as
                // dropped since its analysis state is unusable.
                let mut st = match h.join() {
                    Ok(mut st) => {
                        st.dropped_batches = dropped[i];
                        st
                    }
                    Err(_) => SinkStats {
                        label: labels[i].clone(),
                        dropped_batches: report.batches,
                        ..SinkStats::default()
                    },
                };
                st.lagged_batches = lagged[i];
                st.queue_depth_high_water = high_water[i];
                out.push(st);
            }
        });
        report.sinks = out;
        report
    }

    /// Interprets `program` while consumers drain its batches
    /// concurrently: the interpreter produces [`EventBatch`]es of
    /// `capacity` events into each sink's bounded channel, one thread
    /// per sink. Equivalent to record-then-[`TraceBus::replay`] but
    /// overlaps interpretation with analysis and never materializes
    /// the whole recording.
    ///
    /// # Errors
    ///
    /// Any [`VmError`] from the underlying execution. Consumers drain
    /// whatever was produced before the error.
    pub fn run_threaded(
        self,
        program: &Program,
        capacity: usize,
    ) -> Result<(RunResult, BusReport), VmError> {
        let depth = self.channel_depth;
        let trace = self.trace.clone();
        let sinks = self.sinks;
        let mut report = BusReport {
            batch_capacity: capacity.max(1),
            threaded: true,
            ..BusReport::default()
        };
        let mut out: Vec<SinkStats> = Vec::with_capacity(sinks.len());
        // same in-flight accounting as replay_threaded
        let inflight: Vec<AtomicU64> = (0..sinks.len()).map(|_| AtomicU64::new(0)).collect();
        let run = std::thread::scope(|scope| {
            let mut txs = Vec::with_capacity(sinks.len());
            let mut handles = Vec::with_capacity(sinks.len());
            let mut labels = Vec::with_capacity(sinks.len());
            for (i, (label, sink)) in sinks.into_iter().enumerate() {
                labels.push(label.clone());
                let (tx, rx) = sync_channel::<Arc<EventBatch>>(depth);
                txs.push(tx);
                let thread_trace = trace.clone();
                let inflight = &inflight[i];
                handles.push(scope.spawn(move || {
                    let track = thread_trace
                        .as_ref()
                        .map(|tr| tr.track(&format!("sink:{label}")));
                    let mut st = SinkStats {
                        label,
                        ..SinkStats::default()
                    };
                    while let Ok(batch) = rx.recv() {
                        inflight.fetch_sub(1, AtomicOrdering::Relaxed);
                        if let (Some(tr), Some(t)) = (&thread_trace, track) {
                            tr.begin(t, "drain");
                        }
                        let t = Instant::now();
                        sink.consume_batch(&batch);
                        st.drain_nanos += t.elapsed().as_nanos() as u64;
                        st.batches += 1;
                        st.events += batch.len() as u64;
                        st.by_kind.merge(&batch.kind_counts());
                        if let (Some(tr), Some(t)) = (&thread_trace, track) {
                            tr.end(t, "drain");
                            tr.counter(t, "events", st.events);
                        }
                    }
                    st
                }));
            }
            let producer = trace.as_ref().map(|tr| tr.track("bus:producer"));
            let mut lagged = vec![0u64; txs.len()];
            let mut dropped = vec![0u64; txs.len()];
            let mut high_water = vec![0u64; txs.len()];
            let mut by_kind = KindCounts::default();
            let mut batches = 0u64;
            let mut events = 0u64;
            let run = {
                let trace = &trace;
                let inflight = &inflight;
                let high_water = &mut high_water;
                let mut batcher = Batcher::new(capacity, |batch: EventBatch| {
                    by_kind.merge(&batch.kind_counts());
                    batches += 1;
                    events += batch.len() as u64;
                    if let (Some(tr), Some(t)) = (trace, producer) {
                        tr.counter(t, "batch_len", batch.len() as u64);
                    }
                    let shared = Arc::new(batch);
                    for (i, tx) in txs.iter().enumerate() {
                        // increment-before-send, exactly as in
                        // replay_threaded, to keep the counter from
                        // racing the consumer's decrement
                        let d = inflight[i].fetch_add(1, AtomicOrdering::Relaxed) + 1;
                        high_water[i] = high_water[i].max(d);
                        let sent = match tx.try_send(Arc::clone(&shared)) {
                            Ok(()) => true,
                            Err(TrySendError::Full(b)) => {
                                lagged[i] += 1;
                                if let (Some(tr), Some(t)) = (trace, producer) {
                                    tr.instant(t, &format!("lag sink {i}"));
                                    tr.counter(t, "lagged", lagged.iter().sum());
                                }
                                if tx.send(b).is_err() {
                                    dropped[i] += 1;
                                    false
                                } else {
                                    true
                                }
                            }
                            Err(TrySendError::Disconnected(_)) => {
                                dropped[i] += 1;
                                false
                            }
                        };
                        if !sent {
                            inflight[i].fetch_sub(1, AtomicOrdering::Relaxed);
                        }
                    }
                });
                let run = Interp::run(program, &mut batcher);
                batcher.finish();
                run
            };
            drop(txs);
            for (i, h) in handles.into_iter().enumerate() {
                // Same panic isolation as replay_threaded: a dead
                // consumer yields synthesized stats, never a bus panic.
                let mut st = match h.join() {
                    Ok(mut st) => {
                        st.dropped_batches = dropped[i];
                        st
                    }
                    Err(_) => SinkStats {
                        label: labels[i].clone(),
                        dropped_batches: batches,
                        ..SinkStats::default()
                    },
                };
                st.lagged_batches = lagged[i];
                st.queue_depth_high_water = high_water[i];
                out.push(st);
            }
            report.by_kind = by_kind;
            report.batches = batches;
            report.events = events;
            run
        })?;
        report.sinks = out;
        Ok((run, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::ProgramBuilder;
    use crate::record::RecordingSink;
    use crate::trace::CountingSink;
    use crate::ElemKind;

    fn sample_program() -> crate::Program {
        let mut b = ProgramBuilder::new();
        let helper = b.declare("helper", 1, true);
        b.define(helper, |f| {
            f.ld(f.param(0)).ci(3).imul().ret();
        });
        let main = b.function("main", 0, false, |f| {
            let (a, i) = (f.local(), f.local());
            f.ci(16).newarray(ElemKind::Int).st(a);
            f.for_in(i, 0.into(), 16.into(), |f| {
                f.arr_set(
                    a,
                    |f| {
                        f.ld(i);
                    },
                    |f| {
                        f.ld(i).call(helper);
                    },
                );
            });
            f.ret_void();
        });
        b.finish(main).unwrap()
    }

    #[test]
    fn batches_preserve_the_exact_stream() {
        let p = sample_program();
        let mut rec = RecordingSink::new();
        Interp::run(&p, &mut rec).unwrap();
        let recording = rec.into_recording();

        let (_run, batches) = record_batches(&p, 7).unwrap();
        let replayed: Vec<Event> = batches.iter().flat_map(|b| b.events()).collect();
        assert_eq!(recording.events, replayed);

        // and replay_into reproduces it too
        let mut out = RecordingSink::new();
        for b in &batches {
            b.replay_into(&mut out);
        }
        assert_eq!(recording, out.into_recording());
    }

    #[test]
    fn batch_capacity_is_respected() {
        let p = sample_program();
        let (_run, batches) = record_batches(&p, 5).unwrap();
        assert!(batches.len() > 1);
        for b in &batches[..batches.len() - 1] {
            assert_eq!(b.len(), 5);
        }
        assert!(batches.last().unwrap().len() <= 5);
    }

    #[test]
    fn kind_counts_match_event_totals() {
        let p = sample_program();
        let (_run, batches) = record_batches(&p, 64).unwrap();
        let mut total = KindCounts::default();
        for b in &batches {
            total.merge(&b.kind_counts());
        }
        let mut count = CountingSink::default();
        Interp::run(&p, &mut count).unwrap();
        assert_eq!(total.get(EventKind::HeapLoad), count.loads);
        assert_eq!(total.get(EventKind::HeapStore), count.stores);
        assert_eq!(
            total.total(),
            batches.iter().map(|b| b.len() as u64).sum::<u64>()
        );
        assert!(total.get(EventKind::CallEnter) > 0, "calls are captured");
    }

    #[test]
    fn tee_feeds_every_sink_identically() {
        let p = sample_program();
        let mut a = CountingSink::default();
        let mut b = CountingSink::default();
        let mut tee = Tee::new().sink(&mut a).sink(&mut b);
        Interp::run(&p, &mut tee).unwrap();
        let mut direct = CountingSink::default();
        Interp::run(&p, &mut direct).unwrap();
        assert_eq!(a, direct);
        assert_eq!(b, direct);
    }

    #[test]
    fn replay_and_threaded_replay_agree_with_direct() {
        let p = sample_program();
        let mut direct = CountingSink::default();
        Interp::run(&p, &mut direct).unwrap();

        let (_run, batches) = record_batches(&p, 16).unwrap();
        let mut single = CountingSink::default();
        let r1 = TraceBus::new().sink("count", &mut single).replay(&batches);
        assert_eq!(single, direct);
        assert_eq!(r1.sinks[0].events, r1.events);
        assert!(!r1.threaded);

        let mut threaded = CountingSink::default();
        let mut extra = CountingSink::default();
        let r2 = TraceBus::new()
            .channel_depth(2)
            .sink("count", &mut threaded)
            .sink("extra", &mut extra)
            .replay_threaded(&batches);
        assert_eq!(threaded, direct);
        assert_eq!(extra, direct);
        assert!(r2.threaded);
        assert_eq!(r2.sinks.len(), 2);
        for s in &r2.sinks {
            assert_eq!(s.dropped_batches, 0, "bounded channels never drop");
            assert_eq!(s.events, r2.events);
        }
    }

    #[test]
    fn run_threaded_matches_direct_execution() {
        let p = sample_program();
        let mut direct = CountingSink::default();
        let direct_run = Interp::run(&p, &mut direct).unwrap();

        let mut live = CountingSink::default();
        let (run, report) = TraceBus::new()
            .channel_depth(2)
            .sink("count", &mut live)
            .run_threaded(&p, 8)
            .unwrap();
        assert_eq!(run.cycles, direct_run.cycles);
        assert_eq!(live, direct);
        assert!(report.batches > 0);
        assert!(report.avg_batch_occupancy() > 0.0);
        assert_eq!(report.sinks[0].dropped_batches, 0);
    }

    #[test]
    fn observed_bus_records_sink_tracks() {
        let p = sample_program();
        let (_run, batches) = record_batches(&p, 8).unwrap();
        let trace = Arc::new(ObsTrace::new());
        let mut a = CountingSink::default();
        let mut b = CountingSink::default();
        let report = TraceBus::new()
            .channel_depth(1)
            .observe(Arc::clone(&trace))
            .sink("a", &mut a)
            .sink("b", &mut b)
            .replay_threaded(&batches);
        let tracks = trace.tracks();
        let names: Vec<&str> = tracks.iter().map(|t| t.name.as_str()).collect();
        assert!(names.contains(&"sink:a"));
        assert!(names.contains(&"sink:b"));
        assert!(names.contains(&"bus:producer"));
        for t in &tracks {
            assert!(t.open.is_empty(), "unclosed drain span on {}", t.name);
        }
        // the cumulative events series ends at the per-sink total
        let sink_a = tracks.iter().find(|t| t.name == "sink:a").unwrap();
        let last = sink_a.events.iter().rev().find_map(|e| match &e.kind {
            obs::TrackEventKind::Counter(n, v) if n == "events" => Some(*v),
            _ => None,
        });
        let a_stats = report.sinks.iter().find(|s| s.label == "a").unwrap();
        assert_eq!(last, Some(a_stats.events));
    }

    #[test]
    fn event_kind_names_round_trip() {
        for k in EventKind::ALL {
            assert_eq!(EventKind::from_name(k.name()), Some(k));
        }
        assert_eq!(EventKind::from_name("nonsense"), None);
    }

    #[test]
    fn occupancy_is_full_for_exact_multiples() {
        let mut report = BusReport {
            batches: 4,
            events: 32,
            batch_capacity: 8,
            ..BusReport::default()
        };
        assert_eq!(report.avg_batch_occupancy(), 1.0);
        report.events = 20;
        assert_eq!(report.avg_batch_occupancy(), 0.625);
    }

    #[test]
    fn batch_iter_matches_events() {
        let p = sample_program();
        let (_run, batches) = record_batches(&p, 7).unwrap();
        for b in &batches {
            let via_iter: Vec<Event> = b.iter().collect();
            assert_eq!(via_iter, b.events());
            assert_eq!(b.iter().len(), b.len());
        }
    }

    #[test]
    fn consume_batch_default_matches_replay_into() {
        let p = sample_program();
        let (_run, batches) = record_batches(&p, 9).unwrap();
        let mut via_replay = CountingSink::default();
        let mut via_consume = CountingSink::default();
        for b in &batches {
            b.replay_into(&mut via_replay);
            via_consume.consume_batch(b);
        }
        assert_eq!(via_replay, via_consume);
    }

    #[test]
    fn clear_keeps_allocations_and_empties() {
        let p = sample_program();
        let (_run, batches) = record_batches(&p, 16).unwrap();
        let mut b = batches[0].clone();
        assert!(!b.is_empty());
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.len(), 0);
        assert_eq!(b.events(), Vec::new());
    }

    #[test]
    fn zero_capacity_batcher_is_promoted_not_panicking() {
        let p = sample_program();
        let (_run, batches) = record_batches(&p, 0).unwrap();
        assert!(!batches.is_empty());
        for b in &batches {
            assert_eq!(b.len(), 1, "zero capacity is promoted to 1");
        }
        // zero channel depth likewise serves, never panics
        let mut count = CountingSink::default();
        let report = TraceBus::new()
            .channel_depth(0)
            .sink("count", &mut count)
            .replay_threaded(&batches);
        assert_eq!(report.sinks[0].dropped_batches, 0);
        let mut direct = CountingSink::default();
        Interp::run(&p, &mut direct).unwrap();
        assert_eq!(count, direct);
    }

    /// A sink that panics after observing `fuse` heap stores.
    struct PanickingSink {
        fuse: u64,
    }

    impl TraceSink for PanickingSink {
        fn heap_store(&mut self, _addr: Addr, _now: Cycles, _pc: Pc) {
            if self.fuse == 0 {
                panic!("sink blew its fuse");
            }
            self.fuse -= 1;
        }
    }

    #[test]
    fn panicking_sink_does_not_take_down_the_threaded_bus() {
        let p = sample_program();
        let (_run, batches) = record_batches(&p, 4).unwrap();
        let mut healthy = CountingSink::default();
        let mut bomb = PanickingSink { fuse: 2 };
        let report = TraceBus::new()
            .channel_depth(2)
            .sink("healthy", &mut healthy)
            .sink("bomb", &mut bomb)
            .replay_threaded(&batches);

        // the healthy sink drained the full stream
        let mut direct = CountingSink::default();
        Interp::run(&p, &mut direct).unwrap();
        assert_eq!(healthy, direct);
        let h = report.sinks.iter().find(|s| s.label == "healthy").unwrap();
        assert_eq!(h.events, report.events);
        assert_eq!(h.dropped_batches, 0);

        // the panicked sink got synthesized stats: full stream dropped
        let b = report.sinks.iter().find(|s| s.label == "bomb").unwrap();
        assert_eq!(b.events, 0);
        assert_eq!(b.dropped_batches, report.batches);
        assert_eq!(b.avg_batch_occupancy(), 0.0);
    }

    #[test]
    fn panicking_sink_does_not_take_down_the_live_bus() {
        let p = sample_program();
        let mut healthy = CountingSink::default();
        let mut bomb = PanickingSink { fuse: 0 };
        let (run, report) = TraceBus::new()
            .channel_depth(2)
            .sink("healthy", &mut healthy)
            .sink("bomb", &mut bomb)
            .run_threaded(&p, 4)
            .unwrap();
        let mut direct = CountingSink::default();
        let direct_run = Interp::run(&p, &mut direct).unwrap();
        assert_eq!(run.cycles, direct_run.cycles);
        assert_eq!(healthy, direct);
        let b = report.sinks.iter().find(|s| s.label == "bomb").unwrap();
        assert_eq!(b.dropped_batches, report.batches);
        assert_eq!(b.events_per_sec(), 0.0);
    }

    #[test]
    fn sink_stats_ratios_never_divide_by_zero() {
        let empty = SinkStats::default();
        assert_eq!(empty.avg_batch_occupancy(), 0.0);
        assert_eq!(empty.events_per_sec(), 0.0);
        let full = SinkStats {
            events: 30,
            batches: 4,
            drain_nanos: 1_000_000_000,
            ..SinkStats::default()
        };
        assert_eq!(full.avg_batch_occupancy(), 7.5);
        assert_eq!(full.events_per_sec(), 30.0);
    }
}
