//! Program and function builders.
//!
//! [`ProgramBuilder`] plays the role of the compiler frontend: the
//! benchmark suite writes its 26 kernels against this API, producing the
//! bytecode that the candidate-extraction and annotation passes then
//! analyze. The builder resolves labels and runs the bytecode verifier
//! on [`ProgramBuilder::finish`].
//!
//! Structured helpers (`for_in`, `while_icmp`, `if_else_icmp`, …) emit
//! plain branches — loops are *discovered* from the CFG by `cfgir`, not
//! declared here, exactly as Jrpm discovers natural loops in compiled
//! Java methods.

use crate::error::VmError;
use crate::isa::{ClassId, Cond, ElemKind, FuncId, GlobalId, Instr, Label, Local};
use crate::program::{ClassDef, Function, Program};
use crate::verify;

/// An operand for structured helpers: either an integer constant or a
/// local variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operand {
    /// Immediate integer.
    ConstI(i64),
    /// Local slot.
    Loc(Local),
}

impl From<i64> for Operand {
    fn from(v: i64) -> Self {
        Operand::ConstI(v)
    }
}

impl From<i32> for Operand {
    fn from(v: i32) -> Self {
        Operand::ConstI(i64::from(v))
    }
}

impl From<Local> for Operand {
    fn from(l: Local) -> Self {
        Operand::Loc(l)
    }
}

/// Builds one function body. Obtained from
/// [`ProgramBuilder::function`] / [`ProgramBuilder::define`].
#[derive(Debug)]
pub struct FnBuilder {
    code: Vec<Instr>,
    n_params: u16,
    n_locals: u16,
    returns: bool,
    labels: Vec<Option<u32>>,
    /// instruction indices whose branch target is still a label id
    fixups: Vec<u32>,
}

impl FnBuilder {
    fn new(n_params: u16, returns: bool) -> FnBuilder {
        FnBuilder {
            code: Vec::new(),
            n_params,
            n_locals: n_params,
            returns,
            labels: Vec::new(),
            fixups: Vec::new(),
        }
    }

    /// Allocates a fresh local slot.
    pub fn local(&mut self) -> Local {
        let l = Local(self.n_locals);
        self.n_locals += 1;
        l
    }

    /// The `i`-th parameter's slot.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n_params`.
    pub fn param(&self, i: u16) -> Local {
        assert!(i < self.n_params, "parameter index out of range");
        Local(i)
    }

    /// Emits a raw instruction.
    pub fn raw(&mut self, i: Instr) -> &mut Self {
        self.code.push(i);
        self
    }

    // ---- labels & branches ----

    /// Creates a fresh, unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() as u32 - 1)
    }

    /// Binds `label` to the next emitted instruction.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound.
    pub fn bind(&mut self, label: Label) -> &mut Self {
        let slot = &mut self.labels[label.0 as usize];
        assert!(slot.is_none(), "label bound twice");
        *slot = Some(self.code.len() as u32);
        self
    }

    fn emit_branch(&mut self, i: Instr) -> &mut Self {
        self.fixups.push(self.code.len() as u32);
        self.code.push(i);
        self
    }

    /// Emits an unconditional branch to `label`.
    pub fn goto(&mut self, label: Label) -> &mut Self {
        self.emit_branch(Instr::Goto(label.0))
    }

    /// Pops an int; branches to `label` if it compares `cond` against 0.
    pub fn br_if(&mut self, cond: Cond, label: Label) -> &mut Self {
        self.emit_branch(Instr::If(cond, label.0))
    }

    /// Pops b then a (ints); branches if `a cond b`.
    pub fn br_icmp(&mut self, cond: Cond, label: Label) -> &mut Self {
        self.emit_branch(Instr::IfICmp(cond, label.0))
    }

    /// Pops b then a (floats); branches if `a cond b`.
    pub fn br_fcmp(&mut self, cond: Cond, label: Label) -> &mut Self {
        self.emit_branch(Instr::IfFCmp(cond, label.0))
    }

    // ---- constants, locals, stack ----

    /// Pushes an integer constant.
    pub fn ci(&mut self, v: i64) -> &mut Self {
        self.raw(Instr::IConst(v))
    }

    /// Pushes a float constant.
    pub fn cf(&mut self, v: f64) -> &mut Self {
        self.raw(Instr::FConst(v))
    }

    /// Pushes `null`.
    pub fn cnull(&mut self) -> &mut Self {
        self.raw(Instr::NullConst)
    }

    /// Pushes a local.
    pub fn ld(&mut self, l: Local) -> &mut Self {
        self.raw(Instr::Load(l))
    }

    /// Pops into a local.
    pub fn st(&mut self, l: Local) -> &mut Self {
        self.raw(Instr::Store(l))
    }

    /// Adds a constant to an integer local in place.
    pub fn inc(&mut self, l: Local, by: i32) -> &mut Self {
        self.raw(Instr::IInc(l, by))
    }

    /// Pushes an operand (constant or local).
    pub fn operand(&mut self, op: Operand) -> &mut Self {
        match op {
            Operand::ConstI(v) => self.ci(v),
            Operand::Loc(l) => self.ld(l),
        }
    }

    /// Duplicates the top of stack.
    pub fn dup(&mut self) -> &mut Self {
        self.raw(Instr::Dup)
    }

    /// Pops and discards the top of stack.
    pub fn drop_top(&mut self) -> &mut Self {
        self.raw(Instr::Pop)
    }

    /// Swaps the two top stack values.
    pub fn swap(&mut self) -> &mut Self {
        self.raw(Instr::Swap)
    }

    // ---- arithmetic ----

    /// Integer add.
    pub fn iadd(&mut self) -> &mut Self {
        self.raw(Instr::IAdd)
    }
    /// Integer subtract.
    pub fn isub(&mut self) -> &mut Self {
        self.raw(Instr::ISub)
    }
    /// Integer multiply.
    pub fn imul(&mut self) -> &mut Self {
        self.raw(Instr::IMul)
    }
    /// Integer divide.
    pub fn idiv(&mut self) -> &mut Self {
        self.raw(Instr::IDiv)
    }
    /// Integer remainder.
    pub fn irem(&mut self) -> &mut Self {
        self.raw(Instr::IRem)
    }
    /// Integer negate.
    pub fn ineg(&mut self) -> &mut Self {
        self.raw(Instr::INeg)
    }
    /// Bitwise and.
    pub fn iand(&mut self) -> &mut Self {
        self.raw(Instr::IAnd)
    }
    /// Bitwise or.
    pub fn ior(&mut self) -> &mut Self {
        self.raw(Instr::IOr)
    }
    /// Bitwise xor.
    pub fn ixor(&mut self) -> &mut Self {
        self.raw(Instr::IXor)
    }
    /// Shift left.
    pub fn ishl(&mut self) -> &mut Self {
        self.raw(Instr::IShl)
    }
    /// Arithmetic shift right.
    pub fn ishr(&mut self) -> &mut Self {
        self.raw(Instr::IShr)
    }
    /// Logical shift right.
    pub fn iushr(&mut self) -> &mut Self {
        self.raw(Instr::IUShr)
    }
    /// Integer minimum.
    pub fn imin(&mut self) -> &mut Self {
        self.raw(Instr::IMin)
    }
    /// Integer maximum.
    pub fn imax(&mut self) -> &mut Self {
        self.raw(Instr::IMax)
    }
    /// Three-way integer compare.
    pub fn icmp3(&mut self) -> &mut Self {
        self.raw(Instr::ICmp)
    }
    /// Float add.
    pub fn fadd(&mut self) -> &mut Self {
        self.raw(Instr::FAdd)
    }
    /// Float subtract.
    pub fn fsub(&mut self) -> &mut Self {
        self.raw(Instr::FSub)
    }
    /// Float multiply.
    pub fn fmul(&mut self) -> &mut Self {
        self.raw(Instr::FMul)
    }
    /// Float divide.
    pub fn fdiv(&mut self) -> &mut Self {
        self.raw(Instr::FDiv)
    }
    /// Float negate.
    pub fn fneg(&mut self) -> &mut Self {
        self.raw(Instr::FNeg)
    }
    /// Float minimum.
    pub fn fmin(&mut self) -> &mut Self {
        self.raw(Instr::FMin)
    }
    /// Float maximum.
    pub fn fmax(&mut self) -> &mut Self {
        self.raw(Instr::FMax)
    }
    /// Float absolute value.
    pub fn fabs(&mut self) -> &mut Self {
        self.raw(Instr::FAbs)
    }
    /// Square root.
    pub fn fsqrt(&mut self) -> &mut Self {
        self.raw(Instr::FSqrt)
    }
    /// Sine.
    pub fn fsin(&mut self) -> &mut Self {
        self.raw(Instr::FSin)
    }
    /// Cosine.
    pub fn fcos(&mut self) -> &mut Self {
        self.raw(Instr::FCos)
    }
    /// Exponential.
    pub fn fexp(&mut self) -> &mut Self {
        self.raw(Instr::FExp)
    }
    /// Natural log.
    pub fn flog(&mut self) -> &mut Self {
        self.raw(Instr::FLog)
    }
    /// Int to float.
    pub fn i2f(&mut self) -> &mut Self {
        self.raw(Instr::I2F)
    }
    /// Float to int (truncating).
    pub fn f2i(&mut self) -> &mut Self {
        self.raw(Instr::F2I)
    }

    // ---- heap ----

    /// Pops a length; allocates an array; pushes the reference.
    pub fn newarray(&mut self, kind: ElemKind) -> &mut Self {
        self.raw(Instr::NewArray(kind))
    }
    /// Pops index, array; pushes the element.
    pub fn aload(&mut self) -> &mut Self {
        self.raw(Instr::ALoad)
    }
    /// Pops value, index, array; stores the element.
    pub fn astore(&mut self) -> &mut Self {
        self.raw(Instr::AStore)
    }
    /// Pops an array; pushes its length.
    pub fn arraylen(&mut self) -> &mut Self {
        self.raw(Instr::ArrayLen)
    }
    /// Allocates an object; pushes the reference.
    pub fn newobject(&mut self, class: ClassId) -> &mut Self {
        self.raw(Instr::NewObject(class))
    }
    /// Pops an object ref; pushes field `idx`.
    pub fn getfield(&mut self, idx: u16) -> &mut Self {
        self.raw(Instr::GetField(idx))
    }
    /// Pops value, object ref; stores field `idx`.
    pub fn putfield(&mut self, idx: u16) -> &mut Self {
        self.raw(Instr::PutField(idx))
    }
    /// Pushes a static variable.
    pub fn getstatic(&mut self, g: GlobalId) -> &mut Self {
        self.raw(Instr::GetStatic(g))
    }
    /// Pops into a static variable.
    pub fn putstatic(&mut self, g: GlobalId) -> &mut Self {
        self.raw(Instr::PutStatic(g))
    }

    /// `array[idx]` with the index pushed by a closure:
    /// `f.arr_get(a, |f| { f.ld(i); })`.
    pub fn arr_get(&mut self, arr: Local, idx: impl FnOnce(&mut Self)) -> &mut Self {
        self.ld(arr);
        idx(self);
        self.aload()
    }

    /// `array[idx] = value` with index and value pushed by closures.
    pub fn arr_set(
        &mut self,
        arr: Local,
        idx: impl FnOnce(&mut Self),
        value: impl FnOnce(&mut Self),
    ) -> &mut Self {
        self.ld(arr);
        idx(self);
        value(self);
        self.astore()
    }

    // ---- calls & returns ----

    /// Calls a function (arguments already pushed, last on top).
    pub fn call(&mut self, f: FuncId) -> &mut Self {
        self.raw(Instr::Call(f))
    }
    /// Returns the top of stack.
    pub fn ret(&mut self) -> &mut Self {
        self.raw(Instr::Return)
    }
    /// Returns from a void function.
    pub fn ret_void(&mut self) -> &mut Self {
        self.raw(Instr::ReturnVoid)
    }
    /// Halts the program.
    pub fn halt(&mut self) -> &mut Self {
        self.raw(Instr::Halt)
    }

    // ---- structured control flow ----

    /// `for i in from..to { body }` with step 1. `i` must be a local the
    /// caller allocated; the loop uses `IInc`, making `i` a recognizable
    /// inductor.
    pub fn for_in(
        &mut self,
        i: Local,
        from: Operand,
        to: Operand,
        body: impl FnOnce(&mut Self),
    ) -> &mut Self {
        self.for_step(i, from, to, 1, body)
    }

    /// `for i in (from..to).step_by(step) { body }`. Positive steps use
    /// an `i < to` guard, negative steps `i > to`.
    ///
    /// # Panics
    ///
    /// Panics if `step == 0`.
    pub fn for_step(
        &mut self,
        i: Local,
        from: Operand,
        to: Operand,
        step: i32,
        body: impl FnOnce(&mut Self),
    ) -> &mut Self {
        assert!(step != 0, "for_step requires a nonzero step");
        let head = self.new_label();
        let exit = self.new_label();
        self.operand(from).st(i);
        self.bind(head);
        self.ld(i).operand(to);
        let exit_cond = if step > 0 { Cond::Ge } else { Cond::Le };
        self.br_icmp(exit_cond, exit);
        body(self);
        self.inc(i, step);
        self.goto(head);
        self.bind(exit);
        self
    }

    /// `while a cond b { body }` where `operands` pushes a then b
    /// (ints).
    pub fn while_icmp(
        &mut self,
        cond: Cond,
        operands: impl FnOnce(&mut Self),
        body: impl FnOnce(&mut Self),
    ) -> &mut Self {
        let head = self.new_label();
        let exit = self.new_label();
        self.bind(head);
        operands(self);
        self.br_icmp(cond.negate(), exit);
        body(self);
        self.goto(head);
        self.bind(exit);
        self
    }

    /// `do { body } while a cond b` (ints). The body always runs at
    /// least once; the back edge is the conditional branch itself.
    pub fn do_while_icmp(
        &mut self,
        body: impl FnOnce(&mut Self),
        operands: impl FnOnce(&mut Self),
        cond: Cond,
    ) -> &mut Self {
        let head = self.new_label();
        self.bind(head);
        body(self);
        operands(self);
        self.br_icmp(cond, head);
        self
    }

    /// `if a cond b { then_b }` (ints).
    pub fn if_icmp(
        &mut self,
        cond: Cond,
        operands: impl FnOnce(&mut Self),
        then_b: impl FnOnce(&mut Self),
    ) -> &mut Self {
        let skip = self.new_label();
        operands(self);
        self.br_icmp(cond.negate(), skip);
        then_b(self);
        self.bind(skip);
        self
    }

    /// `if a cond b { then_b } else { else_b }` (ints).
    pub fn if_else_icmp(
        &mut self,
        cond: Cond,
        operands: impl FnOnce(&mut Self),
        then_b: impl FnOnce(&mut Self),
        else_b: impl FnOnce(&mut Self),
    ) -> &mut Self {
        let else_l = self.new_label();
        let end = self.new_label();
        operands(self);
        self.br_icmp(cond.negate(), else_l);
        then_b(self);
        self.goto(end);
        self.bind(else_l);
        else_b(self);
        self.bind(end);
        self
    }

    /// `if a cond b { then_b }` (floats). Branches on the *positive*
    /// condition so IEEE NaN semantics hold: any comparison with NaN
    /// (except `Ne`) is false and skips the body.
    pub fn if_fcmp(
        &mut self,
        cond: Cond,
        operands: impl FnOnce(&mut Self),
        then_b: impl FnOnce(&mut Self),
    ) -> &mut Self {
        let taken = self.new_label();
        let skip = self.new_label();
        operands(self);
        self.br_fcmp(cond, taken);
        self.goto(skip);
        self.bind(taken);
        then_b(self);
        self.bind(skip);
        self
    }

    /// `if a cond b { then_b } else { else_b }` (floats). As with
    /// [`FnBuilder::if_fcmp`], NaN operands take the else branch.
    pub fn if_else_fcmp(
        &mut self,
        cond: Cond,
        operands: impl FnOnce(&mut Self),
        then_b: impl FnOnce(&mut Self),
        else_b: impl FnOnce(&mut Self),
    ) -> &mut Self {
        let taken = self.new_label();
        let end = self.new_label();
        operands(self);
        self.br_fcmp(cond, taken);
        else_b(self);
        self.goto(end);
        self.bind(taken);
        then_b(self);
        self.bind(end);
        self
    }

    fn finish(mut self, name: String) -> Result<Function, VmError> {
        // resolve label-encoded branch targets
        for &at in &self.fixups {
            let instr = self.code[at as usize];
            let lbl = instr
                .branch_target()
                .expect("fixup list contains only branches");
            let target = self.labels[lbl as usize].ok_or(VmError::UnboundLabel(lbl))?;
            self.code[at as usize] = instr.map_target(|_| target);
        }
        Ok(Function {
            name,
            n_params: self.n_params,
            n_locals: self.n_locals,
            returns: self.returns,
            code: self.code,
        })
    }
}

/// Incrementally builds a [`Program`].
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    functions: Vec<Option<Function>>,
    names: Vec<String>,
    signatures: Vec<(u16, bool)>,
    classes: Vec<ClassDef>,
    globals: Vec<ElemKind>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> ProgramBuilder {
        ProgramBuilder::default()
    }

    /// Registers a static variable and returns its id.
    pub fn global(&mut self, kind: ElemKind) -> GlobalId {
        self.globals.push(kind);
        GlobalId(self.globals.len() as u16 - 1)
    }

    /// Registers a class layout and returns its id.
    pub fn class(&mut self, fields: &[ElemKind]) -> ClassId {
        self.classes.push(ClassDef {
            fields: fields.to_vec(),
        });
        ClassId(self.classes.len() as u16 - 1)
    }

    /// Forward-declares a function so mutually recursive code can call
    /// it before it is defined.
    pub fn declare(&mut self, name: &str, n_params: u16, returns: bool) -> FuncId {
        self.functions.push(None);
        self.names.push(name.to_string());
        self.signatures.push((n_params, returns));
        FuncId(self.functions.len() as u16 - 1)
    }

    /// Defines the body of a previously declared function.
    ///
    /// # Panics
    ///
    /// Panics if the function was already defined.
    pub fn define(&mut self, id: FuncId, build: impl FnOnce(&mut FnBuilder)) {
        let (n_params, returns) = self.signatures[id.0 as usize];
        let mut fb = FnBuilder::new(n_params, returns);
        build(&mut fb);
        let f = fb
            .finish(self.names[id.0 as usize].clone())
            .expect("builder used an unbound label");
        let slot = &mut self.functions[id.0 as usize];
        assert!(slot.is_none(), "function defined twice");
        *slot = Some(f);
    }

    /// Declares and defines a function in one step.
    pub fn function(
        &mut self,
        name: &str,
        n_params: u16,
        returns: bool,
        build: impl FnOnce(&mut FnBuilder),
    ) -> FuncId {
        let id = self.declare(name, n_params, returns);
        self.define(id, build);
        id
    }

    /// Finishes the program with `entry` as the start function, running
    /// the bytecode verifier.
    ///
    /// # Errors
    ///
    /// Verification failures ([`VmError::Verify`] and friends) or a
    /// declared-but-undefined function.
    ///
    /// # Panics
    ///
    /// Panics if a declared function was never defined.
    pub fn finish(self, entry: FuncId) -> Result<Program, VmError> {
        let functions: Vec<Function> = self
            .functions
            .into_iter()
            .enumerate()
            .map(|(i, f)| f.unwrap_or_else(|| panic!("function {} declared but not defined", i)))
            .collect();
        let program = Program {
            functions,
            classes: self.classes,
            globals: self.globals,
            entry,
        };
        verify::verify(&program)?;
        Ok(program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Interp;
    use crate::trace::NullSink;

    #[test]
    fn for_loop_sums() {
        let mut b = ProgramBuilder::new();
        let main = b.function("main", 0, true, |f| {
            let s = f.local();
            let i = f.local();
            f.ci(0).st(s);
            f.for_in(i, 0.into(), 5.into(), |f| {
                f.ld(s).ld(i).iadd().st(s);
            });
            f.ld(s).ret();
        });
        let p = b.finish(main).unwrap();
        let r = Interp::run(&p, &mut NullSink).unwrap();
        assert_eq!(r.ret.unwrap().as_int().unwrap(), 10);
    }

    #[test]
    fn nested_if_else() {
        let mut b = ProgramBuilder::new();
        let main = b.function("main", 0, true, |f| {
            let x = f.local();
            f.ci(7).st(x);
            f.if_else_icmp(
                Cond::Gt,
                |f| {
                    f.ld(x).ci(5);
                },
                |f| {
                    f.ci(1);
                },
                |f| {
                    f.ci(0);
                },
            );
            f.ret();
        });
        let p = b.finish(main).unwrap();
        let r = Interp::run(&p, &mut NullSink).unwrap();
        assert_eq!(r.ret.unwrap().as_int().unwrap(), 1);
    }

    #[test]
    fn do_while_runs_once() {
        let mut b = ProgramBuilder::new();
        let main = b.function("main", 0, true, |f| {
            let n = f.local();
            f.ci(0).st(n);
            f.do_while_icmp(
                |f| {
                    f.inc(n, 1);
                },
                |f| {
                    f.ld(n).ci(0);
                },
                Cond::Lt,
            );
            f.ld(n).ret();
        });
        let p = b.finish(main).unwrap();
        let r = Interp::run(&p, &mut NullSink).unwrap();
        assert_eq!(r.ret.unwrap().as_int().unwrap(), 1);
    }

    #[test]
    fn calls_and_params() {
        let mut b = ProgramBuilder::new();
        let sq = b.function("square", 1, true, |f| {
            let x = f.param(0);
            f.ld(x).ld(x).imul().ret();
        });
        let main = b.function("main", 0, true, |f| {
            f.ci(6).call(sq).ret();
        });
        let p = b.finish(main).unwrap();
        let r = Interp::run(&p, &mut NullSink).unwrap();
        assert_eq!(r.ret.unwrap().as_int().unwrap(), 36);
    }

    #[test]
    fn unbound_label_panics_on_define() {
        let mut b = ProgramBuilder::new();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            b.function("bad", 0, false, |f| {
                let l = f.new_label();
                f.goto(l);
                f.ret_void();
            });
        }));
        assert!(result.is_err());
    }

    #[test]
    fn arrays_roundtrip() {
        let mut b = ProgramBuilder::new();
        let main = b.function("main", 0, true, |f| {
            let a = f.local();
            let i = f.local();
            f.ci(8).newarray(ElemKind::Int).st(a);
            f.for_in(i, 0.into(), 8.into(), |f| {
                f.arr_set(
                    a,
                    |f| {
                        f.ld(i);
                    },
                    |f| {
                        f.ld(i).ld(i).imul();
                    },
                );
            });
            f.arr_get(a, |f| {
                f.ci(5);
            })
            .ret();
        });
        let p = b.finish(main).unwrap();
        let r = Interp::run(&p, &mut NullSink).unwrap();
        assert_eq!(r.ret.unwrap().as_int().unwrap(), 25);
    }
}
