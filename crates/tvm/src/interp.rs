//! The TraceVM interpreter.
//!
//! Executes a verified [`Program`] sequentially under the deterministic
//! [`CostModel`], emitting trace events to a [`TraceSink`]. This models
//! one Hydra CPU running JIT-compiled (possibly annotation-instrumented)
//! code while the TEST hardware snoops retired memory operations and
//! annotation instructions.
//!
//! Annotation cycle costs are tallied per component
//! ([`AnnotationCycles`]) so the profiling-slowdown breakdown of the
//! paper's Figure 6 (loop markers vs local-variable annotations vs
//! statistics reads) can be reported from a single run.

use crate::cost::CostModel;
use crate::error::VmError;
use crate::hotloc::{LocationHook, NoHook};
use crate::isa::{ElemKind, Instr, Pc};
use crate::mem::Memory;
use crate::program::{FuncId, Program};
use crate::trace::{Cycles, TraceSink};
use crate::value::Value;
use crate::WORD_BYTES;

/// Cycles spent executing annotation instructions, by component
/// (Figure 6's stacked bars).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AnnotationCycles {
    /// `sloop` / `eloop` / `eoi` markers.
    pub markers: u64,
    /// `lwl` / `swl` local-variable annotations.
    pub locals: u64,
    /// End-of-STL statistics read routines.
    pub stats_reads: u64,
    /// Edge-splitting plumbing branches ([`crate::isa::Instr::AGoto`])
    /// the annotation compiler inserts to detour through trampolines.
    pub plumbing: u64,
}

impl AnnotationCycles {
    /// Total annotation cycles. Since the annotation compiler inserts
    /// only instructions tallied here, subtracting this total from an
    /// annotated run's cycles yields the plain program's cycles
    /// exactly.
    pub fn total(&self) -> u64 {
        self.markers + self.locals + self.stats_reads + self.plumbing
    }
}

/// A completed run together with its final memory image.
///
/// The loop-rescue verifier and the differential fuzzer compare two
/// program variants for *bit-identical* final state: same return value
/// and the same word-for-word heap (statics segment included). Since
/// allocation is a deterministic bump allocator, semantically equal
/// runs produce equal images.
#[derive(Debug, Clone)]
pub struct FinalState {
    /// The ordinary run outcome (cycles, instructions, return value).
    pub result: RunResult,
    /// The memory exactly as the program left it.
    pub memory: Memory,
}

/// The outcome of a completed run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Total simulated cycles.
    pub cycles: Cycles,
    /// Retired instruction count.
    pub instructions: u64,
    /// The entry function's return value, if it returned one. `None`
    /// after `Halt` or a void return.
    pub ret: Option<Value>,
    /// Cycle breakdown of annotation overhead.
    pub annotation_cycles: AnnotationCycles,
}

struct Frame {
    func: u16,
    pc: u32,
    locals_base: usize,
    stack_base: usize,
    activation: u32,
    /// the `Call` instruction that created this frame (None for entry)
    call_site: Option<Pc>,
    /// the most recent value-returning call whose result still sits
    /// unconsumed on the operand stack: (site, stack index of value)
    pending_result: Option<(Pc, usize)>,
    /// a return value parked in a local by `Store` (register move):
    /// the real use is the first `Load` of that local
    pending_local: Option<(Pc, u16)>,
}

/// The interpreter. Use the associated functions [`Interp::run`] /
/// [`Interp::run_with`]; there is no long-lived interpreter object.
#[derive(Debug)]
pub struct Interp;

impl Interp {
    /// Default instruction budget: generous for every benchmark in this
    /// workspace, small enough to catch accidental infinite loops.
    pub const DEFAULT_FUEL: u64 = 2_000_000_000;

    /// Runs `program` from its entry function with default cost model
    /// and fuel.
    ///
    /// # Errors
    ///
    /// Any [`VmError`] raised during execution (type errors, bounds,
    /// division by zero, fuel exhaustion, …).
    pub fn run<S: TraceSink>(program: &Program, sink: &mut S) -> Result<RunResult, VmError> {
        Self::run_with(program, sink, CostModel::default(), Self::DEFAULT_FUEL)
    }

    /// Runs `program` with an explicit cost model and instruction
    /// budget.
    ///
    /// # Errors
    ///
    /// As [`Interp::run`]; additionally [`VmError::FuelExhausted`] once
    /// `fuel` instructions have retired.
    pub fn run_with<S: TraceSink>(
        program: &Program,
        sink: &mut S,
        cost: CostModel,
        fuel: u64,
    ) -> Result<RunResult, VmError> {
        Self::run_to_state(program, sink, cost, fuel).map(|s| s.result)
    }

    /// Like [`Interp::run`], but additionally hands back the final
    /// [`Memory`] image for state-equivalence checks.
    ///
    /// # Errors
    ///
    /// As [`Interp::run`].
    pub fn run_state<S: TraceSink>(program: &Program, sink: &mut S) -> Result<FinalState, VmError> {
        Self::run_to_state(program, sink, CostModel::default(), Self::DEFAULT_FUEL)
    }

    /// Runs `program` and returns both the [`RunResult`] and the final
    /// memory image.
    ///
    /// # Errors
    ///
    /// As [`Interp::run_with`].
    pub fn run_to_state<S: TraceSink>(
        program: &Program,
        sink: &mut S,
        cost: CostModel,
        fuel: u64,
    ) -> Result<FinalState, VmError> {
        Self::run_to_state_hooked(program, sink, cost, fuel, &mut NoHook)
    }

    /// Like [`Interp::run`], but with a [`LocationHook`] observing every
    /// retired instruction. Hooks are free in simulated time: cycles,
    /// trace events, and program results are identical to an un-hooked
    /// run. This is the counting-tier entry point (`jrpm::tier`).
    ///
    /// # Errors
    ///
    /// As [`Interp::run`].
    pub fn run_hooked<S: TraceSink, H: LocationHook>(
        program: &Program,
        sink: &mut S,
        hook: &mut H,
    ) -> Result<RunResult, VmError> {
        Self::run_to_state_hooked(
            program,
            sink,
            CostModel::default(),
            Self::DEFAULT_FUEL,
            hook,
        )
        .map(|s| s.result)
    }

    /// The fully general entry point: hooked, costed, fuelled, and
    /// returning the final memory image. All other `run_*` methods
    /// delegate here (with [`NoHook`], whose probe monomorphizes away).
    ///
    /// # Errors
    ///
    /// As [`Interp::run_with`].
    pub fn run_to_state_hooked<S: TraceSink, H: LocationHook>(
        program: &Program,
        sink: &mut S,
        cost: CostModel,
        fuel: u64,
        hook: &mut H,
    ) -> Result<FinalState, VmError> {
        let entry = program.function(program.entry)?;
        if entry.n_params != 0 {
            return Err(VmError::Verify {
                func: program.entry.0,
                at: 0,
                reason: "entry function must take no parameters".into(),
            });
        }

        let mut mem = Memory::new(&program.globals);
        let mut stack: Vec<Value> = Vec::with_capacity(64);
        let mut locals: Vec<Value> = vec![Value::Int(0); entry.n_locals as usize];
        let mut frames: Vec<Frame> = Vec::with_capacity(16);
        let mut next_activation: u32 = 1;
        let mut frame = Frame {
            func: program.entry.0,
            pc: 0,
            locals_base: 0,
            stack_base: 0,
            activation: 0,
            call_site: None,
            pending_result: None,
            pending_local: None,
        };

        let mut now: Cycles = 0;
        let mut instructions: u64 = 0;
        let mut ann = AnnotationCycles::default();
        let entry_returns = entry.returns;

        let mut code: &[Instr] = &entry.code;

        macro_rules! pop {
            () => {
                stack.pop().ok_or(VmError::StackUnderflow)?
            };
        }
        macro_rules! pop_int {
            () => {
                pop!().as_int()?
            };
        }
        macro_rules! pop_float {
            () => {
                pop!().as_float()?
            };
        }

        loop {
            // a pending return value is "used" once anything shortened
            // the stack past it (store, arithmetic, argument pop, ...)
            if let Some((site, idx)) = frame.pending_result {
                if stack.len() <= idx {
                    sink.call_result_use(site, now);
                    frame.pending_result = None;
                }
            }
            let instr = code
                .get(frame.pc as usize)
                .copied()
                .ok_or(VmError::FellOffEnd(frame.func))?;
            hook.at(frame.func, frame.pc);
            let pc_here = Pc {
                func: FuncId(frame.func),
                idx: frame.pc,
            };
            instructions += 1;
            if instructions > fuel {
                return Err(VmError::FuelExhausted);
            }
            now += u64::from(cost.cost(&instr));
            let mut next_pc = frame.pc + 1;

            match instr {
                Instr::IConst(v) => stack.push(Value::Int(v)),
                Instr::FConst(v) => stack.push(Value::Float(v)),
                Instr::NullConst => stack.push(Value::Null),
                Instr::Load(l) => {
                    if let Some((site, pl)) = frame.pending_local {
                        if pl == l.0 {
                            sink.call_result_use(site, now);
                            frame.pending_local = None;
                        }
                    }
                    let slot = frame.locals_base + l.0 as usize;
                    stack.push(*locals.get(slot).ok_or(VmError::BadLocal(l.0))?);
                }
                Instr::Store(l) => {
                    // a return value moved straight into a local is
                    // merely parked; its first Load is the real use.
                    // Overwriting a parked local before any read means
                    // the value was dead: drop the tracking silently.
                    match frame.pending_result {
                        Some((site, idx)) if idx + 1 == stack.len() => {
                            frame.pending_result = None;
                            frame.pending_local = Some((site, l.0));
                        }
                        _ => {
                            if matches!(frame.pending_local, Some((_, pl)) if pl == l.0) {
                                frame.pending_local = None;
                            }
                        }
                    }
                    let v = pop!();
                    let slot = frame.locals_base + l.0 as usize;
                    *locals.get_mut(slot).ok_or(VmError::BadLocal(l.0))? = v;
                }
                Instr::IInc(l, by) => {
                    if let Some((site, pl)) = frame.pending_local {
                        if pl == l.0 {
                            sink.call_result_use(site, now);
                            frame.pending_local = None;
                        }
                    }
                    let idx = frame.locals_base + l.0 as usize;
                    let slot = locals.get_mut(idx).ok_or(VmError::BadLocal(l.0))?;
                    *slot = Value::Int(slot.as_int()?.wrapping_add(i64::from(by)));
                }
                Instr::Dup => {
                    let v = *stack.last().ok_or(VmError::StackUnderflow)?;
                    stack.push(v);
                }
                Instr::Pop => {
                    pop!();
                }
                Instr::Swap => {
                    let b = pop!();
                    let a = pop!();
                    stack.push(b);
                    stack.push(a);
                }

                Instr::IAdd => bin_int(&mut stack, |a, b| Ok(a.wrapping_add(b)))?,
                Instr::ISub => bin_int(&mut stack, |a, b| Ok(a.wrapping_sub(b)))?,
                Instr::IMul => bin_int(&mut stack, |a, b| Ok(a.wrapping_mul(b)))?,
                Instr::IDiv => bin_int(&mut stack, |a, b| {
                    if b == 0 {
                        Err(VmError::DivisionByZero)
                    } else {
                        Ok(a.wrapping_div(b))
                    }
                })?,
                Instr::IRem => bin_int(&mut stack, |a, b| {
                    if b == 0 {
                        Err(VmError::DivisionByZero)
                    } else {
                        Ok(a.wrapping_rem(b))
                    }
                })?,
                Instr::INeg => {
                    let a = pop_int!();
                    stack.push(Value::Int(a.wrapping_neg()));
                }
                Instr::IAnd => bin_int(&mut stack, |a, b| Ok(a & b))?,
                Instr::IOr => bin_int(&mut stack, |a, b| Ok(a | b))?,
                Instr::IXor => bin_int(&mut stack, |a, b| Ok(a ^ b))?,
                Instr::IShl => bin_int(&mut stack, |a, b| Ok(a.wrapping_shl(b as u32 & 63)))?,
                Instr::IShr => bin_int(&mut stack, |a, b| Ok(a.wrapping_shr(b as u32 & 63)))?,
                Instr::IUShr => {
                    bin_int(
                        &mut stack,
                        |a, b| Ok(((a as u64) >> (b as u32 & 63)) as i64),
                    )?
                }
                Instr::IMin => bin_int(&mut stack, |a, b| Ok(a.min(b)))?,
                Instr::IMax => bin_int(&mut stack, |a, b| Ok(a.max(b)))?,
                Instr::ICmp => bin_int(&mut stack, |a, b| Ok(i64::from(a.cmp(&b) as i8)))?,

                Instr::FAdd => bin_float(&mut stack, |a, b| a + b)?,
                Instr::FSub => bin_float(&mut stack, |a, b| a - b)?,
                Instr::FMul => bin_float(&mut stack, |a, b| a * b)?,
                Instr::FDiv => bin_float(&mut stack, |a, b| a / b)?,
                Instr::FMin => bin_float(&mut stack, f64::min)?,
                Instr::FMax => bin_float(&mut stack, f64::max)?,
                Instr::FNeg => un_float(&mut stack, |a| -a)?,
                Instr::FAbs => un_float(&mut stack, f64::abs)?,
                Instr::FSqrt => un_float(&mut stack, f64::sqrt)?,
                Instr::FSin => un_float(&mut stack, f64::sin)?,
                Instr::FCos => un_float(&mut stack, f64::cos)?,
                Instr::FExp => un_float(&mut stack, f64::exp)?,
                Instr::FLog => un_float(&mut stack, f64::ln)?,
                Instr::I2F => {
                    let a = pop_int!();
                    stack.push(Value::Float(a as f64));
                }
                Instr::F2I => {
                    let a = pop_float!();
                    stack.push(Value::Int(a as i64));
                }

                Instr::Goto(t) => next_pc = t,
                Instr::AGoto(t) => {
                    ann.plumbing += u64::from(cost.simple);
                    next_pc = t;
                }
                Instr::If(c, t) => {
                    let a = pop_int!();
                    if c.eval_int(a, 0) {
                        next_pc = t;
                    }
                }
                Instr::IfICmp(c, t) => {
                    let b = pop_int!();
                    let a = pop_int!();
                    if c.eval_int(a, b) {
                        next_pc = t;
                    }
                }
                Instr::IfFCmp(c, t) => {
                    let b = pop_float!();
                    let a = pop_float!();
                    if c.eval_float(a, b) {
                        next_pc = t;
                    }
                }

                Instr::NewArray(kind) => {
                    let len = pop_int!();
                    if len < 0 || len > i64::from(u32::MAX / WORD_BYTES) - 2 {
                        return Err(VmError::BadArrayLength(len));
                    }
                    let n = len as u32;
                    let base = mem.alloc(n + 1, kind)?;
                    mem.write(base, Value::Int(len))?;
                    now += u64::from(cost.alloc_per_word) * u64::from(n);
                    // zero-initialization produces speculative store state
                    sink.heap_store(base, now, pc_here);
                    for w in 0..n {
                        sink.heap_store(base + (w + 1) * WORD_BYTES, now, pc_here);
                    }
                    stack.push(Value::Ref(base));
                }
                Instr::ALoad => {
                    let idx = pop_int!();
                    let base = pop!().as_ref_addr()?;
                    let addr = array_elem_addr(&mem, base, idx)?;
                    let v = mem.read(addr)?;
                    sink.heap_load(addr, now, pc_here);
                    stack.push(v);
                }
                Instr::AStore => {
                    let v = pop!();
                    let idx = pop_int!();
                    let base = pop!().as_ref_addr()?;
                    let addr = array_elem_addr(&mem, base, idx)?;
                    mem.write(addr, v)?;
                    sink.heap_store(addr, now, pc_here);
                }
                Instr::ArrayLen => {
                    let base = pop!().as_ref_addr()?;
                    let len = mem.read(base)?.as_int()?;
                    stack.push(Value::Int(len));
                }
                Instr::NewObject(cid) => {
                    let class = program.class(cid)?;
                    let n = class.fields.len() as u32;
                    // header word records the field count for bounds checks
                    let base = mem.alloc(n + 1, ElemKind::Int)?;
                    mem.write(base, Value::Int(i64::from(n)))?;
                    for (i, &kind) in class.fields.iter().enumerate() {
                        let addr = base + (i as u32 + 1) * WORD_BYTES;
                        let zero = match kind {
                            ElemKind::Int => Value::Int(0),
                            ElemKind::Float => Value::Float(0.0),
                            ElemKind::Ref => Value::Null,
                        };
                        mem.write(addr, zero)?;
                        sink.heap_store(addr, now, pc_here);
                    }
                    now += u64::from(cost.alloc_per_word) * u64::from(n);
                    stack.push(Value::Ref(base));
                }
                Instr::GetField(idx) => {
                    let base = pop!().as_ref_addr()?;
                    let addr = field_addr(&mem, base, idx)?;
                    let v = mem.read(addr)?;
                    sink.heap_load(addr, now, pc_here);
                    stack.push(v);
                }
                Instr::PutField(idx) => {
                    let v = pop!();
                    let base = pop!().as_ref_addr()?;
                    let addr = field_addr(&mem, base, idx)?;
                    mem.write(addr, v)?;
                    sink.heap_store(addr, now, pc_here);
                }
                Instr::GetStatic(g) => {
                    let addr = mem.global_addr(g.0);
                    let v = mem.read(addr)?;
                    sink.heap_load(addr, now, pc_here);
                    stack.push(v);
                }
                Instr::PutStatic(g) => {
                    let v = pop!();
                    let addr = mem.global_addr(g.0);
                    if let Value::Int(i) = v {
                        sink.static_store(g.0, i, now, pc_here);
                    }
                    mem.write(addr, v)?;
                    sink.heap_store(addr, now, pc_here);
                }

                Instr::Call(fid) => {
                    let callee = program.function(fid)?;
                    let n_args = callee.n_params as usize;
                    if stack.len() < frame.stack_base + n_args {
                        return Err(VmError::StackUnderflow);
                    }
                    let args_start = stack.len() - n_args;
                    let locals_base = locals.len();
                    locals.extend_from_slice(&stack[args_start..]);
                    locals.resize(locals_base + callee.n_locals as usize, Value::Int(0));
                    stack.truncate(args_start);
                    frame.pc = next_pc;
                    frames.push(frame);
                    sink.call_enter(pc_here, next_activation, now);
                    frame = Frame {
                        func: fid.0,
                        pc: 0,
                        locals_base,
                        stack_base: stack.len(),
                        activation: next_activation,
                        call_site: Some(pc_here),
                        pending_result: None,
                        pending_local: None,
                    };
                    next_activation += 1;
                    code = &callee.code;
                    continue;
                }
                Instr::Return | Instr::ReturnVoid => {
                    let returns = matches!(instr, Instr::Return);
                    let ret_val = if returns { Some(pop!()) } else { None };
                    stack.truncate(frame.stack_base);
                    locals.truncate(frame.locals_base);
                    let ret_site = frame.call_site;
                    if let Some(site) = frame.call_site {
                        sink.call_exit(site, now);
                    }
                    match frames.pop() {
                        Some(caller) => {
                            frame = caller;
                            code = &program.function(FuncId(frame.func))?.code;
                            if let Some(v) = ret_val {
                                stack.push(v);
                                if let Some(site) = ret_site {
                                    frame.pending_result = Some((site, stack.len() - 1));
                                }
                            }
                            continue;
                        }
                        None => {
                            // entry function returned
                            let ret = if entry_returns { ret_val } else { None };
                            return Ok(FinalState {
                                result: RunResult {
                                    cycles: now,
                                    instructions,
                                    ret,
                                    annotation_cycles: ann,
                                },
                                memory: mem,
                            });
                        }
                    }
                }
                Instr::Halt => {
                    return Ok(FinalState {
                        result: RunResult {
                            cycles: now,
                            instructions,
                            ret: None,
                            annotation_cycles: ann,
                        },
                        memory: mem,
                    });
                }

                Instr::SLoop(id, n) => {
                    ann.markers += u64::from(cost.loop_marker);
                    sink.loop_enter(id, n, frame.activation, now);
                }
                Instr::Eoi(id) => {
                    ann.markers += u64::from(cost.eoi_marker);
                    sink.loop_iter(id, now);
                }
                Instr::ELoop(id, _n) => {
                    ann.markers += u64::from(cost.loop_marker);
                    sink.loop_exit(id, now);
                }
                Instr::Lwl(v) => {
                    ann.locals += u64::from(cost.local_annotation);
                    sink.local_load(v, frame.activation, now, pc_here);
                }
                Instr::Swl(v) => {
                    ann.locals += u64::from(cost.local_annotation);
                    sink.local_store(v, frame.activation, now, pc_here);
                }
                Instr::ReadStats(id) => {
                    ann.stats_reads += u64::from(cost.read_stats);
                    sink.stats_read(id, now);
                }
            }

            frame.pc = next_pc;
        }
    }
}

#[inline]
fn bin_int(
    stack: &mut Vec<Value>,
    f: impl FnOnce(i64, i64) -> Result<i64, VmError>,
) -> Result<(), VmError> {
    let b = stack.pop().ok_or(VmError::StackUnderflow)?.as_int()?;
    let a = stack.pop().ok_or(VmError::StackUnderflow)?.as_int()?;
    stack.push(Value::Int(f(a, b)?));
    Ok(())
}

#[inline]
fn bin_float(stack: &mut Vec<Value>, f: impl FnOnce(f64, f64) -> f64) -> Result<(), VmError> {
    let b = stack.pop().ok_or(VmError::StackUnderflow)?.as_float()?;
    let a = stack.pop().ok_or(VmError::StackUnderflow)?.as_float()?;
    stack.push(Value::Float(f(a, b)));
    Ok(())
}

#[inline]
fn un_float(stack: &mut Vec<Value>, f: impl FnOnce(f64) -> f64) -> Result<(), VmError> {
    let a = stack.pop().ok_or(VmError::StackUnderflow)?.as_float()?;
    stack.push(Value::Float(f(a)));
    Ok(())
}

#[inline]
fn array_elem_addr(mem: &Memory, base: u32, idx: i64) -> Result<u32, VmError> {
    let len = mem.read(base)?.as_int()?;
    if idx < 0 || idx >= len {
        return Err(VmError::IndexOutOfBounds { index: idx, len });
    }
    Ok(base + (idx as u32 + 1) * WORD_BYTES)
}

#[inline]
fn field_addr(mem: &Memory, base: u32, idx: u16) -> Result<u32, VmError> {
    let n = mem.read(base)?.as_int()?;
    if i64::from(idx) >= n {
        return Err(VmError::IndexOutOfBounds {
            index: i64::from(idx),
            len: n,
        });
    }
    Ok(base + (u32::from(idx) + 1) * WORD_BYTES)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::ProgramBuilder;
    use crate::isa::Cond;
    use crate::trace::{CountingSink, NullSink};

    #[test]
    fn out_of_range_local_is_a_typed_error() {
        // hand-assembled (the builder cannot produce this): Load of a
        // slot past the frame must fail closed, not panic
        use crate::program::{Function, Program};
        let p = Program {
            functions: vec![Function {
                name: "main".into(),
                n_params: 0,
                n_locals: 1,
                returns: false,
                code: vec![Instr::Load(crate::isa::Local(7)), Instr::ReturnVoid],
            }],
            classes: Vec::new(),
            globals: Vec::new(),
            entry: FuncId(0),
        };
        assert_eq!(
            Interp::run(&p, &mut NullSink).unwrap_err(),
            VmError::BadLocal(7)
        );
    }

    #[test]
    fn cycles_accumulate_deterministically() {
        let mut b = ProgramBuilder::new();
        let main = b.function("main", 0, true, |f| {
            f.ci(2).ci(3).iadd().ret();
        });
        let p = b.finish(main).unwrap();
        let r1 = Interp::run(&p, &mut NullSink).unwrap();
        let r2 = Interp::run(&p, &mut NullSink).unwrap();
        assert_eq!(r1.cycles, r2.cycles);
        assert_eq!(r1.ret.unwrap().as_int().unwrap(), 5);
        // iconst(1) + iconst(1) + iadd(1) + return(2)
        assert_eq!(r1.cycles, 5);
    }

    #[test]
    fn heap_events_are_emitted() {
        let mut b = ProgramBuilder::new();
        let main = b.function("main", 0, false, |f| {
            let a = f.local();
            f.ci(4).newarray(ElemKind::Int).st(a);
            f.arr_set(
                a,
                |f| {
                    f.ci(0);
                },
                |f| {
                    f.ci(9);
                },
            );
            f.arr_get(a, |f| {
                f.ci(0);
            })
            .drop_top();
            f.ret_void();
        });
        let p = b.finish(main).unwrap();
        let mut sink = CountingSink::default();
        Interp::run(&p, &mut sink).unwrap();
        // 5 init stores (header + 4 elems) + 1 astore
        assert_eq!(sink.stores, 6);
        assert_eq!(sink.loads, 1);
    }

    #[test]
    fn division_by_zero_is_an_error() {
        let mut b = ProgramBuilder::new();
        let main = b.function("main", 0, true, |f| {
            f.ci(1).ci(0).idiv().ret();
        });
        let p = b.finish(main).unwrap();
        assert_eq!(
            Interp::run(&p, &mut NullSink).unwrap_err(),
            VmError::DivisionByZero
        );
    }

    #[test]
    fn fuel_exhaustion_stops_infinite_loops() {
        let mut b = ProgramBuilder::new();
        let main = b.function("main", 0, false, |f| {
            let head = f.new_label();
            f.bind(head);
            f.goto(head);
            f.ret_void();
        });
        let p = b.finish(main).unwrap();
        let err = Interp::run_with(&p, &mut NullSink, CostModel::default(), 1000).unwrap_err();
        assert_eq!(err, VmError::FuelExhausted);
    }

    #[test]
    fn out_of_bounds_array_access() {
        let mut b = ProgramBuilder::new();
        let main = b.function("main", 0, true, |f| {
            let a = f.local();
            f.ci(2).newarray(ElemKind::Int).st(a);
            f.arr_get(a, |f| {
                f.ci(5);
            })
            .ret();
        });
        let p = b.finish(main).unwrap();
        assert!(matches!(
            Interp::run(&p, &mut NullSink).unwrap_err(),
            VmError::IndexOutOfBounds { index: 5, len: 2 }
        ));
    }

    #[test]
    fn object_fields_roundtrip() {
        let mut b = ProgramBuilder::new();
        let cls = b.class(&[ElemKind::Int, ElemKind::Float]);
        let main = b.function("main", 0, true, |f| {
            let o = f.local();
            f.newobject(cls).st(o);
            f.ld(o).ci(41).putfield(0);
            f.ld(o).getfield(0).ci(1).iadd().ret();
        });
        let p = b.finish(main).unwrap();
        let r = Interp::run(&p, &mut NullSink).unwrap();
        assert_eq!(r.ret.unwrap().as_int().unwrap(), 42);
    }

    #[test]
    fn statics_are_traced_heap_accesses() {
        let mut b = ProgramBuilder::new();
        let g = b.global(ElemKind::Int);
        let main = b.function("main", 0, true, |f| {
            f.ci(7).putstatic(g);
            f.getstatic(g).ret();
        });
        let p = b.finish(main).unwrap();
        let mut sink = CountingSink::default();
        let r = Interp::run(&p, &mut sink).unwrap();
        assert_eq!(r.ret.unwrap().as_int().unwrap(), 7);
        assert_eq!(sink.stores, 1);
        assert_eq!(sink.loads, 1);
    }

    #[test]
    fn recursion_works() {
        let mut b = ProgramBuilder::new();
        let fact = b.declare("fact", 1, true);
        b.define(fact, |f| {
            f.if_else_icmp(
                Cond::Le,
                |f| {
                    f.ld(f.param(0)).ci(1);
                },
                |f| {
                    f.ci(1);
                },
                |f| {
                    f.ld(f.param(0));
                    f.ld(f.param(0)).ci(1).isub().call(fact);
                    f.imul();
                },
            );
            f.ret();
        });
        let main = b.function("main", 0, true, |f| {
            f.ci(10).call(fact).ret();
        });
        let p = b.finish(main).unwrap();
        let r = Interp::run(&p, &mut NullSink).unwrap();
        assert_eq!(r.ret.unwrap().as_int().unwrap(), 3628800);
    }

    #[test]
    fn annotation_cycles_are_tallied() {
        use crate::isa::{Instr, LoopId};
        let mut b = ProgramBuilder::new();
        let main = b.function("main", 0, false, |f| {
            f.raw(Instr::SLoop(LoopId(0), 1));
            f.raw(Instr::Lwl(0));
            f.raw(Instr::Eoi(LoopId(0)));
            f.raw(Instr::ELoop(LoopId(0), 1));
            f.raw(Instr::ReadStats(LoopId(0)));
            f.ret_void();
        });
        let p = b.finish(main).unwrap();
        let cost = CostModel::default();
        let r = Interp::run(&p, &mut NullSink).unwrap();
        assert_eq!(
            r.annotation_cycles.markers,
            u64::from(2 * cost.loop_marker + cost.eoi_marker)
        );
        assert_eq!(r.annotation_cycles.locals, u64::from(cost.local_annotation));
        assert_eq!(r.annotation_cycles.stats_reads, u64::from(cost.read_stats));
    }
}
