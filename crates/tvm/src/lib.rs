//! # TraceVM
//!
//! TraceVM (`tvm`) is the execution substrate of this reproduction of
//! *TEST: A Tracer for Extracting Speculative Threads* (Chen & Olukotun,
//! CGO 2003). The original system profiles Java bytecode running on the
//! Hydra chip-multiprocessor; `tvm` plays the role of the Java virtual
//! machine and the microJIT compiler's output format.
//!
//! It provides:
//!
//! * a compact, verifiable stack-machine bytecode ([`isa::Instr`]) with
//!   locals, objects, arrays, statics and static calls;
//! * a byte-addressed heap ([`mem::Memory`]) with 32-byte cache lines, so
//!   line-granular hardware analyses behave as they would on real
//!   addresses;
//! * a deterministic cycle cost model ([`cost::CostModel`]);
//! * an interpreter ([`interp::Interp`]) that drives a [`trace::TraceSink`]
//!   with the exact event stream the TEST hardware observes: heap
//!   loads/stores, annotated local-variable accesses, and speculative
//!   thread loop (STL) boundary markers;
//! * a builder API ([`build::ProgramBuilder`]) used by the benchmark suite
//!   as its "compiler frontend", and a label-preserving code rewriter
//!   ([`rewrite`]) used by the annotation pass.
//!
//! The annotation instructions (`sloop`, `eloop`, `eoi`, `lwl`, `swl` and
//! the read-statistics callback of Table 4 in the paper) are first-class
//! opcodes; executing them costs cycles in the sequential model, which is
//! how the profiling slowdown of the paper's Figure 6 is *measured* rather
//! than asserted.
//!
//! ## Quick example
//!
//! ```
//! use tvm::build::ProgramBuilder;
//! use tvm::isa::Cond;
//! use tvm::interp::Interp;
//! use tvm::trace::NullSink;
//!
//! # fn main() -> Result<(), tvm::error::VmError> {
//! let mut b = ProgramBuilder::new();
//! let main = b.function("main", 0, true, |f| {
//!     let sum = f.local();
//!     let i = f.local();
//!     f.ci(0).st(sum);
//!     f.for_in(i, 0.into(), 10.into(), |f| {
//!         f.ld(sum).ld(i).iadd().st(sum);
//!     });
//!     f.ld(sum).ret();
//! });
//! let program = b.finish(main)?;
//! let result = Interp::run(&program, &mut NullSink)?;
//! assert_eq!(result.ret.unwrap().as_int()?, 45);
//! # Ok(())
//! # }
//! ```

pub mod alloc;
pub mod build;
pub mod bus;
pub mod cost;
pub mod disasm;
pub mod error;
pub mod hotloc;
pub mod interp;
pub mod isa;
pub mod mem;
pub mod program;
pub mod record;
pub mod rewrite;
pub mod trace;
pub mod value;
pub mod verify;

pub use alloc::{AllocSite, AllocSites, SiteId, SiteKind};
pub use build::{FnBuilder, ProgramBuilder};
pub use bus::{
    record_batches, record_batches_hooked, Batcher, BusReport, EventBatch, EventKind, KindCounts,
    SinkStats, Tee, TraceBus, DEFAULT_BATCH_CAPACITY, DEFAULT_CHANNEL_DEPTH,
};
pub use cost::CostModel;
pub use error::VmError;
pub use hotloc::{HotLocations, LocationHook, NoHook};
pub use interp::{FinalState, Interp, RunResult};
pub use isa::{Cond, ElemKind, Instr, Label, LoopId, Pc};
pub use program::{ClassId, FuncId, Function, GlobalId, Local, Program};
pub use trace::{Addr, Cycles, NullSink, TraceSink};
pub use value::Value;

/// Bytes per machine word. All heap cells are one word.
pub const WORD_BYTES: u32 = 8;

/// Bytes per cache line in the modelled Hydra memory system (32 B, as in
/// the paper's Table 1: "512 lines x 32B").
pub const LINE_BYTES: u32 = 32;

/// Words per cache line.
pub const LINE_WORDS: u32 = LINE_BYTES / WORD_BYTES;

/// Returns the cache-line index of a byte address.
///
/// ```
/// assert_eq!(tvm::line_of(0), 0);
/// assert_eq!(tvm::line_of(31), 0);
/// assert_eq!(tvm::line_of(32), 1);
/// ```
#[inline]
pub fn line_of(addr: Addr) -> u32 {
    addr / LINE_BYTES
}
