//! Runtime values.

use crate::error::VmError;
use crate::trace::Addr;
use std::fmt;

/// A dynamically typed TraceVM value.
///
/// Every operand-stack slot, local slot and heap cell holds one `Value`.
/// References are raw byte addresses into [`crate::mem::Memory`]; `Null`
/// is the absent reference. Fresh locals and integer-typed heap cells
/// start as `Int(0)`, mirroring the JVM's definite-assignment defaults.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// 64-bit signed integer (models the JVM's int/long arithmetic).
    Int(i64),
    /// 64-bit IEEE float.
    Float(f64),
    /// Heap reference: the base byte address of an object or array.
    Ref(Addr),
    /// The null reference.
    Null,
}

impl Value {
    /// Extracts an integer.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::TypeMismatch`] if the value is not `Int`.
    #[inline]
    pub fn as_int(self) -> Result<i64, VmError> {
        match self {
            Value::Int(v) => Ok(v),
            other => Err(VmError::TypeMismatch {
                expected: "int",
                found: other.kind_name(),
            }),
        }
    }

    /// Extracts a float.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::TypeMismatch`] if the value is not `Float`.
    #[inline]
    pub fn as_float(self) -> Result<f64, VmError> {
        match self {
            Value::Float(v) => Ok(v),
            other => Err(VmError::TypeMismatch {
                expected: "float",
                found: other.kind_name(),
            }),
        }
    }

    /// Extracts a non-null heap reference.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::NullDeref`] on `Null` and
    /// [`VmError::TypeMismatch`] on non-reference values.
    #[inline]
    pub fn as_ref_addr(self) -> Result<Addr, VmError> {
        match self {
            Value::Ref(a) => Ok(a),
            Value::Null => Err(VmError::NullDeref),
            other => Err(VmError::TypeMismatch {
                expected: "ref",
                found: other.kind_name(),
            }),
        }
    }

    /// A short static name for the value's kind, used in error messages.
    pub fn kind_name(self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Ref(_) => "ref",
            Value::Null => "null",
        }
    }

    /// True if the value is a reference or null (i.e. reference-kinded).
    pub fn is_ref_like(self) -> bool {
        matches!(self, Value::Ref(_) | Value::Null)
    }
}

impl Default for Value {
    fn default() -> Self {
        Value::Int(0)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Ref(a) => write!(f, "ref@{a:#x}"),
            Value::Null => write!(f, "null"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_roundtrip() {
        assert_eq!(Value::from(7).as_int().unwrap(), 7);
        assert!(Value::from(7.5).as_int().is_err());
    }

    #[test]
    fn float_roundtrip() {
        assert_eq!(Value::from(7.5).as_float().unwrap(), 7.5);
        assert!(Value::from(7).as_float().is_err());
    }

    #[test]
    fn ref_handling() {
        assert_eq!(Value::Ref(64).as_ref_addr().unwrap(), 64);
        assert!(matches!(
            Value::Null.as_ref_addr().unwrap_err(),
            VmError::NullDeref
        ));
        assert!(Value::Int(1).as_ref_addr().is_err());
    }

    #[test]
    fn display_is_nonempty() {
        for v in [Value::Int(0), Value::Float(0.0), Value::Ref(0), Value::Null] {
            assert!(!v.to_string().is_empty());
        }
    }
}
