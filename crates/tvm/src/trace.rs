//! Trace-event interface between the interpreter and analysis hardware.
//!
//! The TEST hardware observes a sequentially executing program as a
//! stream of timestamped events: heap loads/stores (communicated
//! automatically by the load/store units when tracing is enabled) and
//! the explicit annotation instructions of Table 4. [`TraceSink`] is that
//! wire. Implementors in this workspace include the TEST hardware model,
//! the software-only profiler baseline, the exact-dependence oracle and
//! the TLS trace collector feeding the Hydra simulator.

use crate::isa::{LoopId, Pc};

/// Simulated clock cycles.
pub type Cycles = u64;

/// A byte address in the modelled 32-bit heap address space.
pub type Addr = u32;

/// Receiver of trace events emitted by [`crate::interp::Interp`].
///
/// All methods have empty default bodies so sinks only override what
/// they analyze; with [`NullSink`] the calls compile away entirely.
///
/// Times are the interpreter's cycle counter *after* charging the
/// triggering instruction, which models the hardware observing retired
/// memory operations.
pub trait TraceSink {
    /// A heap (or static) load of the word at `addr`.
    #[inline]
    fn heap_load(&mut self, addr: Addr, now: Cycles, pc: Pc) {
        let _ = (addr, now, pc);
    }

    /// A heap (or static) store to the word at `addr`.
    #[inline]
    fn heap_store(&mut self, addr: Addr, now: Cycles, pc: Pc) {
        let _ = (addr, now, pc);
    }

    /// Value tap for `putstatic`: the integer word actually written to
    /// static `global`. Recording sinks ignore it (the event stream
    /// stays value-free); the value-agreement checker overrides it to
    /// compare every store against a slice's predicted per-iteration
    /// value. Float/ref stores are reported through [`Self::heap_store`]
    /// only.
    #[inline]
    fn static_store(&mut self, global: u16, value: i64, now: Cycles, pc: Pc) {
        let _ = (global, value, now, pc);
    }

    /// An annotated local-variable load (`lwl vn`). `activation`
    /// identifies the dynamic frame, so the tracer can index the
    /// reservation made by the matching `sloop`.
    #[inline]
    fn local_load(&mut self, var: u16, activation: u32, now: Cycles, pc: Pc) {
        let _ = (var, activation, now, pc);
    }

    /// An annotated local-variable store (`swl vn`).
    #[inline]
    fn local_store(&mut self, var: u16, activation: u32, now: Cycles, pc: Pc) {
        let _ = (var, activation, now, pc);
    }

    /// `sloop`: a candidate STL was entered. `n_locals` slots of
    /// local-variable timestamps are reserved; `activation` identifies
    /// the dynamic function frame so that the tracer can keep one slot
    /// set per activation (the hardware indexes its 64-entry table by
    /// the reservation made at `sloop`).
    #[inline]
    fn loop_enter(&mut self, loop_id: LoopId, n_locals: u16, activation: u32, now: Cycles) {
        let _ = (loop_id, n_locals, activation, now);
    }

    /// `eoi`: end of one iteration (= one speculative thread boundary).
    #[inline]
    fn loop_iter(&mut self, loop_id: LoopId, now: Cycles) {
        let _ = (loop_id, now);
    }

    /// `eloop`: the STL was exited; its comparator bank is freed.
    #[inline]
    fn loop_exit(&mut self, loop_id: LoopId, now: Cycles) {
        let _ = (loop_id, now);
    }

    /// The end-of-STL statistics read routine ran (costs cycles; the
    /// runtime uses it to harvest counters).
    #[inline]
    fn stats_read(&mut self, loop_id: LoopId, now: Cycles) {
        let _ = (loop_id, now);
    }

    /// A function call is about to transfer control. `site` is the
    /// `Call` instruction's PC — the fork point a method-call-return
    /// decomposition would speculate from (paper §4.1's alternative to
    /// loop decompositions).
    #[inline]
    fn call_enter(&mut self, site: Pc, activation: u32, now: Cycles) {
        let _ = (site, activation, now);
    }

    /// The call made at `site` returned.
    #[inline]
    fn call_exit(&mut self, site: Pc, now: Cycles) {
        let _ = (site, now);
    }

    /// The value returned by the call at `site` was first consumed by
    /// the caller. Method-call-return speculation analyses treat this
    /// as the continuation's synchronization point with the callee.
    /// Tracked for the most recent value-returning call per frame (a
    /// second call before consumption supersedes the first).
    #[inline]
    fn call_result_use(&mut self, site: Pc, now: Cycles) {
        let _ = (site, now);
    }

    /// Delivers one whole [`crate::bus::EventBatch`] in emission
    /// order. The bus calls this once per batch — one virtual dispatch
    /// per batch instead of one per event — and the default body
    /// preserves the per-event semantics exactly via
    /// [`crate::bus::EventBatch::replay_into`]. Hot sinks override it
    /// with a concrete dispatch loop; overrides must deliver the same
    /// events in the same order as the default.
    #[inline]
    fn consume_batch(&mut self, batch: &crate::bus::EventBatch) {
        batch.replay_into(self);
    }
}

/// A sink that ignores every event: plain sequential execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {}

/// A sink that counts events — useful in tests and as a cheap coverage
/// probe.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountingSink {
    /// Number of heap loads observed.
    pub loads: u64,
    /// Number of heap stores observed.
    pub stores: u64,
    /// Number of annotated local accesses observed.
    pub local_accesses: u64,
    /// Number of `sloop` events.
    pub loop_enters: u64,
    /// Number of `eoi` events.
    pub loop_iters: u64,
    /// Number of `eloop` events.
    pub loop_exits: u64,
    /// Number of statistics-read events.
    pub stats_reads: u64,
    /// Number of call-enter events.
    pub call_enters: u64,
    /// Number of call-exit events.
    pub call_exits: u64,
    /// Number of call-result-use events.
    pub call_result_uses: u64,
}

impl TraceSink for CountingSink {
    fn heap_load(&mut self, _addr: Addr, _now: Cycles, _pc: Pc) {
        self.loads += 1;
    }
    fn heap_store(&mut self, _addr: Addr, _now: Cycles, _pc: Pc) {
        self.stores += 1;
    }
    fn local_load(&mut self, _var: u16, _act: u32, _now: Cycles, _pc: Pc) {
        self.local_accesses += 1;
    }
    fn local_store(&mut self, _var: u16, _act: u32, _now: Cycles, _pc: Pc) {
        self.local_accesses += 1;
    }
    fn loop_enter(&mut self, _loop_id: LoopId, _n: u16, _act: u32, _now: Cycles) {
        self.loop_enters += 1;
    }
    fn loop_iter(&mut self, _loop_id: LoopId, _now: Cycles) {
        self.loop_iters += 1;
    }
    fn loop_exit(&mut self, _loop_id: LoopId, _now: Cycles) {
        self.loop_exits += 1;
    }
    fn stats_read(&mut self, _loop_id: LoopId, _now: Cycles) {
        self.stats_reads += 1;
    }
    fn call_enter(&mut self, _site: Pc, _act: u32, _now: Cycles) {
        self.call_enters += 1;
    }
    fn call_exit(&mut self, _site: Pc, _now: Cycles) {
        self.call_exits += 1;
    }
    fn call_result_use(&mut self, _site: Pc, _now: Cycles) {
        self.call_result_uses += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::FuncId;

    #[test]
    fn counting_sink_counts() {
        let mut s = CountingSink::default();
        let pc = Pc {
            func: FuncId(0),
            idx: 0,
        };
        s.heap_load(64, 1, pc);
        s.heap_store(64, 2, pc);
        s.local_load(0, 0, 3, pc);
        s.loop_enter(LoopId(0), 1, 0, 4);
        s.loop_iter(LoopId(0), 5);
        s.loop_exit(LoopId(0), 6);
        s.stats_read(LoopId(0), 7);
        s.call_enter(pc, 0, 8);
        s.call_exit(pc, 9);
        s.call_result_use(pc, 10);
        assert_eq!(s.loads, 1);
        assert_eq!(s.stores, 1);
        assert_eq!(s.local_accesses, 1);
        assert_eq!(s.loop_enters, 1);
        assert_eq!(s.loop_iters, 1);
        assert_eq!(s.loop_exits, 1);
        assert_eq!(s.stats_reads, 1);
        assert_eq!(s.call_enters, 1);
        assert_eq!(s.call_exits, 1);
        assert_eq!(s.call_result_uses, 1);
    }

    #[test]
    fn null_sink_is_a_sink() {
        fn assert_sink<T: TraceSink>() {}
        assert_sink::<NullSink>();
    }
}
