//! VM error type.

use std::fmt;

/// Errors produced while building, verifying or executing TraceVM
/// programs.
///
/// All public fallible APIs in this workspace's VM layer return this
/// type. It is `Send + Sync + 'static` and implements
/// [`std::error::Error`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmError {
    /// An operand-stack pop on an empty stack.
    StackUnderflow,
    /// A value of the wrong dynamic kind was used.
    TypeMismatch {
        /// Kind the operation required.
        expected: &'static str,
        /// Kind actually found.
        found: &'static str,
    },
    /// A null reference was dereferenced.
    NullDeref,
    /// Array index out of range.
    IndexOutOfBounds {
        /// Offending index.
        index: i64,
        /// Array length.
        len: i64,
    },
    /// Integer division or remainder by zero.
    DivisionByZero,
    /// A heap address outside the allocated space was accessed.
    BadAddress(u32),
    /// A local-slot index outside the frame was accessed.
    BadLocal(u16),
    /// A function id with no definition was referenced.
    UnknownFunction(u16),
    /// A class id with no definition was referenced.
    UnknownClass(u16),
    /// A global id with no definition was referenced.
    UnknownGlobal(u16),
    /// A branch target points outside the function body.
    BadBranchTarget {
        /// Function containing the branch.
        func: u16,
        /// Instruction index of the branch.
        at: u32,
        /// The out-of-range target.
        target: u32,
    },
    /// A builder label was used in a branch but never bound.
    UnboundLabel(u32),
    /// Static kind verification failed: an instruction would
    /// definitely see an operand of the wrong kind on every execution
    /// reaching it.
    KindMismatch {
        /// Function that failed kind verification.
        func: u16,
        /// Instruction index of the offending use.
        at: u32,
        /// Kind the instruction requires.
        expected: &'static str,
        /// Abstract kind actually proven to arrive.
        found: &'static str,
    },
    /// Bytecode verification failed (inconsistent or underflowing stack).
    Verify {
        /// Function that failed verification.
        func: u16,
        /// Instruction index of the failure.
        at: u32,
        /// Human-readable reason.
        reason: String,
    },
    /// The execution fuel (instruction budget) was exhausted.
    FuelExhausted,
    /// Negative or oversized array length.
    BadArrayLength(i64),
    /// The heap grew past the configured limit.
    HeapExhausted,
    /// Execution fell off the end of a function without returning.
    FellOffEnd(u16),
    /// A `Return` was executed in a `void` function or vice versa.
    ReturnMismatch(u16),
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::StackUnderflow => write!(f, "operand stack underflow"),
            VmError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            VmError::NullDeref => write!(f, "null reference dereferenced"),
            VmError::IndexOutOfBounds { index, len } => {
                write!(f, "array index {index} out of bounds for length {len}")
            }
            VmError::DivisionByZero => write!(f, "integer division by zero"),
            VmError::BadAddress(a) => write!(f, "invalid heap address {a:#x}"),
            VmError::BadLocal(i) => write!(f, "invalid local slot {i}"),
            VmError::UnknownFunction(i) => write!(f, "unknown function id {i}"),
            VmError::UnknownClass(i) => write!(f, "unknown class id {i}"),
            VmError::UnknownGlobal(i) => write!(f, "unknown global id {i}"),
            VmError::BadBranchTarget { func, at, target } => {
                write!(f, "branch at {func}:{at} targets out-of-range pc {target}")
            }
            VmError::UnboundLabel(l) => write!(f, "label {l} was never bound"),
            VmError::KindMismatch {
                func,
                at,
                expected,
                found,
            } => {
                write!(
                    f,
                    "kind mismatch at {func}:{at}: expected {expected}, found {found}"
                )
            }
            VmError::Verify { func, at, reason } => {
                write!(f, "verification failed at {func}:{at}: {reason}")
            }
            VmError::FuelExhausted => write!(f, "execution fuel exhausted"),
            VmError::BadArrayLength(n) => write!(f, "invalid array length {n}"),
            VmError::HeapExhausted => write!(f, "heap limit exceeded"),
            VmError::FellOffEnd(func) => {
                write!(f, "execution fell off the end of function {func}")
            }
            VmError::ReturnMismatch(func) => {
                write!(f, "return arity mismatch in function {func}")
            }
        }
    }
}

impl std::error::Error for VmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        assert_send_sync::<VmError>();
    }

    #[test]
    fn display_messages_are_lowercase_and_nonempty() {
        let samples = [
            VmError::StackUnderflow,
            VmError::NullDeref,
            VmError::DivisionByZero,
            VmError::FuelExhausted,
            VmError::BadLocal(3),
        ];
        for e in samples {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
        }
    }
}
