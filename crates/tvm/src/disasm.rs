//! Human-readable disassembly of TraceVM programs.
//!
//! The mnemonics follow the paper's Figure 5 style (`sloop 1`,
//! `lwl 1`, `eoi`, …) for the annotation instructions and a MIPS-ish
//! lowercase convention for the rest.

use crate::isa::{Cond, Instr};
use crate::program::{Function, Program};
use std::fmt::Write as _;

/// Renders one instruction as assembly-like text.
///
/// ```
/// use tvm::isa::{Instr, Cond, Local, LoopId};
/// assert_eq!(tvm::disasm::instr(&Instr::IConst(7)), "iconst 7");
/// assert_eq!(tvm::disasm::instr(&Instr::IfICmp(Cond::Lt, 9)), "if_icmp lt -> 9");
/// assert_eq!(tvm::disasm::instr(&Instr::SLoop(LoopId(3), 2)), "sloop L3, 2");
/// assert_eq!(tvm::disasm::instr(&Instr::Load(Local(4))), "load l4");
/// ```
pub fn instr(i: &Instr) -> String {
    use Instr::*;
    let cond = |c: &Cond| match c {
        Cond::Eq => "eq",
        Cond::Ne => "ne",
        Cond::Lt => "lt",
        Cond::Ge => "ge",
        Cond::Gt => "gt",
        Cond::Le => "le",
    };
    match i {
        IConst(v) => format!("iconst {v}"),
        FConst(v) => format!("fconst {v}"),
        NullConst => "null".into(),
        Load(l) => format!("load l{}", l.0),
        Store(l) => format!("store l{}", l.0),
        IInc(l, by) => format!("iinc l{}, {by}", l.0),
        Dup => "dup".into(),
        Pop => "pop".into(),
        Swap => "swap".into(),
        IAdd => "iadd".into(),
        ISub => "isub".into(),
        IMul => "imul".into(),
        IDiv => "idiv".into(),
        IRem => "irem".into(),
        INeg => "ineg".into(),
        IAnd => "iand".into(),
        IOr => "ior".into(),
        IXor => "ixor".into(),
        IShl => "ishl".into(),
        IShr => "ishr".into(),
        IUShr => "iushr".into(),
        IMin => "imin".into(),
        IMax => "imax".into(),
        ICmp => "icmp".into(),
        FAdd => "fadd".into(),
        FSub => "fsub".into(),
        FMul => "fmul".into(),
        FDiv => "fdiv".into(),
        FNeg => "fneg".into(),
        FMin => "fmin".into(),
        FMax => "fmax".into(),
        FAbs => "fabs".into(),
        FSqrt => "fsqrt".into(),
        FSin => "fsin".into(),
        FCos => "fcos".into(),
        FExp => "fexp".into(),
        FLog => "flog".into(),
        I2F => "i2f".into(),
        F2I => "f2i".into(),
        Goto(t) => format!("goto -> {t}"),
        AGoto(t) => format!("agoto -> {t}"),
        If(c, t) => format!("if {} -> {t}", cond(c)),
        IfICmp(c, t) => format!("if_icmp {} -> {t}", cond(c)),
        IfFCmp(c, t) => format!("if_fcmp {} -> {t}", cond(c)),
        NewArray(k) => format!("newarray {k:?}").to_lowercase(),
        ALoad => "aload".into(),
        AStore => "astore".into(),
        ArrayLen => "arraylen".into(),
        NewObject(c) => format!("new c{}", c.0),
        GetField(i) => format!("getfield {i}"),
        PutField(i) => format!("putfield {i}"),
        GetStatic(g) => format!("getstatic g{}", g.0),
        PutStatic(g) => format!("putstatic g{}", g.0),
        Call(f) => format!("call f{}", f.0),
        Return => "return".into(),
        ReturnVoid => "return.void".into(),
        Halt => "halt".into(),
        SLoop(l, n) => format!("sloop {l}, {n}"),
        Eoi(l) => format!("eoi {l}"),
        ELoop(l, n) => format!("eloop {l}, {n}"),
        Lwl(v) => format!("lwl {v}"),
        Swl(v) => format!("swl {v}"),
        ReadStats(l) => format!("readstats {l}"),
    }
}

/// Renders one function with addresses and branch-target markers.
pub fn function(f: &Function) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "fn {}({} params, {} locals){}:",
        f.name,
        f.n_params,
        f.n_locals,
        if f.returns { " -> value" } else { "" }
    );
    // mark branch targets for readability
    let mut is_target = vec![false; f.code.len()];
    for i in &f.code {
        if let Some(t) = i.branch_target() {
            if let Some(slot) = is_target.get_mut(t as usize) {
                *slot = true;
            }
        }
    }
    for (idx, i) in f.code.iter().enumerate() {
        let mark = if is_target[idx] { ">" } else { " " };
        let _ = writeln!(out, " {mark}{idx:>5}: {}", instr(i));
    }
    out
}

/// Renders a whole program.
pub fn program(p: &Program) -> String {
    let mut out = String::new();
    if !p.globals.is_empty() {
        let _ = writeln!(out, "globals: {:?}", p.globals);
    }
    for (i, c) in p.classes.iter().enumerate() {
        let _ = writeln!(out, "class c{i}: {:?}", c.fields);
    }
    for (i, f) in p.functions.iter().enumerate() {
        let entry = if p.entry.0 as usize == i {
            " (entry)"
        } else {
            ""
        };
        let _ = writeln!(out, "f{i}{entry}:");
        out.push_str(&function(f));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::ProgramBuilder;

    #[test]
    fn every_instruction_has_a_mnemonic() {
        use crate::isa::{ClassId, ElemKind, FuncId, GlobalId, Local, LoopId};
        let all = [
            Instr::IConst(1),
            Instr::FConst(1.5),
            Instr::NullConst,
            Instr::Load(Local(0)),
            Instr::Store(Local(0)),
            Instr::IInc(Local(0), -1),
            Instr::Dup,
            Instr::Pop,
            Instr::Swap,
            Instr::IAdd,
            Instr::ISub,
            Instr::IMul,
            Instr::IDiv,
            Instr::IRem,
            Instr::INeg,
            Instr::IAnd,
            Instr::IOr,
            Instr::IXor,
            Instr::IShl,
            Instr::IShr,
            Instr::IUShr,
            Instr::IMin,
            Instr::IMax,
            Instr::ICmp,
            Instr::FAdd,
            Instr::FSub,
            Instr::FMul,
            Instr::FDiv,
            Instr::FNeg,
            Instr::FMin,
            Instr::FMax,
            Instr::FAbs,
            Instr::FSqrt,
            Instr::FSin,
            Instr::FCos,
            Instr::FExp,
            Instr::FLog,
            Instr::I2F,
            Instr::F2I,
            Instr::Goto(0),
            Instr::If(Cond::Eq, 0),
            Instr::IfICmp(Cond::Lt, 0),
            Instr::IfFCmp(Cond::Ge, 0),
            Instr::NewArray(ElemKind::Int),
            Instr::ALoad,
            Instr::AStore,
            Instr::ArrayLen,
            Instr::NewObject(ClassId(0)),
            Instr::GetField(0),
            Instr::PutField(0),
            Instr::GetStatic(GlobalId(0)),
            Instr::PutStatic(GlobalId(0)),
            Instr::Call(FuncId(0)),
            Instr::Return,
            Instr::ReturnVoid,
            Instr::Halt,
            Instr::SLoop(LoopId(0), 1),
            Instr::Eoi(LoopId(0)),
            Instr::ELoop(LoopId(0), 1),
            Instr::Lwl(0),
            Instr::Swl(0),
            Instr::ReadStats(LoopId(0)),
        ];
        let mut seen = std::collections::BTreeSet::new();
        for i in &all {
            let text = instr(i);
            assert!(!text.is_empty());
            assert!(seen.insert(text.clone()), "duplicate mnemonic {text}");
        }
    }

    #[test]
    fn function_dump_marks_branch_targets() {
        let mut b = ProgramBuilder::new();
        let main = b.function("main", 0, false, |f| {
            let i = f.local();
            f.for_in(i, 0.into(), 3.into(), |_f| {});
            f.ret_void();
        });
        let p = b.finish(main).unwrap();
        let text = program(&p);
        assert!(text.contains("fn main"));
        assert!(text.contains("goto ->"));
        assert!(text.contains('>'), "loop head should be marked: {text}");
    }
}
