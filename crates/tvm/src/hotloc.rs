//! Hot-location counters — the always-on counting tier.
//!
//! The online tiered runtime (`jrpm::tier`) keeps every candidate loop
//! in a `Counting` state until it proves hot. The evidence is a
//! per-location execution counter maintained by the interpreter itself:
//! [`HotLocations`] registers one slot per program location (a
//! `(function, pc)` pair — in practice the first instruction of a loop
//! header block), and the interpreter bumps the slot's counter every
//! time execution reaches that location.
//!
//! This is the same division of labour as yk's meta-tracer (`Location`
//! holds a count until a hot threshold trips, then the `MT` promotes
//! it); see DESIGN.md §14. The cost budget is the point: the probe is
//! two bounds-checked array loads, a compare and a conditional
//! increment per retired instruction — no hashing, no branching on
//! program structure — so the counting tier stays within the pinned
//! slowdown bound the `tier-gate` CI binary enforces (TASKPROF is the
//! reference for profiling that must be cheap enough to leave on).
//!
//! The hook is threaded through the interpreter as a generic parameter
//! ([`LocationHook`]); the default [`NoHook`] is a zero-sized type
//! whose probe monomorphizes to nothing, so un-hooked runs — every
//! offline pipeline pass — pay zero cost.

use crate::program::Program;

/// Sentinel for "no slot registered at this pc".
const SLOT_NONE: u32 = u32::MAX;

/// A per-instruction observation hook for [`crate::interp::Interp`].
///
/// Called once per retired instruction with the current function and
/// pc, *before* the instruction executes. Implementations must be
/// cheap and side-effect-free with respect to the simulation: the hook
/// cannot alter simulated cycles, trace events, or program state.
pub trait LocationHook {
    /// Observes that execution reached `(func, pc)`.
    fn at(&mut self, func: u16, pc: u32);
}

/// The do-nothing hook: compiles away entirely.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoHook;

impl LocationHook for NoHook {
    #[inline(always)]
    fn at(&mut self, _func: u16, _pc: u32) {}
}

/// Dense hot-location counter table.
///
/// One row per function, one cell per instruction; registered cells
/// hold a slot index into the counts vector, all others hold a
/// sentinel. Lookup is therefore a direct double index — the cheapest
/// probe that still supports arbitrary locations.
#[derive(Debug, Clone, Default)]
pub struct HotLocations {
    map: Vec<Vec<u32>>,
    counts: Vec<u64>,
}

impl HotLocations {
    /// An empty table shaped to `program` (no locations registered).
    pub fn for_program(program: &Program) -> HotLocations {
        HotLocations {
            map: program
                .functions
                .iter()
                .map(|f| vec![SLOT_NONE; f.code.len()])
                .collect(),
            counts: Vec::new(),
        }
    }

    /// Registers a location and returns its slot index. Registering
    /// the same location twice returns the existing slot.
    ///
    /// # Panics
    ///
    /// Panics if `(func, pc)` lies outside the program this table was
    /// shaped for.
    pub fn register(&mut self, func: u16, pc: u32) -> usize {
        let cell = &mut self.map[func as usize][pc as usize];
        if *cell == SLOT_NONE {
            self.counts.push(0);
            *cell = (self.counts.len() - 1) as u32;
        }
        *cell as usize
    }

    /// Number of registered locations.
    pub fn locations(&self) -> usize {
        self.counts.len()
    }

    /// The counter of slot `slot`.
    pub fn count(&self, slot: usize) -> u64 {
        self.counts[slot]
    }

    /// All counters, by slot.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Resets every counter to zero (slots stay registered).
    pub fn reset(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
    }
}

impl LocationHook for HotLocations {
    #[inline(always)]
    fn at(&mut self, func: u16, pc: u32) {
        if let Some(row) = self.map.get(func as usize) {
            if let Some(&slot) = row.get(pc as usize) {
                if slot != SLOT_NONE {
                    self.counts[slot as usize] += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Interp;
    use crate::trace::NullSink;
    use crate::{ElemKind, ProgramBuilder};

    fn looping_program(iters: i64) -> Program {
        let mut b = ProgramBuilder::new();
        let main = b.function("main", 0, false, |f| {
            let (a, i) = (f.local(), f.local());
            f.ci(64).newarray(ElemKind::Int).st(a);
            f.for_in(i, 0.into(), iters.into(), |f| {
                f.arr_set(
                    a,
                    |f| {
                        f.ld(i).ci(63).iand();
                    },
                    |f| {
                        f.ld(i);
                    },
                );
            });
            f.ret_void();
        });
        b.finish(main).unwrap()
    }

    #[test]
    fn hooked_run_counts_and_changes_nothing() {
        let p = looping_program(37);
        let plain = Interp::run(&p, &mut NullSink).unwrap();

        let mut hot = HotLocations::for_program(&p);
        // pc 0 executes once; probe every pc of main to find the loop
        let slot0 = hot.register(0, 0);
        let hooked = Interp::run_hooked(&p, &mut NullSink, &mut hot).unwrap();

        assert_eq!(
            hooked.cycles, plain.cycles,
            "hooks are free in simulated time"
        );
        assert_eq!(hooked.instructions, plain.instructions);
        assert_eq!(hooked.ret, plain.ret);
        assert_eq!(hot.count(slot0), 1);
    }

    #[test]
    fn loop_header_location_counts_iterations() {
        let p = looping_program(37);
        // find the backward-branch target = loop header pc
        let header = p.functions[0]
            .code
            .iter()
            .enumerate()
            .find_map(|(i, instr)| instr.branch_target().filter(|&t| (t as usize) <= i))
            .expect("program has a backward branch");
        let mut hot = HotLocations::for_program(&p);
        let slot = hot.register(0, header);
        Interp::run_hooked(&p, &mut NullSink, &mut hot).unwrap();
        // the header executes once per iteration plus the entry test
        assert!(
            hot.count(slot) >= 37,
            "header count {} < iteration count",
            hot.count(slot)
        );
        hot.reset();
        assert_eq!(hot.count(slot), 0);
        Interp::run_hooked(&p, &mut NullSink, &mut hot).unwrap();
        assert!(hot.count(slot) >= 37, "counters accumulate after reset");
    }

    #[test]
    fn register_is_idempotent() {
        let p = looping_program(3);
        let mut hot = HotLocations::for_program(&p);
        let a = hot.register(0, 2);
        let b = hot.register(0, 2);
        assert_eq!(a, b);
        assert_eq!(hot.locations(), 1);
    }
}
