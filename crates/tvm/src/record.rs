//! Event recording and replay.
//!
//! [`RecordingSink`] captures the full trace-event stream of a run;
//! [`Recording::replay`] feeds it back into any other sink. This
//! decouples analysis benchmarking from interpretation (the Criterion
//! harness replays a real benchmark's stream straight into the tracer)
//! and makes event-level regression tests exact.

use crate::isa::{LoopId, Pc};
use crate::trace::{Addr, Cycles, TraceSink};

/// One captured trace event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// Heap load.
    HeapLoad(Addr, Cycles, Pc),
    /// Heap store.
    HeapStore(Addr, Cycles, Pc),
    /// `lwl`.
    LocalLoad(u16, u32, Cycles, Pc),
    /// `swl`.
    LocalStore(u16, u32, Cycles, Pc),
    /// `sloop`.
    LoopEnter(LoopId, u16, u32, Cycles),
    /// `eoi`.
    LoopIter(LoopId, Cycles),
    /// `eloop`.
    LoopExit(LoopId, Cycles),
    /// statistics read.
    StatsRead(LoopId, Cycles),
    /// function call.
    CallEnter(Pc, u32, Cycles),
    /// function return.
    CallExit(Pc, Cycles),
    /// first consumption of a call's return value.
    CallResultUse(Pc, Cycles),
}

/// A captured event stream.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Recording {
    /// The events, in emission order.
    pub events: Vec<Event>,
}

impl Recording {
    /// Feeds every event into `sink`, in order.
    pub fn replay<S: TraceSink>(&self, sink: &mut S) {
        for e in &self.events {
            match *e {
                Event::HeapLoad(a, t, pc) => sink.heap_load(a, t, pc),
                Event::HeapStore(a, t, pc) => sink.heap_store(a, t, pc),
                Event::LocalLoad(v, act, t, pc) => sink.local_load(v, act, t, pc),
                Event::LocalStore(v, act, t, pc) => sink.local_store(v, act, t, pc),
                Event::LoopEnter(l, n, act, t) => sink.loop_enter(l, n, act, t),
                Event::LoopIter(l, t) => sink.loop_iter(l, t),
                Event::LoopExit(l, t) => sink.loop_exit(l, t),
                Event::StatsRead(l, t) => sink.stats_read(l, t),
                Event::CallEnter(pc, act, t) => sink.call_enter(pc, act, t),
                Event::CallExit(pc, t) => sink.call_exit(pc, t),
                Event::CallResultUse(pc, t) => sink.call_result_use(pc, t),
            }
        }
    }

    /// Number of captured events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// A sink that records every event for later [`Recording::replay`].
#[derive(Debug, Clone, Default)]
pub struct RecordingSink {
    /// The capture.
    pub recording: Recording,
}

impl RecordingSink {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the recorder and yields the capture.
    pub fn into_recording(self) -> Recording {
        self.recording
    }
}

impl TraceSink for RecordingSink {
    fn heap_load(&mut self, addr: Addr, now: Cycles, pc: Pc) {
        self.recording.events.push(Event::HeapLoad(addr, now, pc));
    }
    fn heap_store(&mut self, addr: Addr, now: Cycles, pc: Pc) {
        self.recording.events.push(Event::HeapStore(addr, now, pc));
    }
    fn local_load(&mut self, var: u16, activation: u32, now: Cycles, pc: Pc) {
        self.recording
            .events
            .push(Event::LocalLoad(var, activation, now, pc));
    }
    fn local_store(&mut self, var: u16, activation: u32, now: Cycles, pc: Pc) {
        self.recording
            .events
            .push(Event::LocalStore(var, activation, now, pc));
    }
    fn loop_enter(&mut self, loop_id: LoopId, n_locals: u16, activation: u32, now: Cycles) {
        self.recording
            .events
            .push(Event::LoopEnter(loop_id, n_locals, activation, now));
    }
    fn loop_iter(&mut self, loop_id: LoopId, now: Cycles) {
        self.recording.events.push(Event::LoopIter(loop_id, now));
    }
    fn loop_exit(&mut self, loop_id: LoopId, now: Cycles) {
        self.recording.events.push(Event::LoopExit(loop_id, now));
    }
    fn stats_read(&mut self, loop_id: LoopId, now: Cycles) {
        self.recording.events.push(Event::StatsRead(loop_id, now));
    }
    fn call_enter(&mut self, site: Pc, activation: u32, now: Cycles) {
        self.recording
            .events
            .push(Event::CallEnter(site, activation, now));
    }
    fn call_exit(&mut self, site: Pc, now: Cycles) {
        self.recording.events.push(Event::CallExit(site, now));
    }
    fn call_result_use(&mut self, site: Pc, now: Cycles) {
        self.recording.events.push(Event::CallResultUse(site, now));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::ProgramBuilder;
    use crate::interp::Interp;
    use crate::trace::CountingSink;
    use crate::ElemKind;

    fn sample_program() -> crate::Program {
        let mut b = ProgramBuilder::new();
        let main = b.function("main", 0, false, |f| {
            let (a, i) = (f.local(), f.local());
            f.ci(8).newarray(ElemKind::Int).st(a);
            f.for_in(i, 0.into(), 8.into(), |f| {
                f.arr_set(
                    a,
                    |f| {
                        f.ld(i);
                    },
                    |f| {
                        f.ld(i);
                    },
                );
            });
            f.ret_void();
        });
        b.finish(main).unwrap()
    }

    #[test]
    fn replay_reproduces_the_exact_stream() {
        let p = sample_program();
        let mut rec = RecordingSink::new();
        Interp::run(&p, &mut rec).unwrap();
        let recording = rec.into_recording();
        assert!(!recording.is_empty());

        // live counts == replayed counts
        let mut live = CountingSink::default();
        Interp::run(&p, &mut live).unwrap();
        let mut replayed = CountingSink::default();
        recording.replay(&mut replayed);
        assert_eq!(live, replayed);
    }

    #[test]
    fn recording_a_replay_is_idempotent() {
        let p = sample_program();
        let mut rec = RecordingSink::new();
        Interp::run(&p, &mut rec).unwrap();
        let first = rec.into_recording();
        let mut second_rec = RecordingSink::new();
        first.replay(&mut second_rec);
        assert_eq!(first, second_rec.into_recording());
    }
}
