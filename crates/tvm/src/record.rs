//! Event recording and replay.
//!
//! [`RecordingSink`] captures the full trace-event stream of a run;
//! [`Recording::replay`] feeds it back into any other sink. This
//! decouples analysis benchmarking from interpretation (the Criterion
//! harness replays a real benchmark's stream straight into the tracer)
//! and makes event-level regression tests exact.
//!
//! For service-scale replay the on-disk format can also be consumed
//! *zero-copy*: [`MappedRecording`] memory-maps a saved trace and
//! [`RecordingView`] decodes events straight out of the mapped bytes
//! into reusable [`EventBatch`]es — no `read_to_end`, no intermediate
//! `Vec<Event>`. Both the owned and the borrowed path share one
//! streaming decoder, so every corruption-handling guarantee of
//! [`Recording::from_bytes`] holds for the mmap path too.

use crate::bus::{EventBatch, KindCounts};
use crate::isa::{FuncId, LoopId, Pc};
use crate::trace::{Addr, Cycles, TraceSink};
use std::fmt;
use std::path::Path;

/// One captured trace event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// Heap load.
    HeapLoad(Addr, Cycles, Pc),
    /// Heap store.
    HeapStore(Addr, Cycles, Pc),
    /// `lwl`.
    LocalLoad(u16, u32, Cycles, Pc),
    /// `swl`.
    LocalStore(u16, u32, Cycles, Pc),
    /// `sloop`.
    LoopEnter(LoopId, u16, u32, Cycles),
    /// `eoi`.
    LoopIter(LoopId, Cycles),
    /// `eloop`.
    LoopExit(LoopId, Cycles),
    /// statistics read.
    StatsRead(LoopId, Cycles),
    /// function call.
    CallEnter(Pc, u32, Cycles),
    /// function return.
    CallExit(Pc, Cycles),
    /// first consumption of a call's return value.
    CallResultUse(Pc, Cycles),
}

/// A captured event stream.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Recording {
    /// The events, in emission order.
    pub events: Vec<Event>,
}

impl Recording {
    /// Feeds every event into `sink`, in order.
    pub fn replay<S: TraceSink>(&self, sink: &mut S) {
        for e in &self.events {
            match *e {
                Event::HeapLoad(a, t, pc) => sink.heap_load(a, t, pc),
                Event::HeapStore(a, t, pc) => sink.heap_store(a, t, pc),
                Event::LocalLoad(v, act, t, pc) => sink.local_load(v, act, t, pc),
                Event::LocalStore(v, act, t, pc) => sink.local_store(v, act, t, pc),
                Event::LoopEnter(l, n, act, t) => sink.loop_enter(l, n, act, t),
                Event::LoopIter(l, t) => sink.loop_iter(l, t),
                Event::LoopExit(l, t) => sink.loop_exit(l, t),
                Event::StatsRead(l, t) => sink.stats_read(l, t),
                Event::CallEnter(pc, act, t) => sink.call_enter(pc, act, t),
                Event::CallExit(pc, t) => sink.call_exit(pc, t),
                Event::CallResultUse(pc, t) => sink.call_result_use(pc, t),
            }
        }
    }

    /// Number of captured events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Chunks the recording into [`EventBatch`]es of up to `capacity`
    /// events, preserving emission order.
    pub fn to_batches(&self, capacity: usize) -> Vec<EventBatch> {
        let capacity = capacity.max(1);
        let mut out = Vec::with_capacity(self.events.len().div_ceil(capacity));
        let mut batch = EventBatch::with_capacity(capacity);
        for &e in &self.events {
            batch.push(e);
            if batch.len() >= capacity {
                out.push(std::mem::replace(
                    &mut batch,
                    EventBatch::with_capacity(capacity),
                ));
            }
        }
        if !batch.is_empty() {
            out.push(batch);
        }
        out
    }

    /// Event counts by kind.
    pub fn kind_counts(&self) -> KindCounts {
        let mut k = KindCounts::default();
        for e in &self.events {
            k.add(e.kind(), 1);
        }
        k
    }

    /// Serializes the recording into the compact binary trace format.
    ///
    /// Layout: the magic `b"TVMR"`, a little-endian `u16` format
    /// version, the varint event count, then one record per event —
    /// a kind byte, the zigzag-varint cycle delta from the previous
    /// event (timestamps are near-monotonic, so deltas are tiny), and
    /// the kind's remaining fields as varints.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.events.len() * 4);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        write_varint(&mut out, self.events.len() as u64);
        let mut prev_cycle: Cycles = 0;
        for e in &self.events {
            out.push(e.kind().index() as u8);
            let now = e.cycle();
            write_zigzag(&mut out, now as i64 - prev_cycle as i64);
            prev_cycle = now;
            match *e {
                Event::HeapLoad(a, _, pc) | Event::HeapStore(a, _, pc) => {
                    write_varint(&mut out, a as u64);
                    write_pc(&mut out, pc);
                }
                Event::LocalLoad(v, act, _, pc) | Event::LocalStore(v, act, _, pc) => {
                    write_varint(&mut out, v as u64);
                    write_varint(&mut out, act as u64);
                    write_pc(&mut out, pc);
                }
                Event::LoopEnter(l, n, act, _) => {
                    write_varint(&mut out, l.0 as u64);
                    write_varint(&mut out, n as u64);
                    write_varint(&mut out, act as u64);
                }
                Event::LoopIter(l, _) | Event::LoopExit(l, _) | Event::StatsRead(l, _) => {
                    write_varint(&mut out, l.0 as u64);
                }
                Event::CallEnter(pc, act, _) => {
                    write_pc(&mut out, pc);
                    write_varint(&mut out, act as u64);
                }
                Event::CallExit(pc, _) | Event::CallResultUse(pc, _) => {
                    write_pc(&mut out, pc);
                }
            }
        }
        out
    }

    /// Parses a recording from [`Recording::to_bytes`] output.
    ///
    /// # Errors
    ///
    /// [`RecordingError`] on a bad magic/version, a truncated stream,
    /// an unknown event kind, or a field out of its type's range.
    pub fn from_bytes(bytes: &[u8]) -> Result<Recording, RecordingError> {
        let view = RecordingView::parse(bytes)?;
        let mut events = Vec::with_capacity(view.count().min(1 << 20) as usize);
        let mut decoder = view.decoder();
        while let Some(e) = decoder.next_event()? {
            events.push(e);
        }
        Ok(Recording { events })
    }

    /// Writes the binary trace format to `path`.
    ///
    /// # Errors
    ///
    /// Any I/O error from the filesystem.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), RecordingError> {
        std::fs::write(path, self.to_bytes()).map_err(RecordingError::Io)
    }

    /// Reads a recording written by [`Recording::save`].
    ///
    /// # Errors
    ///
    /// I/O errors, plus every [`Recording::from_bytes`] parse error.
    pub fn load(path: impl AsRef<Path>) -> Result<Recording, RecordingError> {
        Recording::from_bytes(&std::fs::read(path).map_err(RecordingError::Io)?)
    }
}

/// A validated, borrowed view over serialized recording bytes.
///
/// The header (magic, version, event count) is checked eagerly —
/// including a plausibility bound on the count field, so a corrupted
/// header can never drive an oversized allocation or a runaway decode
/// loop — while event records are decoded lazily, straight from the
/// borrowed bytes. This is the zero-copy path: pair it with
/// [`MappedRecording`] to stream a saved trace into analysis sinks
/// without materializing a `Vec<Event>`.
#[derive(Debug, Clone, Copy)]
pub struct RecordingView<'a> {
    bytes: &'a [u8],
    /// Offset of the first event record (just past the header).
    body: usize,
    /// Declared event count (validated against the body size).
    count: u64,
}

/// Every serialized event record occupies at least this many bytes
/// (one kind byte plus one cycle-delta varint byte), which bounds any
/// declared count by the body length.
const MIN_EVENT_BYTES: u64 = 2;

impl<'a> RecordingView<'a> {
    /// Validates the header and returns a lazy view.
    ///
    /// # Errors
    ///
    /// [`RecordingError`] on bad magic/version, a truncated header,
    /// or a declared event count that cannot fit in the remaining
    /// bytes ([`RecordingError::CountTooLarge`]).
    pub fn parse(bytes: &'a [u8]) -> Result<RecordingView<'a>, RecordingError> {
        let mut r = Reader { bytes, pos: 0 };
        let magic = r.take(4)?;
        if magic != MAGIC {
            return Err(RecordingError::BadMagic);
        }
        let version = u16::from_le_bytes([r.byte()?, r.byte()?]);
        if version != FORMAT_VERSION {
            return Err(RecordingError::BadVersion(version));
        }
        let count = r.varint()?;
        let body = r.pos;
        let available = (bytes.len() - body) as u64;
        if count > available / MIN_EVENT_BYTES {
            return Err(RecordingError::CountTooLarge { count, available });
        }
        Ok(RecordingView { bytes, body, count })
    }

    /// The declared (validated) event count.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when the recording declares no events.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// A streaming decoder positioned at the first event.
    pub fn decoder(&self) -> EventDecoder<'a> {
        EventDecoder {
            reader: Reader {
                bytes: self.bytes,
                pos: self.body,
            },
            remaining: self.count,
            prev_cycle: 0,
        }
    }

    /// Feeds every event into `sink`, in order, decoding straight from
    /// the borrowed bytes. Returns the number of events delivered.
    ///
    /// # Errors
    ///
    /// Any decode error; events before the corruption point have
    /// already been delivered.
    pub fn replay<S: TraceSink + ?Sized>(&self, sink: &mut S) -> Result<u64, RecordingError> {
        let mut decoder = self.decoder();
        let mut n = 0u64;
        while let Some(e) = decoder.next_event()? {
            match e {
                Event::HeapLoad(a, t, pc) => sink.heap_load(a, t, pc),
                Event::HeapStore(a, t, pc) => sink.heap_store(a, t, pc),
                Event::LocalLoad(v, act, t, pc) => sink.local_load(v, act, t, pc),
                Event::LocalStore(v, act, t, pc) => sink.local_store(v, act, t, pc),
                Event::LoopEnter(l, nl, act, t) => sink.loop_enter(l, nl, act, t),
                Event::LoopIter(l, t) => sink.loop_iter(l, t),
                Event::LoopExit(l, t) => sink.loop_exit(l, t),
                Event::StatsRead(l, t) => sink.stats_read(l, t),
                Event::CallEnter(pc, act, t) => sink.call_enter(pc, act, t),
                Event::CallExit(pc, t) => sink.call_exit(pc, t),
                Event::CallResultUse(pc, t) => sink.call_result_use(pc, t),
            }
            n += 1;
        }
        Ok(n)
    }

    /// Decodes the stream into [`EventBatch`]es of up to `capacity`
    /// events, invoking `deliver` on each full batch (and the trailing
    /// partial one). One batch buffer is reused across calls, so the
    /// steady state allocates nothing: this is the zero-copy load path
    /// the profiling server's replay workers run on.
    ///
    /// # Errors
    ///
    /// Any decode error; batches before the corruption point have
    /// already been delivered.
    pub fn stream_batches(
        &self,
        capacity: usize,
        mut deliver: impl FnMut(&EventBatch),
    ) -> Result<u64, RecordingError> {
        let capacity = capacity.max(1);
        let mut batch = EventBatch::with_capacity(capacity);
        let mut decoder = self.decoder();
        let mut n = 0u64;
        while let Some(e) = decoder.next_event()? {
            batch.push(e);
            n += 1;
            if batch.len() >= capacity {
                deliver(&batch);
                batch.clear();
            }
        }
        if !batch.is_empty() {
            deliver(&batch);
        }
        Ok(n)
    }

    /// Materializes the view as an owned [`Recording`].
    ///
    /// # Errors
    ///
    /// Any decode error.
    pub fn to_recording(&self) -> Result<Recording, RecordingError> {
        let mut events = Vec::with_capacity(self.count.min(1 << 20) as usize);
        let mut decoder = self.decoder();
        while let Some(e) = decoder.next_event()? {
            events.push(e);
        }
        Ok(Recording { events })
    }
}

/// Streaming decoder over a [`RecordingView`]'s event records.
#[derive(Debug, Clone)]
pub struct EventDecoder<'a> {
    reader: Reader<'a>,
    remaining: u64,
    prev_cycle: i64,
}

impl EventDecoder<'_> {
    /// Decodes the next event, or `None` past the declared count
    /// (after verifying no trailing garbage follows the last record).
    ///
    /// # Errors
    ///
    /// [`RecordingError`] on truncation, unknown kinds, out-of-range
    /// fields, or trailing bytes after the final event.
    pub fn next_event(&mut self) -> Result<Option<Event>, RecordingError> {
        if self.remaining == 0 {
            if self.reader.pos != self.reader.bytes.len() {
                return Err(RecordingError::TrailingBytes);
            }
            return Ok(None);
        }
        self.remaining -= 1;
        let r = &mut self.reader;
        let kind = r.byte()?;
        let now = self
            .prev_cycle
            .checked_add(r.zigzag()?)
            .filter(|&c| c >= 0)
            .ok_or(RecordingError::FieldRange)?;
        self.prev_cycle = now;
        let now = now as Cycles;
        let e = match kind {
            0 => Event::HeapLoad(r.addr()?, now, r.pc()?),
            1 => Event::HeapStore(r.addr()?, now, r.pc()?),
            2 => Event::LocalLoad(r.u16()?, r.u32()?, now, r.pc()?),
            3 => Event::LocalStore(r.u16()?, r.u32()?, now, r.pc()?),
            4 => Event::LoopEnter(LoopId(r.u32()?), r.u16()?, r.u32()?, now),
            5 => Event::LoopIter(LoopId(r.u32()?), now),
            6 => Event::LoopExit(LoopId(r.u32()?), now),
            7 => Event::StatsRead(LoopId(r.u32()?), now),
            8 => Event::CallEnter(r.pc()?, r.u32()?, now),
            9 => Event::CallExit(r.pc()?, now),
            10 => Event::CallResultUse(r.pc()?, now),
            k => return Err(RecordingError::BadKind(k)),
        };
        Ok(Some(e))
    }
}

/// A saved recording, memory-mapped for zero-copy decoding.
///
/// On Unix the file is `mmap`ed read-only (private), so loading a
/// multi-gigabyte trace costs a handful of page-table entries and the
/// kernel pages bytes in as the decoder touches them; on other
/// platforms this falls back to a buffered read with the same API. The
/// header is validated at open time; use [`MappedRecording::view`] to
/// decode.
#[derive(Debug)]
pub struct MappedRecording {
    map: MapBacking,
}

#[derive(Debug)]
enum MapBacking {
    #[cfg(unix)]
    Mmap(sys::Mmap),
    Owned(Vec<u8>),
}

impl MappedRecording {
    /// Maps `path` and validates the recording header.
    ///
    /// # Errors
    ///
    /// I/O or mapping failures, plus every header parse error of
    /// [`RecordingView::parse`] — a truncated or corrupted file is a
    /// typed error, never a panic.
    pub fn open(path: impl AsRef<Path>) -> Result<MappedRecording, RecordingError> {
        let file = std::fs::File::open(path).map_err(RecordingError::Io)?;
        let len = file.metadata().map_err(RecordingError::Io)?.len();
        let len = usize::try_from(len).map_err(|_| RecordingError::CountTooLarge {
            count: u64::MAX,
            available: 0,
        })?;
        let map = Self::back(file, len)?;
        let rec = MappedRecording { map };
        RecordingView::parse(rec.bytes())?;
        Ok(rec)
    }

    #[cfg(unix)]
    fn back(file: std::fs::File, len: usize) -> Result<MapBacking, RecordingError> {
        // mmap rejects zero-length mappings; an empty file is just an
        // empty (typed-error-producing) byte view.
        if len == 0 {
            return Ok(MapBacking::Owned(Vec::new()));
        }
        match sys::Mmap::map_readonly(&file, len) {
            Ok(m) => Ok(MapBacking::Mmap(m)),
            Err(e) => Err(RecordingError::Io(e)),
        }
    }

    #[cfg(not(unix))]
    fn back(mut file: std::fs::File, len: usize) -> Result<MapBacking, RecordingError> {
        use std::io::Read;
        let mut buf = Vec::with_capacity(len);
        file.read_to_end(&mut buf).map_err(RecordingError::Io)?;
        Ok(MapBacking::Owned(buf))
    }

    /// The raw mapped bytes.
    pub fn bytes(&self) -> &[u8] {
        match &self.map {
            #[cfg(unix)]
            MapBacking::Mmap(m) => m.as_slice(),
            MapBacking::Owned(v) => v,
        }
    }

    /// A validated lazy view over the mapped bytes.
    ///
    /// # Errors
    ///
    /// Header parse errors (the file may have changed since `open`).
    pub fn view(&self) -> Result<RecordingView<'_>, RecordingError> {
        RecordingView::parse(self.bytes())
    }

    /// True when the mapping is a real `mmap` (false on the buffered
    /// fallback used for empty files and non-Unix platforms).
    pub fn is_mmap(&self) -> bool {
        match &self.map {
            #[cfg(unix)]
            MapBacking::Mmap(_) => true,
            MapBacking::Owned(_) => false,
        }
    }
}

#[cfg(unix)]
mod sys {
    //! Minimal read-only `mmap` wrapper. The symbols come straight
    //! from the C library the binary already links — no new crate
    //! dependency.

    use std::os::unix::io::AsRawFd;

    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;

    extern "C" {
        fn mmap(
            addr: *mut core::ffi::c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut core::ffi::c_void;
        fn munmap(addr: *mut core::ffi::c_void, len: usize) -> i32;
    }

    #[derive(Debug)]
    pub(super) struct Mmap {
        ptr: *mut u8,
        len: usize,
    }

    // The mapping is read-only and owned exclusively by this struct.
    unsafe impl Send for Mmap {}
    unsafe impl Sync for Mmap {}

    impl Mmap {
        pub(super) fn map_readonly(
            file: &std::fs::File,
            len: usize,
        ) -> Result<Mmap, std::io::Error> {
            debug_assert!(len > 0, "zero-length mappings are rejected by mmap");
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 {
                return Err(std::io::Error::last_os_error());
            }
            Ok(Mmap {
                ptr: ptr.cast(),
                len,
            })
        }

        pub(super) fn as_slice(&self) -> &[u8] {
            // SAFETY: the mapping is PROT_READ, MAP_PRIVATE, valid for
            // `len` bytes, and lives until Drop runs.
            unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
        }
    }

    impl Drop for Mmap {
        fn drop(&mut self) {
            // SAFETY: ptr/len are exactly what mmap returned.
            unsafe {
                munmap(self.ptr.cast(), self.len);
            }
        }
    }
}

impl Event {
    /// The event's timestamp.
    pub fn cycle(&self) -> Cycles {
        match *self {
            Event::HeapLoad(_, t, _)
            | Event::HeapStore(_, t, _)
            | Event::LocalLoad(_, _, t, _)
            | Event::LocalStore(_, _, t, _)
            | Event::LoopEnter(_, _, _, t)
            | Event::LoopIter(_, t)
            | Event::LoopExit(_, t)
            | Event::StatsRead(_, t)
            | Event::CallEnter(_, _, t)
            | Event::CallExit(_, t)
            | Event::CallResultUse(_, t) => t,
        }
    }
}

/// File magic of the binary trace format.
const MAGIC: &[u8; 4] = b"TVMR";

/// Current version of the binary trace format.
pub const FORMAT_VERSION: u16 = 1;

/// Failure parsing or transporting a serialized [`Recording`].
#[derive(Debug)]
pub enum RecordingError {
    /// Filesystem failure in [`Recording::save`]/[`Recording::load`].
    Io(std::io::Error),
    /// The stream does not start with the `TVMR` magic.
    BadMagic,
    /// The format version is not [`FORMAT_VERSION`].
    BadVersion(u16),
    /// The stream ended mid-record.
    Truncated,
    /// An event record carries an unknown kind byte.
    BadKind(u8),
    /// A varint field exceeds its target type's range (or a cycle
    /// delta chain went negative).
    FieldRange,
    /// Well-formed events followed by garbage.
    TrailingBytes,
    /// The header declares more events than the remaining bytes could
    /// possibly encode. Rejected before any allocation or decoding.
    CountTooLarge {
        /// Declared event count.
        count: u64,
        /// Bytes actually available after the header.
        available: u64,
    },
}

impl fmt::Display for RecordingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordingError::Io(e) => write!(f, "recording i/o error: {e}"),
            RecordingError::BadMagic => write!(f, "not a TVMR recording (bad magic)"),
            RecordingError::BadVersion(v) => write!(f, "unsupported recording version {v}"),
            RecordingError::Truncated => write!(f, "recording truncated mid-record"),
            RecordingError::BadKind(k) => write!(f, "unknown event kind byte {k}"),
            RecordingError::FieldRange => write!(f, "event field out of range"),
            RecordingError::TrailingBytes => write!(f, "trailing bytes after last event"),
            RecordingError::CountTooLarge { count, available } => write!(
                f,
                "declared event count {count} cannot fit in {available} remaining bytes"
            ),
        }
    }
}

impl std::error::Error for RecordingError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RecordingError::Io(e) => Some(e),
            _ => None,
        }
    }
}

fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn write_zigzag(out: &mut Vec<u8>, v: i64) {
    write_varint(out, ((v << 1) ^ (v >> 63)) as u64);
}

fn write_pc(out: &mut Vec<u8>, pc: Pc) {
    write_varint(out, pc.func.0 as u64);
    write_varint(out, pc.idx as u64);
}

#[derive(Debug, Clone)]
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], RecordingError> {
        let end = self.pos.checked_add(n).ok_or(RecordingError::Truncated)?;
        if end > self.bytes.len() {
            return Err(RecordingError::Truncated);
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn byte(&mut self) -> Result<u8, RecordingError> {
        Ok(self.take(1)?[0])
    }

    fn varint(&mut self) -> Result<u64, RecordingError> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let b = self.byte()?;
            if shift >= 64 || (shift == 63 && b > 1) {
                return Err(RecordingError::FieldRange);
            }
            v |= ((b & 0x7f) as u64) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    fn zigzag(&mut self) -> Result<i64, RecordingError> {
        let v = self.varint()?;
        Ok(((v >> 1) as i64) ^ -((v & 1) as i64))
    }

    fn u16(&mut self) -> Result<u16, RecordingError> {
        u16::try_from(self.varint()?).map_err(|_| RecordingError::FieldRange)
    }

    fn u32(&mut self) -> Result<u32, RecordingError> {
        u32::try_from(self.varint()?).map_err(|_| RecordingError::FieldRange)
    }

    fn addr(&mut self) -> Result<Addr, RecordingError> {
        self.u32()
    }

    fn pc(&mut self) -> Result<Pc, RecordingError> {
        let func = FuncId(self.u16()?);
        let idx = self.u32()?;
        Ok(Pc { func, idx })
    }
}

/// A sink that records every event for later [`Recording::replay`].
#[derive(Debug, Clone, Default)]
pub struct RecordingSink {
    /// The capture.
    pub recording: Recording,
}

impl RecordingSink {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the recorder and yields the capture.
    pub fn into_recording(self) -> Recording {
        self.recording
    }
}

impl TraceSink for RecordingSink {
    fn heap_load(&mut self, addr: Addr, now: Cycles, pc: Pc) {
        self.recording.events.push(Event::HeapLoad(addr, now, pc));
    }
    fn heap_store(&mut self, addr: Addr, now: Cycles, pc: Pc) {
        self.recording.events.push(Event::HeapStore(addr, now, pc));
    }
    fn local_load(&mut self, var: u16, activation: u32, now: Cycles, pc: Pc) {
        self.recording
            .events
            .push(Event::LocalLoad(var, activation, now, pc));
    }
    fn local_store(&mut self, var: u16, activation: u32, now: Cycles, pc: Pc) {
        self.recording
            .events
            .push(Event::LocalStore(var, activation, now, pc));
    }
    fn loop_enter(&mut self, loop_id: LoopId, n_locals: u16, activation: u32, now: Cycles) {
        self.recording
            .events
            .push(Event::LoopEnter(loop_id, n_locals, activation, now));
    }
    fn loop_iter(&mut self, loop_id: LoopId, now: Cycles) {
        self.recording.events.push(Event::LoopIter(loop_id, now));
    }
    fn loop_exit(&mut self, loop_id: LoopId, now: Cycles) {
        self.recording.events.push(Event::LoopExit(loop_id, now));
    }
    fn stats_read(&mut self, loop_id: LoopId, now: Cycles) {
        self.recording.events.push(Event::StatsRead(loop_id, now));
    }
    fn call_enter(&mut self, site: Pc, activation: u32, now: Cycles) {
        self.recording
            .events
            .push(Event::CallEnter(site, activation, now));
    }
    fn call_exit(&mut self, site: Pc, now: Cycles) {
        self.recording.events.push(Event::CallExit(site, now));
    }
    fn call_result_use(&mut self, site: Pc, now: Cycles) {
        self.recording.events.push(Event::CallResultUse(site, now));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::ProgramBuilder;
    use crate::interp::Interp;
    use crate::trace::CountingSink;
    use crate::ElemKind;

    fn sample_program() -> crate::Program {
        let mut b = ProgramBuilder::new();
        let main = b.function("main", 0, false, |f| {
            let (a, i) = (f.local(), f.local());
            f.ci(8).newarray(ElemKind::Int).st(a);
            f.for_in(i, 0.into(), 8.into(), |f| {
                f.arr_set(
                    a,
                    |f| {
                        f.ld(i);
                    },
                    |f| {
                        f.ld(i);
                    },
                );
            });
            f.ret_void();
        });
        b.finish(main).unwrap()
    }

    #[test]
    fn replay_reproduces_the_exact_stream() {
        let p = sample_program();
        let mut rec = RecordingSink::new();
        Interp::run(&p, &mut rec).unwrap();
        let recording = rec.into_recording();
        assert!(!recording.is_empty());

        // live counts == replayed counts
        let mut live = CountingSink::default();
        Interp::run(&p, &mut live).unwrap();
        let mut replayed = CountingSink::default();
        recording.replay(&mut replayed);
        assert_eq!(live, replayed);
    }

    #[test]
    fn binary_roundtrip_is_exact() {
        let p = sample_program();
        let mut rec = RecordingSink::new();
        Interp::run(&p, &mut rec).unwrap();
        let recording = rec.into_recording();

        let bytes = recording.to_bytes();
        let back = Recording::from_bytes(&bytes).unwrap();
        assert_eq!(recording, back);
        // the format is compact: well under the 40+ bytes/event of the
        // in-memory representation
        assert!(bytes.len() < recording.len() * 16, "{} bytes", bytes.len());
    }

    #[test]
    fn parse_rejects_corrupt_streams() {
        let p = sample_program();
        let mut rec = RecordingSink::new();
        Interp::run(&p, &mut rec).unwrap();
        let bytes = rec.into_recording().to_bytes();

        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            Recording::from_bytes(&bad_magic),
            Err(RecordingError::BadMagic)
        ));

        let mut bad_version = bytes.clone();
        bad_version[4] = 0xff;
        assert!(matches!(
            Recording::from_bytes(&bad_version),
            Err(RecordingError::BadVersion(_))
        ));

        let truncated = &bytes[..bytes.len() - 1];
        assert!(matches!(
            Recording::from_bytes(truncated),
            Err(RecordingError::Truncated | RecordingError::FieldRange)
        ));

        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(matches!(
            Recording::from_bytes(&trailing),
            Err(RecordingError::TrailingBytes)
        ));
    }

    #[test]
    fn to_batches_partitions_without_reordering() {
        let p = sample_program();
        let mut rec = RecordingSink::new();
        Interp::run(&p, &mut rec).unwrap();
        let recording = rec.into_recording();
        let batches = recording.to_batches(3);
        let flat: Vec<Event> = batches.iter().flat_map(|b| b.events()).collect();
        assert_eq!(flat, recording.events);
        assert!(batches[..batches.len() - 1].iter().all(|b| b.len() == 3));
        assert_eq!(recording.kind_counts().total(), recording.len() as u64);
    }

    #[test]
    fn oversized_count_is_rejected_before_decoding() {
        // a header declaring ~2^62 events over a 16-byte body
        let mut forged = Vec::new();
        forged.extend_from_slice(MAGIC);
        forged.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        write_varint(&mut forged, u64::MAX / 2);
        forged.extend_from_slice(&[0u8; 16]);
        assert!(matches!(
            Recording::from_bytes(&forged),
            Err(RecordingError::CountTooLarge { .. })
        ));
        assert!(matches!(
            RecordingView::parse(&forged),
            Err(RecordingError::CountTooLarge { .. })
        ));
    }

    #[test]
    fn header_boundary_truncations_are_typed_errors() {
        let p = sample_program();
        let mut rec = RecordingSink::new();
        Interp::run(&p, &mut rec).unwrap();
        let bytes = rec.into_recording().to_bytes();
        // every prefix that ends inside the header must yield a typed
        // error from both the owned and the view parser
        for cut in 0..8.min(bytes.len()) {
            let prefix = &bytes[..cut];
            assert!(Recording::from_bytes(prefix).is_err(), "cut {cut}");
            assert!(RecordingView::parse(prefix).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn view_streams_the_exact_event_sequence() {
        let p = sample_program();
        let mut rec = RecordingSink::new();
        Interp::run(&p, &mut rec).unwrap();
        let recording = rec.into_recording();
        let bytes = recording.to_bytes();

        let view = RecordingView::parse(&bytes).unwrap();
        assert_eq!(view.count(), recording.len() as u64);
        assert_eq!(view.to_recording().unwrap(), recording);

        // replay through the view == replay through the owned recording
        let mut via_view = RecordingSink::new();
        let n = view.replay(&mut via_view).unwrap();
        assert_eq!(n, recording.len() as u64);
        assert_eq!(via_view.into_recording(), recording);

        // batch streaming partitions without reordering, reusing the
        // buffer (capacities respected)
        let mut flat = Vec::new();
        let mut sizes = Vec::new();
        let n = view
            .stream_batches(5, |b| {
                sizes.push(b.len());
                flat.extend(b.events());
            })
            .unwrap();
        assert_eq!(n, recording.len() as u64);
        assert_eq!(flat, recording.events);
        assert!(sizes[..sizes.len() - 1].iter().all(|&s| s == 5));
    }

    #[test]
    fn mapped_recording_round_trips_and_rejects_corruption() {
        let p = sample_program();
        let mut rec = RecordingSink::new();
        Interp::run(&p, &mut rec).unwrap();
        let recording = rec.into_recording();

        let dir = std::env::temp_dir().join(format!("tvm-mmap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.trace");
        recording.save(&path).unwrap();

        let mapped = MappedRecording::open(&path).unwrap();
        assert!(mapped.is_mmap() || cfg!(not(unix)));
        let view = mapped.view().unwrap();
        assert_eq!(view.to_recording().unwrap(), recording);

        // a truncated file is a typed open error, never a panic
        let bytes = recording.to_bytes();
        for cut in [0, 1, 3, 5, 6, bytes.len() / 2] {
            let bad = dir.join(format!("cut{cut}.trace"));
            std::fs::write(&bad, &bytes[..cut]).unwrap();
            if let Ok(m) = MappedRecording::open(&bad) {
                // open may defer validation; decoding must then fail typed
                assert!(
                    m.view().and_then(|v| v.to_recording()).is_err(),
                    "cut {cut}"
                );
            }
        }
        // and so is a missing file
        assert!(matches!(
            MappedRecording::open(dir.join("missing.trace")),
            Err(RecordingError::Io(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recording_a_replay_is_idempotent() {
        let p = sample_program();
        let mut rec = RecordingSink::new();
        Interp::run(&p, &mut rec).unwrap();
        let first = rec.into_recording();
        let mut second_rec = RecordingSink::new();
        first.replay(&mut second_rec);
        assert_eq!(first, second_rec.into_recording());
    }
}
