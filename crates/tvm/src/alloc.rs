//! Allocation-site table: a dense id for every `NewArray`/`NewObject`.
//!
//! Whole-program analyses (notably `cfgir::pointsto`) model the heap
//! with *allocation-site abstraction*: every object a program can ever
//! create is represented by the static instruction that allocates it.
//! The bytecode itself does not carry site ids — `NewArray`/`NewObject`
//! only name an element kind or class — so this module surfaces them:
//! [`AllocSites::build`] scans a program once and assigns each
//! allocating instruction a dense [`SiteId`], keyed by its [`Pc`].
//!
//! Ids are assigned in program order (function by function, instruction
//! by instruction), so they are stable across runs of the same program
//! and can be used as bitset indices.

use std::collections::BTreeMap;

use crate::isa::{ClassId, ElemKind, FuncId, Instr, Pc};
use crate::program::Program;

/// Dense index of one allocation site (a `NewArray` or `NewObject`
/// instruction) within a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SiteId(pub u32);

impl std::fmt::Display for SiteId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "site{}", self.0)
    }
}

/// What an allocation site creates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteKind {
    /// An array of the given element kind.
    Array(ElemKind),
    /// An object of the given class.
    Object(ClassId),
}

/// One allocation site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocSite {
    /// Dense id (index into [`AllocSites`]).
    pub id: SiteId,
    /// The allocating instruction.
    pub pc: Pc,
    /// Array or object, and of what.
    pub kind: SiteKind,
}

/// All allocation sites of a program, with `Pc → SiteId` lookup.
#[derive(Debug, Clone, Default)]
pub struct AllocSites {
    sites: Vec<AllocSite>,
    by_pc: BTreeMap<(u16, u32), SiteId>,
}

impl AllocSites {
    /// Scans `program` and tables every allocating instruction.
    pub fn build(program: &Program) -> AllocSites {
        let mut out = AllocSites::default();
        for (fi, f) in program.functions.iter().enumerate() {
            for (idx, instr) in f.code.iter().enumerate() {
                let kind = match instr {
                    Instr::NewArray(k) => SiteKind::Array(*k),
                    Instr::NewObject(c) => SiteKind::Object(*c),
                    _ => continue,
                };
                let id = SiteId(out.sites.len() as u32);
                let pc = Pc {
                    func: FuncId(fi as u16),
                    idx: idx as u32,
                };
                out.sites.push(AllocSite { id, pc, kind });
                out.by_pc.insert((pc.func.0, pc.idx), id);
            }
        }
        out
    }

    /// Number of allocation sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// True when the program allocates nothing.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// The site allocated at `pc`, if that instruction allocates.
    pub fn site_at(&self, pc: Pc) -> Option<SiteId> {
        self.by_pc.get(&(pc.func.0, pc.idx)).copied()
    }

    /// Looks up a site by dense id.
    pub fn get(&self, id: SiteId) -> &AllocSite {
        &self.sites[id.0 as usize]
    }

    /// Iterates all sites in id order.
    pub fn iter(&self) -> impl Iterator<Item = &AllocSite> {
        self.sites.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::ProgramBuilder;

    #[test]
    fn sites_are_dense_and_keyed_by_pc() {
        let mut b = ProgramBuilder::new();
        let cls = b.class(&[ElemKind::Int]);
        let main = b.function("main", 0, false, |f| {
            let (a, o) = (f.local(), f.local());
            f.ci(8).newarray(ElemKind::Int).st(a);
            f.newobject(cls).st(o);
            f.ret_void();
        });
        let p = b.finish(main).unwrap();
        let sites = AllocSites::build(&p);
        assert_eq!(sites.len(), 2);
        let arr = sites.get(SiteId(0));
        let obj = sites.get(SiteId(1));
        assert!(matches!(arr.kind, SiteKind::Array(ElemKind::Int)));
        assert!(matches!(obj.kind, SiteKind::Object(_)));
        assert_eq!(sites.site_at(arr.pc), Some(SiteId(0)));
        assert_eq!(sites.site_at(obj.pc), Some(SiteId(1)));
        assert_eq!(
            sites.site_at(Pc {
                func: FuncId(0),
                idx: 0
            }),
            None,
            "non-allocating instructions have no site"
        );
    }

    #[test]
    fn empty_program_has_no_sites() {
        let mut b = ProgramBuilder::new();
        let main = b.function("main", 0, false, |f| {
            f.ret_void();
        });
        let p = b.finish(main).unwrap();
        assert!(AllocSites::build(&p).is_empty());
    }
}
