//! Instruction set and program-entity identifiers.
//!
//! The instruction set is a compact stack machine in the spirit of JVM
//! bytecode. The trace-annotation opcodes at the bottom of [`Instr`]
//! correspond one-to-one with the paper's Table 4 (`sloop`, `eloop`,
//! `eoi`, `lwl`, `swl`, plus the end-of-STL statistics read routine).

use std::fmt;

/// Identifies a function within a [`crate::program::Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncId(pub u16);

/// Identifies an object class (a fixed field layout).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClassId(pub u16);

/// Identifies a static (global) variable. Statics live in the heap
/// address space, so accesses to them are traced like heap accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GlobalId(pub u16);

/// A local-variable slot within a function frame. Parameters occupy the
/// first slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Local(pub u16);

/// A builder-time branch label; resolved to an instruction index by
/// [`crate::build::FnBuilder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(pub u32);

/// Identifies a candidate speculative thread loop (STL) across the whole
/// program. Assigned densely by the candidate-extraction pass; embedded
/// in the annotation instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LoopId(pub u32);

impl fmt::Display for LoopId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// A static program counter: function id plus instruction index. Used by
/// the extended TEST implementation to bin dependency statistics by load
/// PC (paper §5.2, Figure 8b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pc {
    /// Containing function.
    pub func: FuncId,
    /// Instruction index within the function body.
    pub idx: u32,
}

impl fmt::Display for Pc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.func.0, self.idx)
    }
}

/// Comparison condition for conditional branches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than (signed).
    Lt,
    /// Greater or equal (signed).
    Ge,
    /// Greater than (signed).
    Gt,
    /// Less or equal (signed).
    Le,
}

impl Cond {
    /// The condition that holds exactly when `self` does not.
    ///
    /// ```
    /// use tvm::isa::Cond;
    /// assert_eq!(Cond::Lt.negate(), Cond::Ge);
    /// ```
    pub fn negate(self) -> Cond {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Lt => Cond::Ge,
            Cond::Ge => Cond::Lt,
            Cond::Gt => Cond::Le,
            Cond::Le => Cond::Gt,
        }
    }

    /// Evaluates the condition on an integer pair.
    #[inline]
    pub fn eval_int(self, a: i64, b: i64) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => a < b,
            Cond::Ge => a >= b,
            Cond::Gt => a > b,
            Cond::Le => a <= b,
        }
    }

    /// Evaluates the condition on a float pair (IEEE semantics: all
    /// comparisons with NaN are false except `Ne`).
    #[inline]
    pub fn eval_float(self, a: f64, b: f64) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => a < b,
            Cond::Ge => a >= b,
            Cond::Gt => a > b,
            Cond::Le => a <= b,
        }
    }
}

/// Element kind of heap cells: used to pick zero-initialization values
/// for fresh arrays, object fields and statics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ElemKind {
    /// Integer cell, initialized to `0`.
    Int,
    /// Float cell, initialized to `0.0`.
    Float,
    /// Reference cell, initialized to `null`.
    Ref,
}

/// One TraceVM instruction.
///
/// Branch targets are absolute instruction indices within the containing
/// function (the builder resolves [`Label`]s before the program is
/// finished).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Instr {
    // ---- constants, locals, stack ----
    /// Push an integer constant.
    IConst(i64),
    /// Push a float constant.
    FConst(f64),
    /// Push `null`.
    NullConst,
    /// Push the value of a local slot.
    Load(Local),
    /// Pop into a local slot.
    Store(Local),
    /// Add a constant to an integer local in place (like JVM `iinc`).
    /// Benchmarks use this for loop inductors, which the scalar analysis
    /// recognizes and the annotation pass leaves untracked (paper §4.1).
    IInc(Local, i32),
    /// Duplicate the top of stack.
    Dup,
    /// Pop and discard the top of stack.
    Pop,
    /// Swap the top two stack values.
    Swap,

    // ---- integer arithmetic ----
    /// Pop b, a; push `a + b` (wrapping).
    IAdd,
    /// Pop b, a; push `a - b` (wrapping).
    ISub,
    /// Pop b, a; push `a * b` (wrapping).
    IMul,
    /// Pop b, a; push `a / b` (truncating). Errors on division by zero.
    IDiv,
    /// Pop b, a; push `a % b`. Errors on division by zero.
    IRem,
    /// Pop a; push `-a`.
    INeg,
    /// Pop b, a; push `a & b`.
    IAnd,
    /// Pop b, a; push `a | b`.
    IOr,
    /// Pop b, a; push `a ^ b`.
    IXor,
    /// Pop b, a; push `a << (b & 63)`.
    IShl,
    /// Pop b, a; push `a >> (b & 63)` (arithmetic).
    IShr,
    /// Pop b, a; push `((a as u64) >> (b & 63)) as i64` (logical).
    IUShr,
    /// Pop b, a; push `min(a, b)`.
    IMin,
    /// Pop b, a; push `max(a, b)`.
    IMax,
    /// Pop b, a; push `-1`, `0` or `1` as a is less than, equal to or
    /// greater than b.
    ICmp,

    // ---- float arithmetic ----
    /// Pop b, a; push `a + b`.
    FAdd,
    /// Pop b, a; push `a - b`.
    FSub,
    /// Pop b, a; push `a * b`.
    FMul,
    /// Pop b, a; push `a / b` (IEEE; may produce inf/NaN).
    FDiv,
    /// Pop a; push `-a`.
    FNeg,
    /// Pop b, a; push `min(a, b)`.
    FMin,
    /// Pop b, a; push `max(a, b)`.
    FMax,
    /// Pop a; push `|a|`.
    FAbs,
    /// Pop a; push `sqrt(a)`. Models a JVM `Math` intrinsic with a fixed
    /// cycle cost.
    FSqrt,
    /// Pop a; push `sin(a)`.
    FSin,
    /// Pop a; push `cos(a)`.
    FCos,
    /// Pop a; push `exp(a)`.
    FExp,
    /// Pop a; push `ln(a)`.
    FLog,
    /// Pop int a; push float `a as f64`.
    I2F,
    /// Pop float a; push int `a as i64` (truncating; saturates).
    F2I,

    // ---- control flow ----
    /// Unconditional branch.
    Goto(u32),
    /// Unconditional branch inserted by the annotation compiler as
    /// edge-splitting plumbing (trampoline entries/exits). Executes
    /// and costs exactly like [`Instr::Goto`], but the interpreter
    /// tallies its cycles as annotation overhead, keeping
    /// `annotated_cycles − annotation_cycles == plain_cycles` an
    /// identity.
    AGoto(u32),
    /// Pop int a; branch if `a <cond> 0`.
    If(Cond, u32),
    /// Pop b, a (ints); branch if `a <cond> b`.
    IfICmp(Cond, u32),
    /// Pop b, a (floats); branch if `a <cond> b`.
    IfFCmp(Cond, u32),

    // ---- heap ----
    /// Pop int length; allocate an array; push its reference.
    NewArray(ElemKind),
    /// Pop int index, ref array; push `array[index]`. Traced heap load.
    ALoad,
    /// Pop value, int index, ref array; `array[index] = value`. Traced
    /// heap store.
    AStore,
    /// Pop ref array; push its length (not traced: models a header read
    /// folded into the reference, keeping the event stream to data
    /// accesses).
    ArrayLen,
    /// Allocate an object of a class; push its reference. Zero
    /// initialization emits traced stores (allocation inside a
    /// speculative thread produces speculative state).
    NewObject(ClassId),
    /// Pop ref obj; push field at index. Traced heap load.
    GetField(u16),
    /// Pop value, ref obj; store into field at index. Traced heap store.
    PutField(u16),
    /// Push the value of a static variable. Traced heap load.
    GetStatic(GlobalId),
    /// Pop into a static variable. Traced heap store.
    PutStatic(GlobalId),

    // ---- calls ----
    /// Call a function: pops its arguments (last argument on top).
    Call(FuncId),
    /// Return a value (function must be non-void).
    Return,
    /// Return from a void function.
    ReturnVoid,
    /// Stop the program (valid anywhere; ends the run).
    Halt,

    // ---- trace annotations (paper Table 4) ----
    /// `sloop`: mark entry of a candidate STL; allocates a comparator
    /// bank and reserves `n` local-variable timestamp slots.
    SLoop(LoopId, u16),
    /// `eoi`: mark end-of-iteration of the STL (thread boundary).
    Eoi(LoopId),
    /// `eloop`: mark exit of the STL; frees the bank and `n` slots.
    ELoop(LoopId, u16),
    /// `lwl vn`: annotated local-variable load.
    Lwl(u16),
    /// `swl vn`: annotated local-variable store.
    Swl(u16),
    /// End-of-STL routine that reads collected statistics back from the
    /// tracer; costs a fixed number of cycles (Figure 6's "Read
    /// Counters" component).
    ReadStats(LoopId),
}

impl Instr {
    /// True for instructions that transfer control (branches, returns,
    /// halt) — used by basic-block construction.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            Instr::Goto(_)
                | Instr::AGoto(_)
                | Instr::If(..)
                | Instr::IfICmp(..)
                | Instr::IfFCmp(..)
                | Instr::Return
                | Instr::ReturnVoid
                | Instr::Halt
        )
    }

    /// The branch target, if this instruction is a branch.
    pub fn branch_target(&self) -> Option<u32> {
        match self {
            Instr::Goto(t)
            | Instr::AGoto(t)
            | Instr::If(_, t)
            | Instr::IfICmp(_, t)
            | Instr::IfFCmp(_, t) => Some(*t),
            _ => None,
        }
    }

    /// Rewrites the branch target through `f`, if this is a branch.
    /// Used by code-rewriting passes (the annotation compiler).
    pub fn map_target(self, f: impl FnOnce(u32) -> u32) -> Instr {
        match self {
            Instr::Goto(t) => Instr::Goto(f(t)),
            Instr::AGoto(t) => Instr::AGoto(f(t)),
            Instr::If(c, t) => Instr::If(c, f(t)),
            Instr::IfICmp(c, t) => Instr::IfICmp(c, f(t)),
            Instr::IfFCmp(c, t) => Instr::IfFCmp(c, f(t)),
            other => other,
        }
    }

    /// True if execution can fall through to the next instruction.
    pub fn falls_through(&self) -> bool {
        !matches!(
            self,
            Instr::Goto(_) | Instr::AGoto(_) | Instr::Return | Instr::ReturnVoid | Instr::Halt
        )
    }

    /// True for the annotation opcodes of the paper's Table 4.
    pub fn is_annotation(&self) -> bool {
        matches!(
            self,
            Instr::SLoop(..)
                | Instr::Eoi(_)
                | Instr::ELoop(..)
                | Instr::Lwl(_)
                | Instr::Swl(_)
                | Instr::ReadStats(_)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cond_negation_is_involutive() {
        for c in [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Ge, Cond::Gt, Cond::Le] {
            assert_eq!(c.negate().negate(), c);
            // a condition and its negation partition all outcomes
            for (a, b) in [(1, 2), (2, 2), (3, 2)] {
                assert_ne!(c.eval_int(a, b), c.negate().eval_int(a, b));
            }
        }
    }

    #[test]
    fn terminators_and_targets() {
        assert!(Instr::Goto(3).is_terminator());
        assert_eq!(Instr::Goto(3).branch_target(), Some(3));
        assert!(!Instr::Goto(3).falls_through());
        assert!(Instr::IfICmp(Cond::Lt, 7).falls_through());
        assert!(!Instr::IAdd.is_terminator());
        assert_eq!(Instr::IAdd.branch_target(), None);
    }

    #[test]
    fn annotations_are_classified() {
        assert!(Instr::SLoop(LoopId(0), 2).is_annotation());
        assert!(Instr::Lwl(1).is_annotation());
        assert!(!Instr::Load(Local(0)).is_annotation());
    }

    #[test]
    fn map_target_rewrites_branches_only() {
        assert_eq!(Instr::Goto(1).map_target(|t| t + 10), Instr::Goto(11));
        assert_eq!(Instr::IAdd.map_target(|t| t + 10), Instr::IAdd);
    }
}
