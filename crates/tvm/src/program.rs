//! Programs, functions and class layouts.

pub use crate::isa::{ClassId, FuncId, GlobalId, Local};

use crate::error::VmError;
use crate::isa::{ElemKind, Instr};

/// A function definition: a straight vector of instructions plus frame
/// shape metadata.
#[derive(Debug, Clone)]
pub struct Function {
    /// Human-readable name (used in reports and errors).
    pub name: String,
    /// Number of parameters; they occupy local slots `0..n_params`.
    pub n_params: u16,
    /// Total number of local slots (including parameters).
    pub n_locals: u16,
    /// Whether the function returns a value.
    pub returns: bool,
    /// The body. Branch targets are absolute instruction indices.
    pub code: Vec<Instr>,
}

/// An object class: a fixed sequence of field kinds. Field `i` of an
/// object occupies the word at `base + 8*i`.
#[derive(Debug, Clone)]
pub struct ClassDef {
    /// Kinds of the fields, in slot order.
    pub fields: Vec<ElemKind>,
}

/// A complete TraceVM program: functions, classes, statics and an entry
/// point.
///
/// Construct programs with [`crate::build::ProgramBuilder`]; direct
/// construction is possible for generated code, followed by
/// [`crate::verify::verify`].
#[derive(Debug, Clone)]
pub struct Program {
    /// All function definitions, indexed by [`FuncId`].
    pub functions: Vec<Function>,
    /// All class layouts, indexed by [`ClassId`].
    pub classes: Vec<ClassDef>,
    /// Static variable kinds, indexed by [`GlobalId`]. Statics live at
    /// the bottom of the heap address space.
    pub globals: Vec<ElemKind>,
    /// The function executed by [`crate::interp::Interp::run`].
    pub entry: FuncId,
}

impl Program {
    /// Looks up a function.
    ///
    /// # Errors
    ///
    /// [`VmError::UnknownFunction`] if the id is out of range.
    #[inline]
    pub fn function(&self, id: FuncId) -> Result<&Function, VmError> {
        self.functions
            .get(id.0 as usize)
            .ok_or(VmError::UnknownFunction(id.0))
    }

    /// Looks up a class layout.
    ///
    /// # Errors
    ///
    /// [`VmError::UnknownClass`] if the id is out of range.
    #[inline]
    pub fn class(&self, id: ClassId) -> Result<&ClassDef, VmError> {
        self.classes
            .get(id.0 as usize)
            .ok_or(VmError::UnknownClass(id.0))
    }

    /// Finds a function id by name (helper for tests and examples).
    pub fn function_by_name(&self, name: &str) -> Option<FuncId> {
        self.functions
            .iter()
            .position(|f| f.name == name)
            .map(|i| FuncId(i as u16))
    }

    /// Total static instruction count across all functions.
    pub fn instruction_count(&self) -> usize {
        self.functions.iter().map(|f| f.code.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Program {
        Program {
            functions: vec![Function {
                name: "main".into(),
                n_params: 0,
                n_locals: 0,
                returns: false,
                code: vec![Instr::ReturnVoid],
            }],
            classes: vec![ClassDef {
                fields: vec![ElemKind::Int],
            }],
            globals: vec![],
            entry: FuncId(0),
        }
    }

    #[test]
    fn lookup_by_id_and_name() {
        let p = tiny();
        assert_eq!(p.function(FuncId(0)).unwrap().name, "main");
        assert!(p.function(FuncId(9)).is_err());
        assert_eq!(p.function_by_name("main"), Some(FuncId(0)));
        assert_eq!(p.function_by_name("nope"), None);
        assert_eq!(p.class(ClassId(0)).unwrap().fields.len(), 1);
        assert!(p.class(ClassId(4)).is_err());
    }

    #[test]
    fn instruction_count_sums_bodies() {
        assert_eq!(tiny().instruction_count(), 1);
    }
}
