//! Label-preserving bytecode rewriting utilities.
//!
//! General primitives for instrumenting compiled code in place (the
//! production annotation pass in the `jrpm` crate relinearizes from
//! the CFG instead, but these are the right tools for lightweight
//! instruction-granular instrumentation):
//!
//! * [`insert_before`] — splice instruction sequences in front of
//!   existing instructions, remapping every branch target so that a
//!   branch to instruction *i* lands on the code inserted at *i* (the
//!   inserted code then falls through into the original instruction).
//! * [`append_trampoline`] — add a fresh block at the end of the
//!   function (payload + `Goto back`) and redirect specific branches
//!   through it, so a payload executes on exactly one CFG edge.

use crate::isa::Instr;

/// A batch of insertions: `(index, instructions)` meaning *instructions
/// run immediately before the original instruction at `index`*.
#[derive(Debug, Clone, Default)]
pub struct Insertions {
    items: Vec<(u32, Vec<Instr>)>,
}

impl Insertions {
    /// Creates an empty batch.
    pub fn new() -> Insertions {
        Insertions::default()
    }

    /// Schedules `instrs` to run immediately before the original
    /// instruction at `index`. Multiple insertions at the same index
    /// run in the order they were scheduled.
    pub fn before(&mut self, index: u32, instrs: impl IntoIterator<Item = Instr>) {
        self.items.push((index, instrs.into_iter().collect()));
    }

    /// True if no insertions were scheduled.
    pub fn is_empty(&self) -> bool {
        self.items.iter().all(|(_, v)| v.is_empty())
    }
}

/// Applies a batch of insertions to `code`, producing new code with all
/// branch targets remapped. Also returns the `old index -> new index`
/// map of the original instructions (useful for building PC cross
/// references).
///
/// Branches that targeted instruction `i` now target the first
/// instruction inserted at `i` (if any), so inserted code executes on
/// every path that reached the original instruction.
///
/// # Panics
///
/// Panics if an insertion index is beyond `code.len()` (insertion *at*
/// `code.len()` is not supported; functions always end in a
/// terminator).
pub fn insert_before(code: &[Instr], insertions: Insertions) -> (Vec<Instr>, Vec<u32>) {
    let n = code.len();
    let mut at: Vec<Vec<Instr>> = vec![Vec::new(); n];
    for (idx, instrs) in insertions.items {
        assert!((idx as usize) < n, "insertion index out of range");
        at[idx as usize].extend(instrs);
    }

    // prefix sums of inserted lengths strictly before each index
    let mut added_before = vec![0u32; n + 1];
    for i in 0..n {
        added_before[i + 1] = added_before[i] + at[i].len() as u32;
    }

    let remap_branch = |t: u32| -> u32 { t + added_before[t as usize] };

    let mut out = Vec::with_capacity(n + added_before[n] as usize);
    let mut old_to_new = Vec::with_capacity(n);
    for (i, instr) in code.iter().enumerate() {
        out.extend(
            at[i]
                .iter()
                .copied()
                .map(|ins| ins.map_target(remap_branch)),
        );
        old_to_new.push(out.len() as u32);
        out.push(instr.map_target(remap_branch));
    }
    (out, old_to_new)
}

/// Appends a trampoline block (`payload` then `Goto back_to`) at the end
/// of `code` and returns the index of its first instruction. The caller
/// redirects specific branches to that index, so the payload executes on
/// exactly one CFG edge.
pub fn append_trampoline(code: &mut Vec<Instr>, payload: &[Instr], back_to: u32) -> u32 {
    let start = code.len() as u32;
    code.extend_from_slice(payload);
    code.push(Instr::Goto(back_to));
    start
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Cond, Local};

    #[test]
    fn insertion_remaps_branches_through_payload() {
        // 0: IConst 1
        // 1: If Eq -> 3
        // 2: Goto 0
        // 3: ReturnVoid
        let code = vec![
            Instr::IConst(1),
            Instr::If(Cond::Eq, 3),
            Instr::Goto(0),
            Instr::ReturnVoid,
        ];
        let mut ins = Insertions::new();
        ins.before(3, [Instr::Lwl(0)]);
        ins.before(0, [Instr::Swl(1)]);
        let (out, map) = insert_before(&code, ins);
        // layout: Swl, IConst, If->target, Goto->Swl, Lwl, ReturnVoid
        assert_eq!(out[0], Instr::Swl(1));
        assert_eq!(out[1], Instr::IConst(1));
        assert_eq!(out[2], Instr::If(Cond::Eq, 4)); // lands on Lwl
        assert_eq!(out[3], Instr::Goto(0)); // lands on Swl
        assert_eq!(out[4], Instr::Lwl(0));
        assert_eq!(out[5], Instr::ReturnVoid);
        assert_eq!(map, vec![1, 2, 3, 5]);
    }

    #[test]
    fn multiple_insertions_at_same_index_preserve_order() {
        let code = vec![Instr::ReturnVoid];
        let mut ins = Insertions::new();
        ins.before(0, [Instr::Lwl(0)]);
        ins.before(0, [Instr::Lwl(1)]);
        let (out, _) = insert_before(&code, ins);
        assert_eq!(out, vec![Instr::Lwl(0), Instr::Lwl(1), Instr::ReturnVoid]);
    }

    #[test]
    fn empty_insertions_are_identity() {
        let code = vec![Instr::Load(Local(0)), Instr::Return];
        let (out, map) = insert_before(&code, Insertions::new());
        assert_eq!(out, code);
        assert_eq!(map, vec![0, 1]);
    }

    #[test]
    fn trampoline_appends_goto_block() {
        let mut code = vec![Instr::Goto(0)];
        let start = append_trampoline(&mut code, &[Instr::Lwl(3)], 0);
        assert_eq!(start, 1);
        assert_eq!(code[1], Instr::Lwl(3));
        assert_eq!(code[2], Instr::Goto(0));
    }
}
