//! Deterministic cycle cost model.
//!
//! The paper's Hydra consists of four single-issue pipelined MIPS cores;
//! profiling happens while the program runs *sequentially* on one core.
//! We charge each retired instruction a fixed cost so that timestamps,
//! thread sizes and dependency arc lengths are deterministic and
//! repeatable — the properties TEST's analyses depend on. Cache-miss
//! jitter is deliberately not modelled in the sequential run (the paper's
//! tracer likewise reasons in retired-instruction time); the TLS
//! *execution* model adds the communication and speculation delays of
//! Table 2 separately.

use crate::isa::Instr;

/// Per-instruction-class cycle costs. All fields are public so
/// experiments can build variant machines; [`CostModel::default`] is the
/// configuration used throughout the reproduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Simple ALU ops, constants, local moves, stack shuffles, branches.
    pub simple: u32,
    /// Integer multiply.
    pub imul: u32,
    /// Integer divide / remainder.
    pub idiv: u32,
    /// Float add/sub/mul/compare class.
    pub fsimple: u32,
    /// Float divide.
    pub fdiv: u32,
    /// Math intrinsics (sqrt, sin, cos, exp, log).
    pub fmath: u32,
    /// Heap load or store (L1 hit on the single-issue core).
    pub mem: u32,
    /// Call / return bookkeeping.
    pub call: u32,
    /// Fixed part of an allocation.
    pub alloc_base: u32,
    /// Additional cycles per word zero-initialized by an allocation.
    pub alloc_per_word: u32,
    /// `sloop` / `eloop` markers.
    pub loop_marker: u32,
    /// `eoi` marker.
    pub eoi_marker: u32,
    /// `lwl` / `swl` local-variable annotations.
    pub local_annotation: u32,
    /// The end-of-STL read-statistics routine (software reads the
    /// tracer's counters back; Figure 6's "Read Counters" component).
    pub read_stats: u32,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            simple: 1,
            imul: 2,
            idiv: 12,
            fsimple: 2,
            fdiv: 12,
            fmath: 20,
            mem: 2,
            call: 2,
            alloc_base: 10,
            alloc_per_word: 1,
            loop_marker: 2,
            eoi_marker: 1,
            local_annotation: 1,
            read_stats: 40,
        }
    }
}

impl CostModel {
    /// The cycle cost charged for one retired instruction.
    ///
    /// Allocation instructions additionally charge
    /// [`CostModel::alloc_per_word`] per zeroed word at the allocation
    /// site (applied by the interpreter, which knows the length).
    #[inline]
    pub fn cost(&self, instr: &Instr) -> u32 {
        use Instr::*;
        match instr {
            IMul => self.imul,
            IDiv | IRem => self.idiv,
            FAdd | FSub | FMul | FNeg | FMin | FMax | FAbs | I2F | F2I => self.fsimple,
            FDiv => self.fdiv,
            FSqrt | FSin | FCos | FExp | FLog => self.fmath,
            ALoad | AStore | GetField(_) | PutField(_) | GetStatic(_) | PutStatic(_) => self.mem,
            Call(_) | Return | ReturnVoid => self.call,
            NewArray(_) | NewObject(_) => self.alloc_base,
            SLoop(..) | ELoop(..) => self.loop_marker,
            Eoi(_) => self.eoi_marker,
            Lwl(_) | Swl(_) => self.local_annotation,
            ReadStats(_) => self.read_stats,
            _ => self.simple,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Cond, ElemKind, FuncId, Local, LoopId};

    #[test]
    fn default_costs_are_sane() {
        let m = CostModel::default();
        assert_eq!(m.cost(&Instr::IAdd), m.simple);
        assert_eq!(m.cost(&Instr::IDiv), m.idiv);
        assert_eq!(m.cost(&Instr::FSqrt), m.fmath);
        assert_eq!(m.cost(&Instr::ALoad), m.mem);
        assert_eq!(m.cost(&Instr::Call(FuncId(0))), m.call);
        assert_eq!(m.cost(&Instr::NewArray(ElemKind::Int)), m.alloc_base);
        assert_eq!(m.cost(&Instr::Goto(0)), m.simple);
        assert_eq!(m.cost(&Instr::IfICmp(Cond::Lt, 0)), m.simple);
        assert_eq!(m.cost(&Instr::Load(Local(0))), m.simple);
    }

    #[test]
    fn annotation_costs_are_separable() {
        let m = CostModel::default();
        assert_eq!(m.cost(&Instr::SLoop(LoopId(0), 2)), m.loop_marker);
        assert_eq!(m.cost(&Instr::Eoi(LoopId(0))), m.eoi_marker);
        assert_eq!(m.cost(&Instr::Lwl(0)), m.local_annotation);
        assert_eq!(m.cost(&Instr::ReadStats(LoopId(0))), m.read_stats);
        // the read-statistics routine dominates marker costs, as in the
        // paper's Figure 6 breakdown
        assert!(m.read_stats > 10 * m.loop_marker);
    }
}
