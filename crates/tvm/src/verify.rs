//! Bytecode verifier.
//!
//! Two abstract interpretations run here:
//!
//! * [`verify`] — a lightweight pass over operand-stack *depth*: every
//!   instruction must see a consistent depth on all paths reaching it,
//!   no pop may underflow, branch targets must be in range, and control
//!   may not fall off the end of a function.
//! * [`verify_kinds`] — the same worklist shape over value *kinds*
//!   ([`AbsKind`]): each stack slot and local carries an abstract
//!   int/float/ref/null kind, merged with a small join-semilattice at
//!   control-flow joins. An instruction that would *definitely* receive
//!   an operand of the wrong kind (a float fed to `IAdd`, an int
//!   dereferenced as an array) is rejected statically with
//!   [`VmError::KindMismatch`]; uses that merely *might* mismatch
//!   (`Any` operands from calls or untyped heap reads) stay dynamically
//!   checked by the interpreter.
//!
//! Together they catch almost every builder and rewriter bug at
//! program-construction time instead of as a confusing runtime error
//! mid-benchmark; the annotation compiler runs both on its output as a
//! sanitizer.

use crate::error::VmError;
use crate::isa::{ElemKind, Instr};
use crate::program::{Function, Program};

/// Verifies every function in the program.
///
/// # Errors
///
/// [`VmError::Verify`], [`VmError::BadBranchTarget`], [`VmError::BadLocal`],
/// [`VmError::UnknownFunction`] / [`VmError::UnknownClass`] /
/// [`VmError::UnknownGlobal`] for dangling ids, or
/// [`VmError::ReturnMismatch`].
pub fn verify(program: &Program) -> Result<(), VmError> {
    for (fid, f) in program.functions.iter().enumerate() {
        verify_function(program, fid as u16, f)?;
    }
    program.function(program.entry)?;
    Ok(())
}

/// The stack effect of `instr`: `(pops, pushes)`.
///
/// Needs the program for `Call` (arity) and to validate class/global
/// ids.
///
/// # Errors
///
/// Dangling function/class/global ids.
pub fn stack_effect(program: &Program, instr: &Instr) -> Result<(u32, u32), VmError> {
    use Instr::*;
    Ok(match instr {
        IConst(_) | FConst(_) | NullConst | Load(_) => (0, 1),
        Store(_) | Pop => (1, 0),
        IInc(..) => (0, 0),
        Dup => (1, 2),
        Swap => (2, 2),
        IAdd | ISub | IMul | IDiv | IRem | IAnd | IOr | IXor | IShl | IShr | IUShr | IMin
        | IMax | ICmp | FAdd | FSub | FMul | FDiv | FMin | FMax => (2, 1),
        INeg | FNeg | FAbs | FSqrt | FSin | FCos | FExp | FLog | I2F | F2I => (1, 1),
        Goto(_) | AGoto(_) => (0, 0),
        If(..) => (1, 0),
        IfICmp(..) | IfFCmp(..) => (2, 0),
        NewArray(_) => (1, 1),
        ALoad => (2, 1),
        AStore => (3, 0),
        ArrayLen => (1, 1),
        NewObject(c) => {
            program.class(*c)?;
            (0, 1)
        }
        GetField(_) => (1, 1),
        PutField(_) => (2, 0),
        GetStatic(g) => {
            check_global(program, g.0)?;
            (0, 1)
        }
        PutStatic(g) => {
            check_global(program, g.0)?;
            (1, 0)
        }
        Call(fid) => {
            let callee = program.function(*fid)?;
            (
                u32::from(callee.n_params),
                if callee.returns { 1 } else { 0 },
            )
        }
        Return => (1, 0),
        ReturnVoid | Halt => (0, 0),
        SLoop(..) | Eoi(_) | ELoop(..) | Lwl(_) | Swl(_) | ReadStats(_) => (0, 0),
    })
}

fn check_global(program: &Program, idx: u16) -> Result<(), VmError> {
    if usize::from(idx) < program.globals.len() {
        Ok(())
    } else {
        Err(VmError::UnknownGlobal(idx))
    }
}

fn verify_function(program: &Program, fid: u16, f: &Function) -> Result<(), VmError> {
    let n = f.code.len();
    if n == 0 {
        return Err(VmError::Verify {
            func: fid,
            at: 0,
            reason: "empty function body".into(),
        });
    }

    // per-pc stack depth, None = unseen
    let mut depth: Vec<Option<u32>> = vec![None; n];
    let mut work: Vec<u32> = vec![0];
    depth[0] = Some(0);

    while let Some(pc) = work.pop() {
        let instr = &f.code[pc as usize];
        let d = depth[pc as usize].expect("work items always have a depth");

        // local slot bounds
        if let Instr::Load(l) | Instr::Store(l) | Instr::IInc(l, _) = instr {
            if l.0 >= f.n_locals {
                return Err(VmError::BadLocal(l.0));
            }
        }
        // return arity
        match instr {
            Instr::Return if !f.returns => return Err(VmError::ReturnMismatch(fid)),
            Instr::ReturnVoid if f.returns => return Err(VmError::ReturnMismatch(fid)),
            _ => {}
        }

        let (pops, pushes) = stack_effect(program, instr)?;
        if d < pops {
            return Err(VmError::Verify {
                func: fid,
                at: pc,
                reason: format!("stack underflow: depth {d}, instruction pops {pops}"),
            });
        }
        let d_after = d - pops + pushes;

        let mut successors: [Option<u32>; 2] = [None, None];
        if let Some(t) = instr.branch_target() {
            if t as usize >= n {
                return Err(VmError::BadBranchTarget {
                    func: fid,
                    at: pc,
                    target: t,
                });
            }
            successors[0] = Some(t);
        }
        if instr.falls_through() {
            let next = pc + 1;
            if next as usize >= n {
                return Err(VmError::Verify {
                    func: fid,
                    at: pc,
                    reason: "control falls off the end of the function".into(),
                });
            }
            successors[1] = Some(next);
        }

        for succ in successors.into_iter().flatten() {
            match depth[succ as usize] {
                None => {
                    depth[succ as usize] = Some(d_after);
                    work.push(succ);
                }
                Some(existing) if existing != d_after => {
                    return Err(VmError::Verify {
                        func: fid,
                        at: succ,
                        reason: format!(
                            "inconsistent stack depth: {existing} vs {d_after} on merge"
                        ),
                    });
                }
                Some(_) => {}
            }
        }
    }
    Ok(())
}

/// Abstract value kind tracked per stack slot and local by
/// [`verify_kinds`].
///
/// The join-semilattice is flat apart from `Null < Ref` (a definite
/// null merges with a reference into "reference, possibly null") and
/// `Any` on top (kinds that disagree across paths, or values whose
/// kind is statically unknowable: call results and untyped heap
/// reads).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbsKind {
    /// Unknown or path-dependent kind; every use accepts it.
    Any,
    /// Definitely an integer.
    Int,
    /// Definitely a float.
    Float,
    /// Definitely a reference (possibly null).
    Ref,
    /// Definitely `null`.
    Null,
}

impl AbsKind {
    /// Least upper bound of two kinds.
    pub fn join(self, other: AbsKind) -> AbsKind {
        use AbsKind::*;
        match (self, other) {
            (a, b) if a == b => a,
            (Null, Ref) | (Ref, Null) => Ref,
            _ => Any,
        }
    }

    /// The name used in diagnostics (matches the interpreter's dynamic
    /// kind names).
    pub fn name(self) -> &'static str {
        match self {
            AbsKind::Any => "any",
            AbsKind::Int => "int",
            AbsKind::Float => "float",
            AbsKind::Ref => "ref",
            AbsKind::Null => "null",
        }
    }

    fn of_elem(e: ElemKind) -> AbsKind {
        match e {
            ElemKind::Int => AbsKind::Int,
            ElemKind::Float => AbsKind::Float,
            // a reference cell starts null and may hold either
            ElemKind::Ref => AbsKind::Ref,
        }
    }

    fn is_int(self) -> bool {
        matches!(self, AbsKind::Int | AbsKind::Any)
    }

    fn is_float(self) -> bool {
        matches!(self, AbsKind::Float | AbsKind::Any)
    }

    fn is_ref(self) -> bool {
        matches!(self, AbsKind::Ref | AbsKind::Null | AbsKind::Any)
    }
}

/// Per-pc abstract machine state of the kind checker.
#[derive(Debug, Clone, PartialEq)]
struct KindState {
    stack: Vec<AbsKind>,
    locals: Vec<AbsKind>,
}

impl KindState {
    /// Joins `other` into `self` slot-wise; returns true on change.
    fn join_from(&mut self, other: &KindState) -> bool {
        let mut changed = false;
        for (a, b) in self.stack.iter_mut().zip(&other.stack) {
            let j = a.join(*b);
            if j != *a {
                *a = j;
                changed = true;
            }
        }
        for (a, b) in self.locals.iter_mut().zip(&other.locals) {
            let j = a.join(*b);
            if j != *a {
                *a = j;
                changed = true;
            }
        }
        changed
    }
}

/// Verifies value kinds in every function of the program.
///
/// Runs after (or independently of) the depth pass: parameters start
/// as [`AbsKind::Any`] (callers control them), other locals start as
/// [`AbsKind::Int`] (the interpreter initializes fresh locals to
/// `Int(0)`), and only *definite* mismatches are errors — so valid
/// dynamically-typed programs are never rejected.
///
/// # Errors
///
/// [`VmError::KindMismatch`] on a proven wrong-kind use, plus the same
/// structural errors as [`verify`] (underflow, bad branch targets,
/// inconsistent stack depth at merges) when invoked on a program the
/// depth pass would reject.
pub fn verify_kinds(program: &Program) -> Result<(), VmError> {
    for (fid, f) in program.functions.iter().enumerate() {
        verify_function_kinds(program, fid as u16, f)?;
    }
    Ok(())
}

fn verify_function_kinds(program: &Program, fid: u16, f: &Function) -> Result<(), VmError> {
    let n = f.code.len();
    if n == 0 {
        return Err(VmError::Verify {
            func: fid,
            at: 0,
            reason: "empty function body".into(),
        });
    }

    let mut locals = vec![AbsKind::Int; usize::from(f.n_locals)];
    for slot in locals.iter_mut().take(usize::from(f.n_params)) {
        *slot = AbsKind::Any;
    }
    let entry = KindState {
        stack: Vec::new(),
        locals,
    };

    let mut states: Vec<Option<KindState>> = vec![None; n];
    states[0] = Some(entry);
    let mut work: Vec<u32> = vec![0];

    while let Some(pc) = work.pop() {
        let instr = &f.code[pc as usize];
        let mut st = states[pc as usize]
            .clone()
            .expect("work items always have a state");

        kind_transfer(program, fid, pc, instr, &mut st)?;

        let mut successors: [Option<u32>; 2] = [None, None];
        if let Some(t) = instr.branch_target() {
            if t as usize >= n {
                return Err(VmError::BadBranchTarget {
                    func: fid,
                    at: pc,
                    target: t,
                });
            }
            successors[0] = Some(t);
        }
        if instr.falls_through() {
            let next = pc + 1;
            if next as usize >= n {
                return Err(VmError::Verify {
                    func: fid,
                    at: pc,
                    reason: "control falls off the end of the function".into(),
                });
            }
            successors[1] = Some(next);
        }

        for succ in successors.into_iter().flatten() {
            match &mut states[succ as usize] {
                slot @ None => {
                    *slot = Some(st.clone());
                    work.push(succ);
                }
                Some(existing) => {
                    if existing.stack.len() != st.stack.len() {
                        return Err(VmError::Verify {
                            func: fid,
                            at: succ,
                            reason: format!(
                                "inconsistent stack depth: {} vs {} on merge",
                                existing.stack.len(),
                                st.stack.len()
                            ),
                        });
                    }
                    if existing.join_from(&st) {
                        work.push(succ);
                    }
                }
            }
        }
    }
    Ok(())
}

/// Applies one instruction to the abstract kind state, rejecting
/// definite wrong-kind operand uses.
fn kind_transfer(
    program: &Program,
    fid: u16,
    pc: u32,
    instr: &Instr,
    st: &mut KindState,
) -> Result<(), VmError> {
    use Instr::*;

    let underflow = || VmError::Verify {
        func: fid,
        at: pc,
        reason: "stack underflow in kind verification".into(),
    };
    let mismatch = |expected: &'static str, found: AbsKind| VmError::KindMismatch {
        func: fid,
        at: pc,
        expected,
        found: found.name(),
    };

    macro_rules! pop {
        () => {
            st.stack.pop().ok_or_else(underflow)?
        };
    }
    macro_rules! pop_int {
        () => {{
            let k = pop!();
            if !k.is_int() {
                return Err(mismatch("int", k));
            }
        }};
    }
    macro_rules! pop_float {
        () => {{
            let k = pop!();
            if !k.is_float() {
                return Err(mismatch("float", k));
            }
        }};
    }
    macro_rules! pop_ref {
        () => {{
            let k = pop!();
            if !k.is_ref() {
                return Err(mismatch("ref", k));
            }
        }};
    }

    match instr {
        IConst(_) => st.stack.push(AbsKind::Int),
        FConst(_) => st.stack.push(AbsKind::Float),
        NullConst => st.stack.push(AbsKind::Null),
        Load(l) => {
            let k = *st
                .locals
                .get(usize::from(l.0))
                .ok_or(VmError::BadLocal(l.0))?;
            st.stack.push(k);
        }
        Store(l) => {
            let k = pop!();
            *st.locals
                .get_mut(usize::from(l.0))
                .ok_or(VmError::BadLocal(l.0))? = k;
        }
        IInc(l, _) => {
            let slot = st
                .locals
                .get_mut(usize::from(l.0))
                .ok_or(VmError::BadLocal(l.0))?;
            if !slot.is_int() {
                return Err(mismatch("int", *slot));
            }
            *slot = AbsKind::Int;
        }
        Dup => {
            let k = *st.stack.last().ok_or_else(underflow)?;
            st.stack.push(k);
        }
        Pop => {
            pop!();
        }
        Swap => {
            let b = pop!();
            let a = pop!();
            st.stack.push(b);
            st.stack.push(a);
        }
        IAdd | ISub | IMul | IDiv | IRem | IAnd | IOr | IXor | IShl | IShr | IUShr | IMin
        | IMax | ICmp => {
            pop_int!();
            pop_int!();
            st.stack.push(AbsKind::Int);
        }
        INeg => {
            pop_int!();
            st.stack.push(AbsKind::Int);
        }
        FAdd | FSub | FMul | FDiv | FMin | FMax => {
            pop_float!();
            pop_float!();
            st.stack.push(AbsKind::Float);
        }
        FNeg | FAbs | FSqrt | FSin | FCos | FExp | FLog => {
            pop_float!();
            st.stack.push(AbsKind::Float);
        }
        I2F => {
            pop_int!();
            st.stack.push(AbsKind::Float);
        }
        F2I => {
            pop_float!();
            st.stack.push(AbsKind::Int);
        }
        Goto(_) | AGoto(_) => {}
        If(..) => pop_int!(),
        IfICmp(..) => {
            pop_int!();
            pop_int!();
        }
        IfFCmp(..) => {
            pop_float!();
            pop_float!();
        }
        NewArray(_) => {
            pop_int!();
            st.stack.push(AbsKind::Ref);
        }
        ALoad => {
            pop_int!();
            pop_ref!();
            // element kind depends on which array flows here
            st.stack.push(AbsKind::Any);
        }
        AStore => {
            pop!(); // stored value: element kind is dynamic
            pop_int!();
            pop_ref!();
        }
        ArrayLen => {
            pop_ref!();
            st.stack.push(AbsKind::Int);
        }
        NewObject(c) => {
            program.class(*c)?;
            st.stack.push(AbsKind::Ref);
        }
        GetField(_) => {
            pop_ref!();
            st.stack.push(AbsKind::Any);
        }
        PutField(_) => {
            pop!(); // field kind depends on the object's class
            pop_ref!();
        }
        GetStatic(g) => {
            let kind = program
                .globals
                .get(usize::from(g.0))
                .ok_or(VmError::UnknownGlobal(g.0))?;
            st.stack.push(AbsKind::of_elem(*kind));
        }
        PutStatic(g) => {
            let kind = *program
                .globals
                .get(usize::from(g.0))
                .ok_or(VmError::UnknownGlobal(g.0))?;
            let k = pop!();
            let ok = match kind {
                ElemKind::Int => k.is_int(),
                ElemKind::Float => k.is_float(),
                ElemKind::Ref => k.is_ref(),
            };
            if !ok {
                return Err(mismatch(AbsKind::of_elem(kind).name(), k));
            }
        }
        Call(fid2) => {
            let callee = program.function(*fid2)?;
            for _ in 0..callee.n_params {
                pop!();
            }
            if callee.returns {
                st.stack.push(AbsKind::Any);
            }
        }
        Return => {
            pop!();
        }
        ReturnVoid | Halt => {}
        SLoop(..) | Eoi(_) | ELoop(..) | Lwl(_) | Swl(_) | ReadStats(_) => {}
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Cond, FuncId, Local};

    fn prog_with(code: Vec<Instr>, returns: bool, n_locals: u16) -> Program {
        Program {
            functions: vec![Function {
                name: "f".into(),
                n_params: 0,
                n_locals,
                returns,
                code,
            }],
            classes: vec![],
            globals: vec![],
            entry: FuncId(0),
        }
    }

    #[test]
    fn accepts_simple_function() {
        let p = prog_with(vec![Instr::IConst(1), Instr::Return], true, 0);
        verify(&p).unwrap();
    }

    #[test]
    fn rejects_underflow() {
        let p = prog_with(vec![Instr::IAdd, Instr::ReturnVoid], false, 0);
        assert!(matches!(verify(&p), Err(VmError::Verify { .. })));
    }

    #[test]
    fn rejects_fall_off_end() {
        let p = prog_with(vec![Instr::IConst(1), Instr::Pop], false, 0);
        assert!(matches!(verify(&p), Err(VmError::Verify { .. })));
    }

    #[test]
    fn rejects_inconsistent_merge() {
        // if TOS: push 1; fallthrough path pushes nothing -> merge mismatch
        let code = vec![
            Instr::IConst(0),       // 0
            Instr::If(Cond::Eq, 3), // 1 -> 3 with depth 0
            Instr::IConst(5),       // 2: depth 1 falls into 3
            Instr::ReturnVoid,      // 3
        ];
        let p = prog_with(code, false, 0);
        assert!(matches!(verify(&p), Err(VmError::Verify { .. })));
    }

    #[test]
    fn rejects_bad_branch_target() {
        let p = prog_with(vec![Instr::Goto(17)], false, 0);
        assert!(matches!(verify(&p), Err(VmError::BadBranchTarget { .. })));
    }

    #[test]
    fn rejects_bad_local() {
        let p = prog_with(vec![Instr::Load(Local(4)), Instr::Return], true, 2);
        assert!(matches!(verify(&p), Err(VmError::BadLocal(4))));
    }

    #[test]
    fn rejects_return_mismatch() {
        let p = prog_with(vec![Instr::ReturnVoid], true, 0);
        assert!(matches!(verify(&p), Err(VmError::ReturnMismatch(0))));
    }

    #[test]
    fn rejects_empty_body() {
        let p = prog_with(vec![], false, 0);
        assert!(matches!(verify(&p), Err(VmError::Verify { .. })));
    }

    // ---- kind verification ----

    #[test]
    fn kinds_accept_int_arithmetic() {
        let code = vec![
            Instr::IConst(2),
            Instr::IConst(3),
            Instr::IAdd,
            Instr::Store(Local(0)),
            Instr::Load(Local(0)),
            Instr::Return,
        ];
        let p = prog_with(code, true, 1);
        verify_kinds(&p).unwrap();
    }

    #[test]
    fn kinds_reject_float_into_int_op() {
        let code = vec![
            Instr::IConst(1),
            Instr::FConst(1.5),
            Instr::IAdd,
            Instr::Return,
        ];
        let p = prog_with(code, true, 0);
        let err = verify_kinds(&p).unwrap_err();
        assert!(
            matches!(
                err,
                VmError::KindMismatch {
                    at: 2,
                    expected: "int",
                    found: "float",
                    ..
                }
            ),
            "unexpected error: {err:?}"
        );
    }

    #[test]
    fn kinds_reject_null_into_float_op() {
        let code = vec![
            Instr::NullConst,
            Instr::FConst(0.5),
            Instr::FMul,
            Instr::Pop,
            Instr::ReturnVoid,
        ];
        let p = prog_with(code, false, 0);
        assert!(matches!(
            verify_kinds(&p),
            Err(VmError::KindMismatch { at: 2, .. })
        ));
    }

    #[test]
    fn kinds_reject_iinc_of_float_local() {
        let code = vec![
            Instr::FConst(1.0),
            Instr::Store(Local(0)),
            Instr::IInc(Local(0), 1),
            Instr::ReturnVoid,
        ];
        let p = prog_with(code, false, 1);
        assert!(matches!(
            verify_kinds(&p),
            Err(VmError::KindMismatch { at: 2, .. })
        ));
    }

    #[test]
    fn kinds_accept_any_from_params_and_calls() {
        // params and call results have unknown kind: both int and
        // float uses of them must pass.
        let callee = Function {
            name: "callee".into(),
            n_params: 0,
            n_locals: 0,
            returns: true,
            code: vec![Instr::IConst(7), Instr::Return],
        };
        let caller = Function {
            name: "caller".into(),
            n_params: 1,
            n_locals: 1,
            returns: true,
            code: vec![
                Instr::Load(Local(0)),
                Instr::FSqrt, // param used as float
                Instr::Pop,
                Instr::Call(FuncId(0)),
                Instr::IConst(1),
                Instr::IAdd, // call result used as int
                Instr::Return,
            ],
        };
        let p = Program {
            functions: vec![callee, caller],
            classes: vec![],
            globals: vec![],
            entry: FuncId(0),
        };
        verify_kinds(&p).unwrap();
    }

    #[test]
    fn kinds_join_null_with_ref_is_ref() {
        // one path stores null, the other a fresh array; the merged
        // value must still be usable as an array reference.
        let code = vec![
            Instr::IConst(0),               // 0
            Instr::If(Cond::Eq, 5),         // 1
            Instr::NullConst,               // 2
            Instr::Store(Local(0)),         // 3
            Instr::Goto(8),                 // 4
            Instr::IConst(4),               // 5
            Instr::NewArray(ElemKind::Int), // 6
            Instr::Store(Local(0)),         // 7
            Instr::Load(Local(0)),          // 8
            Instr::ArrayLen,                // 9
            Instr::Return,                  // 10
        ];
        let p = prog_with(code, true, 1);
        verify_kinds(&p).unwrap();
    }

    #[test]
    fn kinds_reject_wrong_putstatic() {
        let mut p = prog_with(
            vec![
                Instr::FConst(2.0),
                Instr::PutStatic(crate::isa::GlobalId(0)),
                Instr::ReturnVoid,
            ],
            false,
            0,
        );
        p.globals = vec![ElemKind::Int];
        assert!(matches!(
            verify_kinds(&p),
            Err(VmError::KindMismatch { at: 1, .. })
        ));
    }

    #[test]
    fn kinds_getstatic_pushes_declared_kind() {
        let mut p = prog_with(
            vec![
                Instr::GetStatic(crate::isa::GlobalId(0)),
                Instr::IConst(1),
                Instr::IAdd, // float global into int add: definite mismatch
                Instr::Return,
            ],
            true,
            0,
        );
        p.globals = vec![ElemKind::Float];
        assert!(matches!(
            verify_kinds(&p),
            Err(VmError::KindMismatch { at: 2, .. })
        ));
    }

    #[test]
    fn kinds_mismatched_paths_join_to_any() {
        // local holds int on one path, float on the other: a later int
        // use is only *possibly* wrong, so the checker must accept it.
        let code = vec![
            Instr::IConst(0),       // 0
            Instr::If(Cond::Eq, 5), // 1
            Instr::IConst(1),       // 2
            Instr::Store(Local(0)), // 3
            Instr::Goto(7),         // 4
            Instr::FConst(1.0),     // 5
            Instr::Store(Local(0)), // 6
            Instr::Load(Local(0)),  // 7
            Instr::IConst(1),       // 8
            Instr::IAdd,            // 9
            Instr::Return,          // 10
        ];
        let p = prog_with(code, true, 1);
        verify_kinds(&p).unwrap();
    }
}
