//! Bytecode verifier.
//!
//! A lightweight abstract interpretation over operand-stack *depth*:
//! every instruction must see a consistent depth on all paths reaching
//! it, no pop may underflow, branch targets must be in range, and
//! control may not fall off the end of a function. This catches almost
//! every builder and rewriter bug at program-construction time instead
//! of as a confusing runtime error mid-benchmark. Value *kinds* remain
//! dynamically checked by the interpreter.

use crate::error::VmError;
use crate::isa::Instr;
use crate::program::{Function, Program};

/// Verifies every function in the program.
///
/// # Errors
///
/// [`VmError::Verify`], [`VmError::BadBranchTarget`], [`VmError::BadLocal`],
/// [`VmError::UnknownFunction`] / [`VmError::UnknownClass`] /
/// [`VmError::UnknownGlobal`] for dangling ids, or
/// [`VmError::ReturnMismatch`].
pub fn verify(program: &Program) -> Result<(), VmError> {
    for (fid, f) in program.functions.iter().enumerate() {
        verify_function(program, fid as u16, f)?;
    }
    program.function(program.entry)?;
    Ok(())
}

/// The stack effect of `instr`: `(pops, pushes)`.
///
/// Needs the program for `Call` (arity) and to validate class/global
/// ids.
///
/// # Errors
///
/// Dangling function/class/global ids.
pub fn stack_effect(program: &Program, instr: &Instr) -> Result<(u32, u32), VmError> {
    use Instr::*;
    Ok(match instr {
        IConst(_) | FConst(_) | NullConst | Load(_) => (0, 1),
        Store(_) | Pop => (1, 0),
        IInc(..) => (0, 0),
        Dup => (1, 2),
        Swap => (2, 2),
        IAdd | ISub | IMul | IDiv | IRem | IAnd | IOr | IXor | IShl | IShr | IUShr | IMin
        | IMax | ICmp | FAdd | FSub | FMul | FDiv | FMin | FMax => (2, 1),
        INeg | FNeg | FAbs | FSqrt | FSin | FCos | FExp | FLog | I2F | F2I => (1, 1),
        Goto(_) => (0, 0),
        If(..) => (1, 0),
        IfICmp(..) | IfFCmp(..) => (2, 0),
        NewArray(_) => (1, 1),
        ALoad => (2, 1),
        AStore => (3, 0),
        ArrayLen => (1, 1),
        NewObject(c) => {
            program.class(*c)?;
            (0, 1)
        }
        GetField(_) => (1, 1),
        PutField(_) => (2, 0),
        GetStatic(g) => {
            check_global(program, g.0)?;
            (0, 1)
        }
        PutStatic(g) => {
            check_global(program, g.0)?;
            (1, 0)
        }
        Call(fid) => {
            let callee = program.function(*fid)?;
            (
                u32::from(callee.n_params),
                if callee.returns { 1 } else { 0 },
            )
        }
        Return => (1, 0),
        ReturnVoid | Halt => (0, 0),
        SLoop(..) | Eoi(_) | ELoop(..) | Lwl(_) | Swl(_) | ReadStats(_) => (0, 0),
    })
}

fn check_global(program: &Program, idx: u16) -> Result<(), VmError> {
    if usize::from(idx) < program.globals.len() {
        Ok(())
    } else {
        Err(VmError::UnknownGlobal(idx))
    }
}

fn verify_function(program: &Program, fid: u16, f: &Function) -> Result<(), VmError> {
    let n = f.code.len();
    if n == 0 {
        return Err(VmError::Verify {
            func: fid,
            at: 0,
            reason: "empty function body".into(),
        });
    }

    // per-pc stack depth, None = unseen
    let mut depth: Vec<Option<u32>> = vec![None; n];
    let mut work: Vec<u32> = vec![0];
    depth[0] = Some(0);

    while let Some(pc) = work.pop() {
        let instr = &f.code[pc as usize];
        let d = depth[pc as usize].expect("work items always have a depth");

        // local slot bounds
        if let Instr::Load(l) | Instr::Store(l) | Instr::IInc(l, _) = instr {
            if l.0 >= f.n_locals {
                return Err(VmError::BadLocal(l.0));
            }
        }
        // return arity
        match instr {
            Instr::Return if !f.returns => return Err(VmError::ReturnMismatch(fid)),
            Instr::ReturnVoid if f.returns => return Err(VmError::ReturnMismatch(fid)),
            _ => {}
        }

        let (pops, pushes) = stack_effect(program, instr)?;
        if d < pops {
            return Err(VmError::Verify {
                func: fid,
                at: pc,
                reason: format!("stack underflow: depth {d}, instruction pops {pops}"),
            });
        }
        let d_after = d - pops + pushes;

        let mut successors: [Option<u32>; 2] = [None, None];
        if let Some(t) = instr.branch_target() {
            if t as usize >= n {
                return Err(VmError::BadBranchTarget {
                    func: fid,
                    at: pc,
                    target: t,
                });
            }
            successors[0] = Some(t);
        }
        if instr.falls_through() {
            let next = pc + 1;
            if next as usize >= n {
                return Err(VmError::Verify {
                    func: fid,
                    at: pc,
                    reason: "control falls off the end of the function".into(),
                });
            }
            successors[1] = Some(next);
        }

        for succ in successors.into_iter().flatten() {
            match depth[succ as usize] {
                None => {
                    depth[succ as usize] = Some(d_after);
                    work.push(succ);
                }
                Some(existing) if existing != d_after => {
                    return Err(VmError::Verify {
                        func: fid,
                        at: succ,
                        reason: format!(
                            "inconsistent stack depth: {existing} vs {d_after} on merge"
                        ),
                    });
                }
                Some(_) => {}
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Cond, FuncId, Local};

    fn prog_with(code: Vec<Instr>, returns: bool, n_locals: u16) -> Program {
        Program {
            functions: vec![Function {
                name: "f".into(),
                n_params: 0,
                n_locals,
                returns,
                code,
            }],
            classes: vec![],
            globals: vec![],
            entry: FuncId(0),
        }
    }

    #[test]
    fn accepts_simple_function() {
        let p = prog_with(vec![Instr::IConst(1), Instr::Return], true, 0);
        verify(&p).unwrap();
    }

    #[test]
    fn rejects_underflow() {
        let p = prog_with(vec![Instr::IAdd, Instr::ReturnVoid], false, 0);
        assert!(matches!(verify(&p), Err(VmError::Verify { .. })));
    }

    #[test]
    fn rejects_fall_off_end() {
        let p = prog_with(vec![Instr::IConst(1), Instr::Pop], false, 0);
        assert!(matches!(verify(&p), Err(VmError::Verify { .. })));
    }

    #[test]
    fn rejects_inconsistent_merge() {
        // if TOS: push 1; fallthrough path pushes nothing -> merge mismatch
        let code = vec![
            Instr::IConst(0),               // 0
            Instr::If(Cond::Eq, 3),         // 1 -> 3 with depth 0
            Instr::IConst(5),               // 2: depth 1 falls into 3
            Instr::ReturnVoid,              // 3
        ];
        let p = prog_with(code, false, 0);
        assert!(matches!(verify(&p), Err(VmError::Verify { .. })));
    }

    #[test]
    fn rejects_bad_branch_target() {
        let p = prog_with(vec![Instr::Goto(17)], false, 0);
        assert!(matches!(verify(&p), Err(VmError::BadBranchTarget { .. })));
    }

    #[test]
    fn rejects_bad_local() {
        let p = prog_with(vec![Instr::Load(Local(4)), Instr::Return], true, 2);
        assert!(matches!(verify(&p), Err(VmError::BadLocal(4))));
    }

    #[test]
    fn rejects_return_mismatch() {
        let p = prog_with(vec![Instr::ReturnVoid], true, 0);
        assert!(matches!(verify(&p), Err(VmError::ReturnMismatch(0))));
    }

    #[test]
    fn rejects_empty_body() {
        let p = prog_with(vec![], false, 0);
        assert!(matches!(verify(&p), Err(VmError::Verify { .. })));
    }
}
