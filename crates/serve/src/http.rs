//! A hand-rolled minimal HTTP/1.0 responder for the scrape endpoints
//! — no dependencies, in the spirit of the raw-mmap recording loader.
//!
//! One acceptor thread serves three read-only routes:
//!
//! * `GET /metrics` — Prometheus-style text exposition of the live
//!   registry ([`obs::expo::prometheus`]).
//! * `GET /healthz` — JSON liveness: per-shard `alive` flag and
//!   request totals, queue depth and high-water.
//! * `GET /traces` — the tail sampler's currently retained request
//!   traces as JSON.
//!
//! The responder is deliberately boring: it reads one request (8 KiB
//! cap, 2 s timeout), answers with `Connection: close`, and never
//! keeps a connection alive. Shutdown sets a flag and self-connects
//! to unblock `accept`.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use obs::json::quote;
use obs::{expo, Registry, TailSampler};

/// Shared read-only state the endpoint threads serve from.
pub(crate) struct HttpState {
    /// The server's live counter registry.
    pub(crate) registry: Arc<Registry>,
    /// The server's tail sampler.
    pub(crate) sampler: Arc<TailSampler>,
    /// Worker (shard) count, for `/healthz`.
    pub(crate) workers: usize,
}

/// A running scrape endpoint. Dropping it (or calling
/// [`HttpEndpoint::stop`]) shuts the acceptor down.
pub struct HttpEndpoint {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl HttpEndpoint {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the acceptor and joins its thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // self-connect to unblock the blocking accept
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for HttpEndpoint {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for HttpEndpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HttpEndpoint")
            .field("addr", &self.addr)
            .finish()
    }
}

/// Binds `addr` and spawns the acceptor thread.
pub(crate) fn serve(addr: impl ToSocketAddrs, state: HttpState) -> std::io::Result<HttpEndpoint> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let handle = std::thread::spawn(move || {
        for conn in listener.incoming() {
            if stop_flag.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = conn else { continue };
            // serve inline: the routes are cheap reads and the
            // endpoint is for scrapers, not traffic
            let _ = answer(stream, &state);
        }
    });
    Ok(HttpEndpoint {
        addr,
        stop,
        handle: Some(handle),
    })
}

/// Reads one request head and answers it.
fn answer(mut stream: TcpStream, state: &HttpState) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let mut head = Vec::with_capacity(512);
    let mut buf = [0u8; 512];
    loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            break;
        }
        head.extend_from_slice(&buf[..n]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > 8192 {
            break;
        }
    }
    let request_line = head
        .split(|&b| b == b'\r' || b == b'\n')
        .next()
        .unwrap_or(&[]);
    let request_line = String::from_utf8_lossy(request_line);
    let mut parts = request_line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    if method != "GET" {
        return respond(&mut stream, 405, "text/plain", "method not allowed\n");
    }
    match path {
        "/metrics" => {
            let body = expo::prometheus(&state.registry.snapshot());
            respond(&mut stream, 200, "text/plain; version=0.0.4", &body)
        }
        "/healthz" => {
            let body = healthz_json(state);
            respond(&mut stream, 200, "application/json", &body)
        }
        "/traces" => respond(
            &mut stream,
            200,
            "application/json",
            &state.sampler.traces_json(),
        ),
        _ => respond(&mut stream, 404, "text/plain", "not found\n"),
    }
}

/// Per-shard liveness and queue state as a JSON document.
pub(crate) fn healthz_json(state: &HttpState) -> String {
    let snap = state.registry.snapshot();
    let mut all_alive = true;
    let mut workers = String::from("[");
    for i in 0..state.workers {
        if i > 0 {
            workers.push_str(", ");
        }
        let alive = snap.gauges.get(&format!("serve.worker.{i}.alive")).copied() == Some(1);
        all_alive &= alive;
        workers.push_str(&format!(
            "{{\"worker\": {i}, \"alive\": {alive}, \"requests\": {}, \"panics\": {}}}",
            snap.counter(&format!("serve.worker.{i}.requests")),
            snap.counter(&format!("serve.worker.{i}.panics")),
        ));
    }
    workers.push(']');
    let depth = snap.gauges.get("serve.queue.depth").copied().unwrap_or(0);
    let status = if all_alive { "ok" } else { "degraded" };
    format!(
        "{{\"status\": {}, \"workers\": {workers}, \"queue_depth\": {depth}, \
         \"queue_high_water\": {}}}",
        quote(status),
        snap.counter("serve.queue.high_water")
    )
}

fn respond(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Error",
    };
    let head = format!(
        "HTTP/1.0 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}
