//! Profiling as a service: a bounded job queue over a pool of worker
//! threads, each running the same deterministic Jrpm pipeline the
//! batch path runs.
//!
//! The TEST premise is that profiling is cheap enough to run on live
//! programs; this crate treats "profile this program" as a *request*.
//! A [`Server`] owns N workers (shards); each request is claimed by
//! exactly one worker, which runs it to completion and answers on the
//! request's private reply channel — so analysis state is never shared
//! across shards and every response is bit-identical to the
//! single-tenant batch run of the same input (pinned suite-wide by
//! `tests/equivalence.rs`).
//!
//! Three request shapes cover the record-once/replay-many machinery:
//!
//! * [`ProfileRequest::Pipeline`] / [`ProfileRequest::Tiered`] — full
//!   pipeline on a program, offline or tier-scheduled.
//! * [`ProfileRequest::Replay`] — an in-memory [`Recording`] through a
//!   fresh TEST tracer.
//! * [`ProfileRequest::ReplayMapped`] — a recording *file*, mmapped
//!   and streamed as borrowed batches through one reusable buffer
//!   (zero-copy: no `Vec<Event>` is ever materialized).
//!
//! Failure is typed end to end: a malformed recording, a VM error, or
//! even a panicking request produces a [`ServeError`] on that
//! request's ticket — never a dead server loop. Per-worker counters
//! (`serve.worker.<i>.*`) live in an [`obs::Registry`]; an optional
//! [`obs::Trace`] adds a `serve:worker:<i>` track with one span per
//! request.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::mpsc::{sync_channel, Receiver, Sender, SyncSender};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use jrpm::pipeline::{run_pipeline, PipelineConfig, PipelineReport};
use jrpm::tier::{run_tiered, TierConfig, TierReport};
use obs::{Registry, Trace};
use test_tracer::config::TracerConfig;
use test_tracer::stats::Profile;
use test_tracer::tracer::TestTracer;
use tvm::bus::DEFAULT_BATCH_CAPACITY;
use tvm::record::{MappedRecording, Recording, RecordingError};
use tvm::{Program, VmError};

/// One profiling request.
#[derive(Debug)]
pub enum ProfileRequest {
    /// Run the full batch pipeline on `program`.
    Pipeline {
        /// The annotated-STL program to profile.
        program: Program,
        /// Pipeline configuration (tracer, TLS, bus, obs, rescue).
        cfg: PipelineConfig,
    },
    /// Run the pipeline under the online tier controller.
    Tiered {
        /// The annotated-STL program to profile.
        program: Program,
        /// Pipeline configuration.
        cfg: PipelineConfig,
        /// Tier-controller schedule and thresholds.
        tier: TierConfig,
    },
    /// Replay an in-memory recording through a fresh TEST tracer.
    Replay {
        /// The recorded event stream.
        recording: Recording,
        /// Tracer hardware configuration.
        tracer: TracerConfig,
    },
    /// Mmap the recording file at `path` and stream it through a fresh
    /// TEST tracer as borrowed batches — the zero-copy hot path.
    ReplayMapped {
        /// Path to a [`Recording::save`]d file.
        path: PathBuf,
        /// Tracer hardware configuration.
        tracer: TracerConfig,
        /// Events per streamed batch (0 is promoted to 1).
        batch_capacity: usize,
    },
}

impl ProfileRequest {
    /// Short kind label used for spans and diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            ProfileRequest::Pipeline { .. } => "pipeline",
            ProfileRequest::Tiered { .. } => "tiered",
            ProfileRequest::Replay { .. } => "replay",
            ProfileRequest::ReplayMapped { .. } => "replay_mapped",
        }
    }
}

/// The answer to one [`ProfileRequest`].
#[derive(Debug)]
pub enum ProfileResponse {
    /// Batch pipeline output.
    Pipeline(Box<PipelineReport>),
    /// Tier-scheduled pipeline output.
    Tiered {
        /// The ordinary pipeline report.
        report: Box<PipelineReport>,
        /// Tier-controller history.
        tiers: TierReport,
    },
    /// Tracer profile of a replayed recording.
    Profile {
        /// Everything the tracer collected.
        profile: Box<Profile>,
        /// Events replayed into the tracer.
        events: u64,
    },
}

impl ProfileResponse {
    /// The pipeline report, for pipeline/tiered responses.
    pub fn report(&self) -> Option<&PipelineReport> {
        match self {
            ProfileResponse::Pipeline(r) => Some(r),
            ProfileResponse::Tiered { report, .. } => Some(report),
            ProfileResponse::Profile { .. } => None,
        }
    }

    /// The tracer profile carried by any response shape.
    pub fn profile(&self) -> &Profile {
        match self {
            ProfileResponse::Pipeline(r) => &r.profile,
            ProfileResponse::Tiered { report, .. } => &report.profile,
            ProfileResponse::Profile { profile, .. } => profile,
        }
    }
}

/// Typed failure of one request (or of the queue itself). One bad
/// request answers with an error on its own ticket; it never takes
/// down the server loop.
#[derive(Debug)]
pub enum ServeError {
    /// The server has shut down (or is shutting down); the request was
    /// not enqueued.
    QueueClosed,
    /// The worker processing this request panicked. The panic was
    /// contained; the worker kept serving.
    WorkerPanicked(String),
    /// The request's reply channel closed without an answer.
    NoResponse,
    /// VM failure while executing the request's program.
    Vm(VmError),
    /// Malformed, truncated, or unreadable recording.
    Recording(RecordingError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::QueueClosed => write!(f, "server queue is closed"),
            ServeError::WorkerPanicked(d) => write!(f, "worker panicked serving request: {d}"),
            ServeError::NoResponse => write!(f, "reply channel closed without an answer"),
            ServeError::Vm(e) => write!(f, "vm error: {e}"),
            ServeError::Recording(e) => write!(f, "recording error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<VmError> for ServeError {
    fn from(e: VmError) -> ServeError {
        ServeError::Vm(e)
    }
}

impl From<RecordingError> for ServeError {
    fn from(e: RecordingError) -> ServeError {
        ServeError::Recording(e)
    }
}

/// Server sizing and observability knobs.
#[derive(Clone)]
pub struct ServerConfig {
    /// Worker (shard) count. 0 is promoted to 1.
    pub workers: usize,
    /// Bound of the shared job queue; submitters block (back-pressure)
    /// when it is full. 0 is promoted to 1.
    pub queue_depth: usize,
    /// Optional span trace: each worker becomes a `serve:worker:<i>`
    /// track carrying one span per request.
    pub trace: Option<Arc<Trace>>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: std::thread::available_parallelism().map_or(2, |n| n.get()),
            queue_depth: 64,
            trace: None,
        }
    }
}

impl std::fmt::Debug for ServerConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerConfig")
            .field("workers", &self.workers)
            .field("queue_depth", &self.queue_depth)
            .field("trace", &self.trace.is_some())
            .finish()
    }
}

struct Job {
    req: ProfileRequest,
    reply: Sender<Result<ProfileResponse, ServeError>>,
}

/// A pending response. [`Ticket::wait`] blocks until the worker
/// answers.
#[derive(Debug)]
pub struct Ticket {
    rx: Receiver<Result<ProfileResponse, ServeError>>,
}

impl Ticket {
    /// Blocks until the request completes.
    ///
    /// # Errors
    ///
    /// The request's own [`ServeError`], or [`ServeError::NoResponse`]
    /// if the worker died before answering.
    pub fn wait(self) -> Result<ProfileResponse, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::NoResponse))
    }
}

/// The profiling server: a bounded queue fanned across a worker pool.
pub struct Server {
    tx: Option<SyncSender<Job>>,
    workers: Vec<JoinHandle<()>>,
    registry: Arc<Registry>,
}

impl Server {
    /// Starts `cfg.workers` worker threads sharing one bounded queue.
    pub fn start(cfg: ServerConfig) -> Server {
        let workers = cfg.workers.max(1);
        let depth = cfg.queue_depth.max(1);
        let (tx, rx) = sync_channel::<Job>(depth);
        let rx = Arc::new(Mutex::new(rx));
        let registry = Arc::new(Registry::new());
        let handles = (0..workers)
            .map(|i| {
                let rx = Arc::clone(&rx);
                let registry = Arc::clone(&registry);
                let trace = cfg.trace.clone();
                std::thread::spawn(move || worker_loop(i, &rx, &registry, trace.as_deref()))
            })
            .collect();
        Server {
            tx: Some(tx),
            workers: handles,
            registry,
        }
    }

    /// Starts a server with the default configuration.
    pub fn start_default() -> Server {
        Server::start(ServerConfig::default())
    }

    /// Enqueues a request, blocking while the queue is full
    /// (back-pressure), and returns the ticket its answer arrives on.
    ///
    /// # Errors
    ///
    /// [`ServeError::QueueClosed`] once shutdown has begun.
    pub fn submit(&self, req: ProfileRequest) -> Result<Ticket, ServeError> {
        let tx = self.tx.as_ref().ok_or(ServeError::QueueClosed)?;
        let (reply, rx) = mpsc::channel();
        tx.send(Job { req, reply })
            .map_err(|_| ServeError::QueueClosed)?;
        Ok(Ticket { rx })
    }

    /// Submits and waits in one call.
    ///
    /// # Errors
    ///
    /// Queue closure, or the request's own failure.
    pub fn profile(&self, req: ProfileRequest) -> Result<ProfileResponse, ServeError> {
        self.submit(req)?.wait()
    }

    /// The per-worker counter registry (`serve.worker.<i>.requests`,
    /// `.events`, `.busy_nanos`, `.panics`, `.lagged_batches`,
    /// `.dropped_batches`).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Closes the queue, drains in-flight requests, and joins every
    /// worker. Returns the final counter registry.
    pub fn shutdown(mut self) -> Arc<Registry> {
        self.close_and_join();
        Arc::clone(&self.registry)
    }

    fn close_and_join(&mut self) {
        self.tx = None; // closes the queue; workers drain and exit
        for h in self.workers.drain(..) {
            // a worker that somehow died panicking has already answered
            // its requests with WorkerPanicked or dropped its reply
            // senders (tickets see NoResponse) — nothing to propagate
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.close_and_join();
    }
}

fn worker_loop(
    index: usize,
    rx: &Mutex<Receiver<Job>>,
    registry: &Registry,
    trace: Option<&Trace>,
) {
    let prefix = format!("serve.worker.{index}");
    let track = trace.map(|tr| tr.track(&format!("serve:worker:{index}")));
    loop {
        // hold the lock only while claiming the next job, so shards
        // drain the queue concurrently
        let job = {
            let guard = match rx.lock() {
                Ok(g) => g,
                // a panic inside `recv` cannot poison worker state —
                // the jobs themselves run outside the lock
                Err(poisoned) => poisoned.into_inner(),
            };
            guard.recv()
        };
        let Ok(job) = job else { break };
        let kind = job.req.kind();
        if let (Some(tr), Some(t)) = (trace, track) {
            tr.begin(t, kind);
        }
        let started = Instant::now();
        let result = catch_unwind(AssertUnwindSafe(|| handle(job.req)));
        let busy = started.elapsed().as_nanos() as u64;
        registry.counter(&format!("{prefix}.requests")).inc();
        registry.counter(&format!("{prefix}.busy_nanos")).add(busy);
        let result = match result {
            Ok(r) => r,
            Err(payload) => {
                registry.counter(&format!("{prefix}.panics")).inc();
                Err(ServeError::WorkerPanicked(panic_message(&payload)))
            }
        };
        if let Ok(resp) = &result {
            let (events, lagged, dropped) = response_counters(resp);
            registry.counter(&format!("{prefix}.events")).add(events);
            registry
                .counter(&format!("{prefix}.lagged_batches"))
                .add(lagged);
            registry
                .counter(&format!("{prefix}.dropped_batches"))
                .add(dropped);
        }
        if let (Some(tr), Some(t)) = (trace, track) {
            tr.end(t, kind);
        }
        // a dropped ticket just means nobody is waiting; keep serving
        let _ = job.reply.send(result);
    }
}

/// Events analyzed plus per-shard bus lag/drop totals of one response.
fn response_counters(resp: &ProfileResponse) -> (u64, u64, u64) {
    match resp {
        ProfileResponse::Pipeline(r) | ProfileResponse::Tiered { report: r, .. } => {
            let (mut lagged, mut dropped) = (0, 0);
            for s in &r.obs.bus.sinks {
                lagged += s.lagged_batches;
                dropped += s.dropped_batches;
            }
            (r.profile.events, lagged, dropped)
        }
        ProfileResponse::Profile { profile, .. } => (profile.events, 0, 0),
    }
}

fn handle(req: ProfileRequest) -> Result<ProfileResponse, ServeError> {
    match req {
        ProfileRequest::Pipeline { program, cfg } => {
            let report = run_pipeline(&program, &cfg)?;
            Ok(ProfileResponse::Pipeline(Box::new(report)))
        }
        ProfileRequest::Tiered { program, cfg, tier } => {
            let outcome = run_tiered(&program, &cfg, &tier)?;
            Ok(ProfileResponse::Tiered {
                report: Box::new(outcome.report),
                tiers: outcome.tiers,
            })
        }
        ProfileRequest::Replay { recording, tracer } => {
            let mut t = TestTracer::new(tracer);
            recording.replay(&mut t);
            let events = recording.len() as u64;
            Ok(ProfileResponse::Profile {
                profile: Box::new(t.into_profile()),
                events,
            })
        }
        ProfileRequest::ReplayMapped {
            path,
            tracer,
            batch_capacity,
        } => {
            let mapped = MappedRecording::open(&path)?;
            let view = mapped.view()?;
            let mut t = TestTracer::new(tracer);
            let events = view.stream_batches(batch_capacity.max(1), |batch| {
                use tvm::trace::TraceSink;
                t.consume_batch(batch);
            })?;
            Ok(ProfileResponse::Profile {
                profile: Box::new(t.into_profile()),
                events,
            })
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Convenience: the default zero-copy batch capacity for
/// [`ProfileRequest::ReplayMapped`].
pub const DEFAULT_REPLAY_BATCH: usize = DEFAULT_BATCH_CAPACITY;

// Everything that crosses the queue or the reply channels must be
// Send; these assertions pin the pipeline entry points as Send-clean
// at compile time (the tentpole's `jrpm` requirement).
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<ProfileRequest>();
    assert_send::<ProfileResponse>();
    assert_send::<ServeError>();
    assert_send::<Ticket>();
    assert_send::<PipelineReport>();
    assert_send::<Program>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use tvm::{ElemKind, ProgramBuilder};

    fn sample_program() -> Program {
        let mut b = ProgramBuilder::new();
        let main = b.function("main", 0, false, |f| {
            let (a, i) = (f.local(), f.local());
            f.ci(16).newarray(ElemKind::Int).st(a);
            f.for_in(i, 0.into(), 16.into(), |f| {
                f.arr_set(
                    a,
                    |f| {
                        f.ld(i);
                    },
                    |f| {
                        f.ld(i);
                    },
                );
            });
            f.ret_void();
        });
        b.finish(main).expect("sample program builds")
    }

    #[test]
    fn pipeline_request_round_trips() {
        let server = Server::start(ServerConfig {
            workers: 2,
            queue_depth: 4,
            trace: None,
        });
        let resp = server
            .profile(ProfileRequest::Pipeline {
                program: sample_program(),
                cfg: PipelineConfig::default(),
            })
            .expect("pipeline request succeeds");
        let direct = run_pipeline(&sample_program(), &PipelineConfig::default()).unwrap();
        let report = resp.report().expect("pipeline response has a report");
        assert_eq!(report.seq_cycles, direct.seq_cycles);
        assert_eq!(report.profile, direct.profile);
        let registry = server.shutdown();
        let snap = registry.snapshot();
        let total: u64 = (0..2)
            .map(|i| snap.counter(&format!("serve.worker.{i}.requests")))
            .sum();
        assert_eq!(total, 1);
    }

    #[test]
    fn submit_after_shutdown_is_a_typed_error() {
        let mut server = Server::start(ServerConfig {
            workers: 1,
            queue_depth: 1,
            trace: None,
        });
        server.tx = None; // simulate shutdown-in-progress
        let err = server
            .submit(ProfileRequest::Pipeline {
                program: sample_program(),
                cfg: PipelineConfig::default(),
            })
            .expect_err("closed queue rejects");
        assert!(matches!(err, ServeError::QueueClosed));
    }

    #[test]
    fn missing_recording_file_is_a_typed_error() {
        let server = Server::start(ServerConfig {
            workers: 1,
            queue_depth: 1,
            trace: None,
        });
        let err = server
            .profile(ProfileRequest::ReplayMapped {
                path: PathBuf::from("/nonexistent/recording.tvmr"),
                tracer: TracerConfig::default(),
                batch_capacity: DEFAULT_REPLAY_BATCH,
            })
            .expect_err("missing file is an error, not a panic");
        assert!(matches!(err, ServeError::Recording(RecordingError::Io(_))));
    }

    #[test]
    fn panicking_request_is_contained_and_server_keeps_serving() {
        let server = Server::start(ServerConfig {
            workers: 1,
            queue_depth: 2,
            trace: None,
        });
        // a tracer table size that is not a power of two makes
        // TestTracer::new panic — a genuinely panicking request
        let bad = TracerConfig {
            ld_table_entries: 3,
            ..TracerConfig::default()
        };
        let err = server
            .profile(ProfileRequest::Replay {
                recording: Recording { events: Vec::new() },
                tracer: bad,
            })
            .expect_err("panicking request answers with a typed error");
        assert!(matches!(err, ServeError::WorkerPanicked(_)), "{err:?}");
        // the single worker survived and answers the next request
        let resp = server.profile(ProfileRequest::Replay {
            recording: Recording { events: Vec::new() },
            tracer: TracerConfig::default(),
        });
        match resp.expect("empty replay succeeds after the panic") {
            ProfileResponse::Profile { events, .. } => assert_eq!(events, 0),
            other => panic!("unexpected response: {other:?}"),
        }
        let snap = server.shutdown().snapshot();
        assert_eq!(snap.counter("serve.worker.0.panics"), 1);
        assert_eq!(snap.counter("serve.worker.0.requests"), 2);
    }
}
