//! Profiling as a service: a bounded job queue over a pool of worker
//! threads, each running the same deterministic Jrpm pipeline the
//! batch path runs.
//!
//! The TEST premise is that profiling is cheap enough to run on live
//! programs; this crate treats "profile this program" as a *request*.
//! A [`Server`] owns N workers (shards); each request is claimed by
//! exactly one worker, which runs it to completion and answers on the
//! request's private reply channel — so analysis state is never shared
//! across shards and every response is bit-identical to the
//! single-tenant batch run of the same input (pinned suite-wide by
//! `tests/equivalence.rs`).
//!
//! Three request shapes cover the record-once/replay-many machinery:
//!
//! * [`ProfileRequest::Pipeline`] / [`ProfileRequest::Tiered`] — full
//!   pipeline on a program, offline or tier-scheduled.
//! * [`ProfileRequest::Replay`] — an in-memory [`Recording`] through a
//!   fresh TEST tracer.
//! * [`ProfileRequest::ReplayMapped`] — a recording *file*, mmapped
//!   and streamed as borrowed batches through one reusable buffer
//!   (zero-copy: no `Vec<Event>` is ever materialized).
//!
//! Failure is typed end to end: a malformed recording, a VM error, or
//! even a panicking request produces a [`ServeError`] on that
//! request's ticket — never a dead server loop. Per-worker counters
//! (`serve.worker.<i>.*`) live in an [`obs::Registry`]; an optional
//! [`obs::Trace`] adds a `serve:worker:<i>` track with one span per
//! request.
//!
//! Live telemetry rides on every request:
//!
//! * each worker owns a fixed-capacity [`obs::FlightRing`] of recent
//!   structured events (request begin/end, batches consumed, queue
//!   depth); when a request panics the worker drains its own ring into
//!   an [`obs::FlightDump`] attached to the
//!   [`ServeError::WorkerPanicked`] answer (and written to
//!   [`ServerConfig::dump_dir`] when set);
//! * every request id flows through [`Ticket::id`], its latency lands
//!   in a per-kind `serve.request.<kind>.latency_nanos` histogram, and
//!   a shared [`obs::TailSampler`] retains full stage traces only for
//!   errored or tail-latency requests;
//! * [`Server::serve_http`] exposes `/metrics` (Prometheus text),
//!   `/healthz`, and `/traces` over a hand-rolled HTTP/1.0 responder.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, Sender, SyncSender};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use jrpm::pipeline::{run_pipeline, PipelineConfig, PipelineReport};
use jrpm::tier::{run_tiered, TierConfig, TierReport};
use obs::live;
use obs::{FlightDump, FlightRing, LiveEventKind, Registry, TailConfig, TailSampler, Trace};
use test_tracer::config::TracerConfig;
use test_tracer::stats::Profile;
use test_tracer::tracer::TestTracer;
use tvm::bus::DEFAULT_BATCH_CAPACITY;
use tvm::record::{MappedRecording, Recording, RecordingError};
use tvm::{Program, VmError};

mod http;

pub use http::HttpEndpoint;

/// One profiling request.
#[derive(Debug)]
pub enum ProfileRequest {
    /// Run the full batch pipeline on `program`.
    Pipeline {
        /// The annotated-STL program to profile.
        program: Program,
        /// Pipeline configuration (tracer, TLS, bus, obs, rescue).
        cfg: PipelineConfig,
    },
    /// Run the pipeline under the online tier controller.
    Tiered {
        /// The annotated-STL program to profile.
        program: Program,
        /// Pipeline configuration.
        cfg: PipelineConfig,
        /// Tier-controller schedule and thresholds.
        tier: TierConfig,
    },
    /// Replay an in-memory recording through a fresh TEST tracer.
    Replay {
        /// The recorded event stream.
        recording: Recording,
        /// Tracer hardware configuration.
        tracer: TracerConfig,
    },
    /// Mmap the recording file at `path` and stream it through a fresh
    /// TEST tracer as borrowed batches — the zero-copy hot path.
    ReplayMapped {
        /// Path to a [`Recording::save`]d file.
        path: PathBuf,
        /// Tracer hardware configuration.
        tracer: TracerConfig,
        /// Events per streamed batch (0 is promoted to 1).
        batch_capacity: usize,
    },
}

impl ProfileRequest {
    /// Short kind label used for spans and diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            ProfileRequest::Pipeline { .. } => "pipeline",
            ProfileRequest::Tiered { .. } => "tiered",
            ProfileRequest::Replay { .. } => "replay",
            ProfileRequest::ReplayMapped { .. } => "replay_mapped",
        }
    }

    /// Numeric kind code carried in flight-recorder event payloads.
    pub fn kind_code(&self) -> u64 {
        match self {
            ProfileRequest::Pipeline { .. } => 1,
            ProfileRequest::Tiered { .. } => 2,
            ProfileRequest::Replay { .. } => 3,
            ProfileRequest::ReplayMapped { .. } => 4,
        }
    }
}

/// The answer to one [`ProfileRequest`].
#[derive(Debug)]
pub enum ProfileResponse {
    /// Batch pipeline output.
    Pipeline(Box<PipelineReport>),
    /// Tier-scheduled pipeline output.
    Tiered {
        /// The ordinary pipeline report.
        report: Box<PipelineReport>,
        /// Tier-controller history.
        tiers: TierReport,
    },
    /// Tracer profile of a replayed recording.
    Profile {
        /// Everything the tracer collected.
        profile: Box<Profile>,
        /// Events replayed into the tracer.
        events: u64,
    },
}

impl ProfileResponse {
    /// The pipeline report, for pipeline/tiered responses.
    pub fn report(&self) -> Option<&PipelineReport> {
        match self {
            ProfileResponse::Pipeline(r) => Some(r),
            ProfileResponse::Tiered { report, .. } => Some(report),
            ProfileResponse::Profile { .. } => None,
        }
    }

    /// The tracer profile carried by any response shape.
    pub fn profile(&self) -> &Profile {
        match self {
            ProfileResponse::Pipeline(r) => &r.profile,
            ProfileResponse::Tiered { report, .. } => &report.profile,
            ProfileResponse::Profile { profile, .. } => profile,
        }
    }
}

/// Typed failure of one request (or of the queue itself). One bad
/// request answers with an error on its own ticket; it never takes
/// down the server loop.
#[derive(Debug)]
pub enum ServeError {
    /// The server has shut down (or is shutting down); the request was
    /// not enqueued.
    QueueClosed,
    /// The worker processing this request panicked. The panic was
    /// contained; the worker kept serving.
    WorkerPanicked {
        /// The panic payload, stringified.
        message: String,
        /// The panicking worker's flight recorder, drained at the
        /// moment of containment: its last N structured events, for
        /// crash forensics. Boxed to keep the error small.
        dump: Option<Box<FlightDump>>,
    },
    /// The request's reply channel closed without an answer.
    NoResponse,
    /// VM failure while executing the request's program.
    Vm(VmError),
    /// Malformed, truncated, or unreadable recording.
    Recording(RecordingError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::QueueClosed => write!(f, "server queue is closed"),
            ServeError::WorkerPanicked { message, dump } => {
                write!(f, "worker panicked serving request: {message}")?;
                if let Some(d) = dump {
                    write!(f, " ({} flight events attached)", d.events.len())?;
                }
                Ok(())
            }
            ServeError::NoResponse => write!(f, "reply channel closed without an answer"),
            ServeError::Vm(e) => write!(f, "vm error: {e}"),
            ServeError::Recording(e) => write!(f, "recording error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<VmError> for ServeError {
    fn from(e: VmError) -> ServeError {
        ServeError::Vm(e)
    }
}

impl From<RecordingError> for ServeError {
    fn from(e: RecordingError) -> ServeError {
        ServeError::Recording(e)
    }
}

/// Server sizing and observability knobs.
#[derive(Clone)]
pub struct ServerConfig {
    /// Worker (shard) count. 0 is promoted to 1.
    pub workers: usize,
    /// Bound of the shared job queue; submitters block (back-pressure)
    /// when it is full. 0 is promoted to 1.
    pub queue_depth: usize,
    /// Optional span trace: each worker becomes a `serve:worker:<i>`
    /// track carrying one span per request.
    pub trace: Option<Arc<Trace>>,
    /// Capacity of each worker's flight-recorder ring (rounded up to a
    /// power of two). 0 disables the flight recorder *and* tail
    /// sampling entirely — the calibration mode the throughput
    /// benchmark measures recorder overhead against.
    pub ring_capacity: usize,
    /// When set, a panicking worker also writes its [`FlightDump`] to
    /// this directory as `flightdump-w<worker>-r<request>.json`.
    ///
    /// The default honors the `SERVE_DUMP_DIR` environment variable
    /// when present (how CI collects forensic artifacts from failing
    /// runs without every call site opting in); `None` otherwise.
    pub dump_dir: Option<PathBuf>,
    /// Tail-sampling policy for retained request traces.
    pub tail: TailConfig,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: std::thread::available_parallelism().map_or(2, |n| n.get()),
            queue_depth: 64,
            trace: None,
            ring_capacity: 256,
            dump_dir: std::env::var_os("SERVE_DUMP_DIR").map(PathBuf::from),
            tail: TailConfig::default(),
        }
    }
}

impl std::fmt::Debug for ServerConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerConfig")
            .field("workers", &self.workers)
            .field("queue_depth", &self.queue_depth)
            .field("trace", &self.trace.is_some())
            .field("ring_capacity", &self.ring_capacity)
            .field("dump_dir", &self.dump_dir)
            .field("tail", &self.tail)
            .finish()
    }
}

struct Job {
    id: u64,
    req: ProfileRequest,
    reply: Sender<Result<ProfileResponse, ServeError>>,
}

/// A pending response. [`Ticket::wait`] blocks until the worker
/// answers.
#[derive(Debug)]
pub struct Ticket {
    id: u64,
    rx: Receiver<Result<ProfileResponse, ServeError>>,
}

impl Ticket {
    /// The request id assigned at submission — the same id the flight
    /// recorder and tail sampler tag this request's telemetry with.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Blocks until the request completes.
    ///
    /// # Errors
    ///
    /// The request's own [`ServeError`], or [`ServeError::NoResponse`]
    /// if the worker died before answering.
    pub fn wait(self) -> Result<ProfileResponse, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::NoResponse))
    }
}

/// The profiling server: a bounded queue fanned across a worker pool.
pub struct Server {
    tx: Option<SyncSender<Job>>,
    workers: Vec<JoinHandle<()>>,
    registry: Arc<Registry>,
    sampler: Arc<TailSampler>,
    next_id: AtomicU64,
}

/// Everything a worker thread needs beyond the queue: shared telemetry
/// handles plus per-worker recorder sizing.
struct WorkerShared {
    registry: Arc<Registry>,
    trace: Option<Arc<Trace>>,
    sampler: Arc<TailSampler>,
    ring_capacity: usize,
    dump_dir: Option<PathBuf>,
}

impl Server {
    /// Starts `cfg.workers` worker threads sharing one bounded queue.
    pub fn start(cfg: ServerConfig) -> Server {
        let workers = cfg.workers.max(1);
        let depth = cfg.queue_depth.max(1);
        let (tx, rx) = sync_channel::<Job>(depth);
        let rx = Arc::new(Mutex::new(rx));
        let registry = Arc::new(Registry::new());
        let sampler = Arc::new(TailSampler::new(cfg.tail));
        let handles = (0..workers)
            .map(|i| {
                let rx = Arc::clone(&rx);
                let shared = WorkerShared {
                    registry: Arc::clone(&registry),
                    trace: cfg.trace.clone(),
                    sampler: Arc::clone(&sampler),
                    ring_capacity: cfg.ring_capacity,
                    dump_dir: cfg.dump_dir.clone(),
                };
                std::thread::spawn(move || worker_loop(i, &rx, &shared))
            })
            .collect();
        Server {
            tx: Some(tx),
            workers: handles,
            registry,
            sampler,
            next_id: AtomicU64::new(1),
        }
    }

    /// Starts a server with the default configuration.
    pub fn start_default() -> Server {
        Server::start(ServerConfig::default())
    }

    /// Enqueues a request, blocking while the queue is full
    /// (back-pressure), and returns the ticket its answer arrives on.
    ///
    /// # Errors
    ///
    /// [`ServeError::QueueClosed`] once shutdown has begun.
    pub fn submit(&self, req: ProfileRequest) -> Result<Ticket, ServeError> {
        let tx = self.tx.as_ref().ok_or(ServeError::QueueClosed)?;
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (reply, rx) = mpsc::channel();
        tx.send(Job { id, req, reply })
            .map_err(|_| ServeError::QueueClosed)?;
        // queued (not yet claimed): gauge up here, down at claim; the
        // high-water counter keeps the worst depth seen
        let depth = {
            let g = self.registry.gauge("serve.queue.depth");
            g.add(1);
            g.get()
        };
        self.registry
            .counter("serve.queue.high_water")
            .record_max(depth.max(0) as u64);
        Ok(Ticket { id, rx })
    }

    /// Submits and waits in one call.
    ///
    /// # Errors
    ///
    /// Queue closure, or the request's own failure.
    pub fn profile(&self, req: ProfileRequest) -> Result<ProfileResponse, ServeError> {
        self.submit(req)?.wait()
    }

    /// The per-worker counter registry (`serve.worker.<i>.requests`,
    /// `.events`, `.busy_nanos`, `.panics`, `.lagged_batches`,
    /// `.dropped_batches`).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// The shared tail sampler: every finished request's latency, plus
    /// the retained (errored / tail-latency) traces.
    pub fn sampler(&self) -> &TailSampler {
        &self.sampler
    }

    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and serves the scrape
    /// endpoints `/metrics`, `/healthz`, and `/traces` from a
    /// background acceptor thread until the returned endpoint is
    /// dropped or stopped.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn serve_http(&self, addr: impl std::net::ToSocketAddrs) -> std::io::Result<HttpEndpoint> {
        http::serve(
            addr,
            http::HttpState {
                registry: Arc::clone(&self.registry),
                sampler: Arc::clone(&self.sampler),
                workers: self.workers.len(),
            },
        )
    }

    /// Closes the queue, drains in-flight requests, and joins every
    /// worker. Returns the final counter registry.
    pub fn shutdown(mut self) -> Arc<Registry> {
        self.close_and_join();
        Arc::clone(&self.registry)
    }

    fn close_and_join(&mut self) {
        self.tx = None; // closes the queue; workers drain and exit
        for h in self.workers.drain(..) {
            // a worker that somehow died panicking has already answered
            // its requests with WorkerPanicked or dropped its reply
            // senders (tickets see NoResponse) — nothing to propagate
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.close_and_join();
    }
}

fn worker_loop(index: usize, rx: &Mutex<Receiver<Job>>, shared: &WorkerShared) {
    let registry = &*shared.registry;
    let trace = shared.trace.as_deref();
    let prefix = format!("serve.worker.{index}");
    let track = trace.map(|tr| tr.track(&format!("serve:worker:{index}")));
    // this worker's flight recorder: installed thread-locally so
    // pipeline code anywhere below can emit without plumbing.
    // ring_capacity 0 = telemetry off (benchmark calibration mode)
    let ring = (shared.ring_capacity > 0).then(|| {
        let ring = Arc::new(FlightRing::new(shared.ring_capacity));
        live::install(Arc::clone(&ring));
        ring
    });
    let alive = registry.gauge(&format!("{prefix}.alive"));
    alive.set(1);
    let queue_depth = registry.gauge("serve.queue.depth");
    loop {
        // hold the lock only while claiming the next job, so shards
        // drain the queue concurrently
        let job = {
            let guard = match rx.lock() {
                Ok(g) => g,
                // a panic inside `recv` cannot poison worker state —
                // the jobs themselves run outside the lock
                Err(poisoned) => poisoned.into_inner(),
            };
            guard.recv()
        };
        let Ok(job) = job else { break };
        queue_depth.add(-1);
        live::emit(
            LiveEventKind::QueueDepth,
            queue_depth.get().max(0) as u64,
            registry.counter("serve.queue.high_water").get(),
            0,
        );
        let kind = job.req.kind();
        let kind_code = job.req.kind_code();
        if let (Some(tr), Some(t)) = (trace, track) {
            tr.begin(t, kind);
        }
        live::emit(LiveEventKind::RequestBegin, job.id, kind_code, 0);
        let started = Instant::now();
        let result = catch_unwind(AssertUnwindSafe(|| handle(job.id, job.req)));
        let busy = started.elapsed().as_nanos() as u64;
        registry.counter(&format!("{prefix}.requests")).inc();
        registry.counter(&format!("{prefix}.busy_nanos")).add(busy);
        registry
            .histogram(&format!("serve.request.{kind}.latency_nanos"))
            .record(busy);
        let result = match result {
            Ok(r) => r,
            Err(payload) => {
                registry.counter(&format!("{prefix}.panics")).inc();
                let message = panic_message(&payload);
                live::emit(LiveEventKind::RequestEnd, job.id, busy, 1);
                // crash forensics: drain this worker's own ring into a
                // dump attached to the answer (and written to disk when
                // a dump directory is configured)
                let dump = ring.as_ref().map(|ring| {
                    let dump = FlightDump {
                        worker: index as u64,
                        request_id: job.id,
                        request_kind: kind.to_string(),
                        panic_message: message.clone(),
                        events_written: ring.written(),
                        events: ring.snapshot(),
                    };
                    if let Some(dir) = &shared.dump_dir {
                        if dump.write_to(dir).is_err() {
                            registry.counter(&format!("{prefix}.dump_errors")).inc();
                        }
                    }
                    Box::new(dump)
                });
                Err(ServeError::WorkerPanicked { message, dump })
            }
        };
        match &result {
            Ok(resp) => {
                live::emit(LiveEventKind::RequestEnd, job.id, busy, 0);
                let (events, lagged, dropped) = response_counters(resp);
                registry.counter(&format!("{prefix}.events")).add(events);
                registry
                    .counter(&format!("{prefix}.lagged_batches"))
                    .add(lagged);
                registry
                    .counter(&format!("{prefix}.dropped_batches"))
                    .add(dropped);
            }
            Err(ServeError::WorkerPanicked { .. }) => {} // already emitted
            Err(_) => live::emit(LiveEventKind::RequestEnd, job.id, busy, 1),
        }
        // tail sampling: record every latency, retain stage traces
        // only for errored or tail-latency requests (off together with
        // the recorder in calibration mode)
        if ring.is_some() {
            let stages = result
                .as_ref()
                .ok()
                .and_then(ProfileResponse::report)
                .map(|r| {
                    r.obs
                        .stages
                        .iter()
                        .map(|s| (s.stage.clone(), s.nanos))
                        .collect()
                })
                .unwrap_or_default();
            shared.sampler.observe(obs::RequestTrace {
                id: job.id,
                kind: kind.to_string(),
                latency_nanos: busy,
                error: result.as_ref().err().map(|e| e.to_string()),
                stages,
            });
        }
        if let (Some(tr), Some(t)) = (trace, track) {
            tr.end(t, kind);
        }
        // a dropped ticket just means nobody is waiting; keep serving
        let _ = job.reply.send(result);
    }
    alive.set(0);
    live::uninstall();
}

/// Events analyzed plus per-shard bus lag/drop totals of one response.
fn response_counters(resp: &ProfileResponse) -> (u64, u64, u64) {
    match resp {
        ProfileResponse::Pipeline(r) | ProfileResponse::Tiered { report: r, .. } => {
            let (mut lagged, mut dropped) = (0, 0);
            for s in &r.obs.bus.sinks {
                lagged += s.lagged_batches;
                dropped += s.dropped_batches;
            }
            (r.profile.events, lagged, dropped)
        }
        ProfileResponse::Profile { profile, .. } => (profile.events, 0, 0),
    }
}

fn handle(id: u64, req: ProfileRequest) -> Result<ProfileResponse, ServeError> {
    match req {
        ProfileRequest::Pipeline { program, cfg } => {
            let report = run_pipeline(&program, &cfg)?;
            Ok(ProfileResponse::Pipeline(Box::new(report)))
        }
        ProfileRequest::Tiered { program, cfg, tier } => {
            let outcome = run_tiered(&program, &cfg, &tier)?;
            Ok(ProfileResponse::Tiered {
                report: Box::new(outcome.report),
                tiers: outcome.tiers,
            })
        }
        ProfileRequest::Replay { recording, tracer } => {
            let mut t = TestTracer::new(tracer);
            recording.replay(&mut t);
            let events = recording.len() as u64;
            Ok(ProfileResponse::Profile {
                profile: Box::new(t.into_profile()),
                events,
            })
        }
        ProfileRequest::ReplayMapped {
            path,
            tracer,
            batch_capacity,
        } => {
            let mapped = MappedRecording::open(&path)?;
            let view = mapped.view()?;
            let mut t = TestTracer::new(tracer);
            let events = view.stream_batches(batch_capacity.max(1), |batch| {
                use tvm::trace::TraceSink;
                live::emit(LiveEventKind::BatchConsumed, id, batch.len() as u64, 0);
                t.consume_batch(batch);
            })?;
            Ok(ProfileResponse::Profile {
                profile: Box::new(t.into_profile()),
                events,
            })
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Convenience: the default zero-copy batch capacity for
/// [`ProfileRequest::ReplayMapped`].
pub const DEFAULT_REPLAY_BATCH: usize = DEFAULT_BATCH_CAPACITY;

// Everything that crosses the queue or the reply channels must be
// Send; these assertions pin the pipeline entry points as Send-clean
// at compile time (the tentpole's `jrpm` requirement).
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<ProfileRequest>();
    assert_send::<ProfileResponse>();
    assert_send::<ServeError>();
    assert_send::<Ticket>();
    assert_send::<PipelineReport>();
    assert_send::<Program>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use tvm::{ElemKind, ProgramBuilder};

    fn sample_program() -> Program {
        let mut b = ProgramBuilder::new();
        let main = b.function("main", 0, false, |f| {
            let (a, i) = (f.local(), f.local());
            f.ci(16).newarray(ElemKind::Int).st(a);
            f.for_in(i, 0.into(), 16.into(), |f| {
                f.arr_set(
                    a,
                    |f| {
                        f.ld(i);
                    },
                    |f| {
                        f.ld(i);
                    },
                );
            });
            f.ret_void();
        });
        b.finish(main).expect("sample program builds")
    }

    #[test]
    fn pipeline_request_round_trips() {
        let server = Server::start(ServerConfig {
            workers: 2,
            queue_depth: 4,
            ..ServerConfig::default()
        });
        let resp = server
            .profile(ProfileRequest::Pipeline {
                program: sample_program(),
                cfg: PipelineConfig::default(),
            })
            .expect("pipeline request succeeds");
        let direct = run_pipeline(&sample_program(), &PipelineConfig::default()).unwrap();
        let report = resp.report().expect("pipeline response has a report");
        assert_eq!(report.seq_cycles, direct.seq_cycles);
        assert_eq!(report.profile, direct.profile);
        let registry = server.shutdown();
        let snap = registry.snapshot();
        let total: u64 = (0..2)
            .map(|i| snap.counter(&format!("serve.worker.{i}.requests")))
            .sum();
        assert_eq!(total, 1);
    }

    #[test]
    fn submit_after_shutdown_is_a_typed_error() {
        let mut server = Server::start(ServerConfig {
            workers: 1,
            queue_depth: 1,
            ..ServerConfig::default()
        });
        server.tx = None; // simulate shutdown-in-progress
        let err = server
            .submit(ProfileRequest::Pipeline {
                program: sample_program(),
                cfg: PipelineConfig::default(),
            })
            .expect_err("closed queue rejects");
        assert!(matches!(err, ServeError::QueueClosed));
    }

    #[test]
    fn missing_recording_file_is_a_typed_error() {
        let server = Server::start(ServerConfig {
            workers: 1,
            queue_depth: 1,
            ..ServerConfig::default()
        });
        let err = server
            .profile(ProfileRequest::ReplayMapped {
                path: PathBuf::from("/nonexistent/recording.tvmr"),
                tracer: TracerConfig::default(),
                batch_capacity: DEFAULT_REPLAY_BATCH,
            })
            .expect_err("missing file is an error, not a panic");
        assert!(matches!(err, ServeError::Recording(RecordingError::Io(_))));
    }

    #[test]
    fn panicking_request_is_contained_and_server_keeps_serving() {
        let server = Server::start(ServerConfig {
            workers: 1,
            queue_depth: 2,
            ..ServerConfig::default()
        });
        // a tracer table size that is not a power of two makes
        // TestTracer::new panic — a genuinely panicking request
        let bad = TracerConfig {
            ld_table_entries: 3,
            ..TracerConfig::default()
        };
        let err = server
            .profile(ProfileRequest::Replay {
                recording: Recording { events: Vec::new() },
                tracer: bad,
            })
            .expect_err("panicking request answers with a typed error");
        let ServeError::WorkerPanicked { message, dump } = err else {
            panic!("expected WorkerPanicked, got {err:?}");
        };
        assert!(!message.is_empty());
        // the drained flight recorder rides on the error and contains
        // the failing request's begin event
        let dump = dump.expect("panic answer carries a flight dump");
        assert_eq!(dump.worker, 0);
        assert_eq!(dump.request_kind, "replay");
        assert!(
            dump.events
                .iter()
                .any(|e| e.kind == obs::LiveEventKind::RequestBegin && e.a == dump.request_id),
            "dump holds the failing request's begin event: {:?}",
            dump.events
        );
        // and it round-trips through its own JSON codec
        let parsed = obs::FlightDump::parse(&dump.to_json()).expect("dump JSON parses");
        assert_eq!(parsed, *dump);
        // the single worker survived and answers the next request
        let resp = server.profile(ProfileRequest::Replay {
            recording: Recording { events: Vec::new() },
            tracer: TracerConfig::default(),
        });
        match resp.expect("empty replay succeeds after the panic") {
            ProfileResponse::Profile { events, .. } => assert_eq!(events, 0),
            other => panic!("unexpected response: {other:?}"),
        }
        let snap = server.shutdown().snapshot();
        assert_eq!(snap.counter("serve.worker.0.panics"), 1);
        assert_eq!(snap.counter("serve.worker.0.requests"), 2);
    }
}
