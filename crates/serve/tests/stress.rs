//! Multi-client stress: several clients hammer one server with the
//! whole 26-benchmark suite in different (deterministically shuffled)
//! orders. Every response must match its single-tenant batch run, and
//! the per-worker obs counters must sum exactly to the single-tenant
//! totals — no request lost, none double-served, no cross-shard
//! contamination.

use std::collections::BTreeMap;
use std::sync::Arc;

use benchsuite::{all, Benchmark, DataSize};
use jrpm::pipeline::{run_pipeline, PipelineConfig, PipelineReport};
use serve::{ProfileRequest, Server, ServerConfig};

const CLIENTS: u64 = 3;
const WORKERS: usize = 4;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn shuffled(seed: u64) -> Vec<Benchmark> {
    let mut order: Vec<Benchmark> = all();
    let mut state = seed;
    for i in (1..order.len()).rev() {
        let j = (splitmix(&mut state) % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    order
}

#[test]
fn concurrent_clients_all_match_single_tenant_runs() {
    let cfg = PipelineConfig::default();
    let baselines: BTreeMap<&str, PipelineReport> = all()
        .into_iter()
        .map(|b| {
            let program = (b.build)(DataSize::Small);
            let report = run_pipeline(&program, &cfg)
                .unwrap_or_else(|e| panic!("{}: baseline failed: {e:?}", b.name));
            (b.name, report)
        })
        .collect();
    let baselines = Arc::new(baselines);

    let server = Server::start(ServerConfig {
        workers: WORKERS,
        queue_depth: 4,
        ..ServerConfig::default()
    });
    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            let server = &server;
            let baselines = Arc::clone(&baselines);
            scope.spawn(move || {
                for bench in shuffled(0xC0FF_EE00 + client) {
                    let name = bench.name;
                    let program = (bench.build)(DataSize::Small);
                    let resp = server
                        .profile(ProfileRequest::Pipeline { program, cfg })
                        .unwrap_or_else(|e| panic!("client {client} / {name}: {e}"));
                    let served = resp.report().expect("pipeline response has a report");
                    let base = &baselines[name];
                    assert_eq!(
                        served.seq_cycles, base.seq_cycles,
                        "client {client} / {name}: baseline differs under load"
                    );
                    assert_eq!(
                        served.profile, base.profile,
                        "client {client} / {name}: profile differs under load"
                    );
                    assert_eq!(
                        served.selection.chosen, base.selection.chosen,
                        "client {client} / {name}: selection differs under load"
                    );
                    assert_eq!(
                        served.actual.tls_cycles, base.actual.tls_cycles,
                        "client {client} / {name}: actual TLS differs under load"
                    );
                }
            });
        }
    });

    let snap = server.shutdown().snapshot();
    let total_requests: u64 = (0..WORKERS)
        .map(|i| snap.counter(&format!("serve.worker.{i}.requests")))
        .sum();
    let total_events: u64 = (0..WORKERS)
        .map(|i| snap.counter(&format!("serve.worker.{i}.events")))
        .sum();
    let total_panics: u64 = (0..WORKERS)
        .map(|i| snap.counter(&format!("serve.worker.{i}.panics")))
        .sum();
    let total_dropped: u64 = (0..WORKERS)
        .map(|i| snap.counter(&format!("serve.worker.{i}.dropped_batches")))
        .sum();
    let expected_events: u64 = baselines.values().map(|r| r.profile.events).sum();
    assert_eq!(
        total_requests,
        CLIENTS * 26,
        "per-worker request counters sum to the submitted total"
    );
    assert_eq!(
        total_events,
        CLIENTS * expected_events,
        "per-worker event counters sum to the single-tenant totals"
    );
    assert_eq!(total_panics, 0, "no contained panics under load");
    assert_eq!(total_dropped, 0, "bounded channels never drop");
}
