//! Server-vs-batch bit-identity, suite-wide: every profiling request
//! answered by the worker pool must reproduce the single-tenant batch
//! run of the same input **bit for bit** — same derived baseline, same
//! TEST profile, same selection, same actual-TLS numbers. The server
//! is a transport, not a re-modelling.

use benchsuite::{all, DataSize};
use jrpm::pipeline::{run_pipeline, PipelineConfig, PipelineReport};
use jrpm::tier::TierConfig;
use serve::{ProfileRequest, ProfileResponse, Server, ServerConfig};
use test_tracer::config::TracerConfig;
use tvm::interp::Interp;
use tvm::record::RecordingSink;

fn assert_reports_identical(name: &str, a: &PipelineReport, b: &PipelineReport) {
    assert_eq!(a.seq_cycles, b.seq_cycles, "{name}: derived baseline");
    assert_eq!(a.profile_cycles, b.profile_cycles, "{name}: profile cycles");
    assert_eq!(a.annotation, b.annotation, "{name}: annotation overhead");
    assert_eq!(a.profile, b.profile, "{name}: TEST profile");
    assert_eq!(a.selection.chosen, b.selection.chosen, "{name}: selection");
    assert_eq!(
        a.selection.predicted_cycles, b.selection.predicted_cycles,
        "{name}: Equation 2 prediction"
    );
    assert_eq!(
        a.selection.total_cycles, b.selection.total_cycles,
        "{name}: selection baseline"
    );
    assert_eq!(
        a.actual.baseline_cycles, b.actual.baseline_cycles,
        "{name}: actual-TLS baseline"
    );
    assert_eq!(
        a.actual.tls_cycles, b.actual.tls_cycles,
        "{name}: TLS cycles"
    );
    assert_eq!(a.actual.per_loop, b.actual.per_loop, "{name}: per-loop TLS");
    assert_eq!(
        a.candidates.demoted_ids(),
        b.candidates.demoted_ids(),
        "{name}: pre-screen demotions"
    );
    assert_eq!(
        a.rescue.rescued.len(),
        b.rescue.rescued.len(),
        "{name}: rescue outcomes"
    );
}

/// All 26 benchmarks through the server (4 shards, pipelined submits)
/// against fresh batch runs.
#[test]
fn server_matches_batch_on_every_benchmark() {
    let cfg = PipelineConfig::default();
    let server = Server::start(ServerConfig {
        workers: 4,
        queue_depth: 8,
        ..ServerConfig::default()
    });
    let mut tickets = Vec::new();
    for bench in all() {
        let program = (bench.build)(DataSize::Small);
        let ticket = server
            .submit(ProfileRequest::Pipeline { program, cfg })
            .expect("queue accepts while the server lives");
        tickets.push((bench, ticket));
    }
    for (bench, ticket) in tickets {
        let name = bench.name;
        let resp = ticket
            .wait()
            .unwrap_or_else(|e| panic!("{name}: server request failed: {e}"));
        let served = resp.report().expect("pipeline response carries a report");
        let program = (bench.build)(DataSize::Small);
        let direct = run_pipeline(&program, &cfg)
            .unwrap_or_else(|e| panic!("{name}: batch run failed: {e:?}"));
        assert_reports_identical(name, &direct, served);
    }
    let snap = server.shutdown().snapshot();
    let requests: u64 = (0..4)
        .map(|i| snap.counter(&format!("serve.worker.{i}.requests")))
        .sum();
    assert_eq!(
        requests, 26,
        "every request was claimed by exactly one shard"
    );
}

/// The tier-scheduled request shape answers with the same report the
/// direct tier driver produces (spot-checked on a few benchmarks — the
/// online≡offline contract itself is pinned by the bench crate).
#[test]
fn tiered_requests_match_direct_tier_runs() {
    let cfg = PipelineConfig::default();
    let tier = TierConfig::default();
    let server = Server::start(ServerConfig {
        workers: 2,
        queue_depth: 4,
        ..ServerConfig::default()
    });
    for name in ["FourierTest", "db", "Huffman"] {
        let bench = benchsuite::by_name(name).expect("suite benchmark exists");
        let program = (bench.build)(DataSize::Small);
        let resp = server
            .profile(ProfileRequest::Tiered { program, cfg, tier })
            .unwrap_or_else(|e| panic!("{name}: tiered request failed: {e}"));
        let (report, tiers) = match &resp {
            ProfileResponse::Tiered { report, tiers } => (report.as_ref(), tiers),
            other => panic!("{name}: unexpected response {other:?}"),
        };
        let program = (bench.build)(DataSize::Small);
        let direct = jrpm::tier::run_tiered(&program, &cfg, &tier)
            .unwrap_or_else(|e| panic!("{name}: direct tier run failed: {e:?}"));
        assert_reports_identical(name, &direct.report, report);
        assert_eq!(
            tiers.selected_ids(),
            direct.tiers.selected_ids(),
            "{name}: terminal Selected tiers"
        );
    }
}

/// Owned replay, server replay, and zero-copy mmapped replay of the
/// same recording produce identical tracer profiles.
#[test]
fn mapped_replay_matches_owned_replay_suite_wide() {
    let dir = std::env::temp_dir().join(format!("serve-equiv-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let server = Server::start(ServerConfig {
        workers: 3,
        queue_depth: 4,
        ..ServerConfig::default()
    });
    for bench in all() {
        let name = bench.name;
        let program = (bench.build)(DataSize::Small);
        let mut sink = RecordingSink::new();
        Interp::run(&program, &mut sink).unwrap_or_else(|e| panic!("{name}: run: {e:?}"));
        let recording = sink.into_recording();
        let path = dir.join(format!("{name}.tvmr"));
        recording.save(&path).expect("recording saves");

        let mut local = test_tracer::tracer::TestTracer::new(TracerConfig::default());
        recording.replay(&mut local);
        let expected = local.into_profile();

        let owned = server
            .profile(ProfileRequest::Replay {
                recording,
                tracer: TracerConfig::default(),
            })
            .unwrap_or_else(|e| panic!("{name}: replay request failed: {e}"));
        assert_eq!(*owned.profile(), expected, "{name}: served owned replay");

        let mapped = server
            .profile(ProfileRequest::ReplayMapped {
                path: path.clone(),
                tracer: TracerConfig::default(),
                batch_capacity: 512,
            })
            .unwrap_or_else(|e| panic!("{name}: mapped replay failed: {e}"));
        assert_eq!(*mapped.profile(), expected, "{name}: zero-copy replay");
        match (&owned, &mapped) {
            (
                ProfileResponse::Profile { events: a, .. },
                ProfileResponse::Profile { events: b, .. },
            ) => assert_eq!(a, b, "{name}: replayed event counts"),
            _ => unreachable!(),
        }
    }
    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}
