//! Live-telemetry integration: the `/metrics` scrape must agree with
//! `Registry::snapshot()`, `/healthz` must report shard liveness, the
//! tail sampler must retain errored requests, and a panicking worker
//! must leave a parseable flight dump on disk.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;

use obs::expo;
use serve::{ProfileRequest, ProfileResponse, ServeError, Server, ServerConfig};
use test_tracer::config::TracerConfig;
use tvm::record::Recording;

/// One blocking HTTP/1.0 GET against the endpoint; returns
/// `(status_line, body)`.
fn get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("endpoint accepts");
    stream
        .write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes())
        .expect("request writes");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("response reads");
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .expect("response has a head/body split");
    let status = head.lines().next().unwrap_or("").to_string();
    (status, body.to_string())
}

fn empty_replay() -> ProfileRequest {
    ProfileRequest::Replay {
        recording: Recording { events: Vec::new() },
        tracer: TracerConfig::default(),
    }
}

/// A request that genuinely panics inside the worker: a tracer table
/// size that is not a power of two.
fn panicking_replay() -> ProfileRequest {
    ProfileRequest::Replay {
        recording: Recording { events: Vec::new() },
        tracer: TracerConfig {
            ld_table_entries: 3,
            ..TracerConfig::default()
        },
    }
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("serve-telemetry-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir creates");
    dir
}

#[test]
fn metrics_scrape_round_trips_and_agrees_with_the_registry() {
    let server = Server::start(ServerConfig {
        workers: 2,
        queue_depth: 4,
        ..ServerConfig::default()
    });
    for _ in 0..6 {
        match server.profile(empty_replay()).expect("replay succeeds") {
            ProfileResponse::Profile { events, .. } => assert_eq!(events, 0),
            other => panic!("unexpected response: {other:?}"),
        }
    }
    let endpoint = server.serve_http("127.0.0.1:0").expect("endpoint binds");
    let (status, body) = get(endpoint.addr(), "/metrics");
    assert!(status.contains("200"), "{status}");
    // the exposition parses back and matches the live snapshot exactly
    // (the server is idle between scrape and snapshot)
    let expo = expo::parse_exposition(&body).expect("exposition parses");
    let snap = server.registry().snapshot();
    let mismatches = expo::diff_against_snapshot(&expo, &snap);
    assert!(mismatches.is_empty(), "scrape vs snapshot: {mismatches:?}");
    // per-kind latency histograms and queue watermarks are exposed
    assert!(
        body.contains("serve_request_replay_latency_nanos_count"),
        "{body}"
    );
    assert!(body.contains("serve_queue_high_water"), "{body}");
    endpoint.stop();
    server.shutdown();
}

#[test]
fn healthz_reports_every_shard_alive() {
    let server = Server::start(ServerConfig {
        workers: 3,
        queue_depth: 4,
        ..ServerConfig::default()
    });
    server.profile(empty_replay()).expect("replay succeeds");
    let endpoint = server.serve_http("127.0.0.1:0").expect("endpoint binds");
    let (status, body) = get(endpoint.addr(), "/healthz");
    assert!(status.contains("200"), "{status}");
    let doc = obs::json::parse(&body).expect("healthz is valid JSON");
    assert_eq!(doc.get("status").and_then(|v| v.as_str()), Some("ok"));
    let workers = doc
        .get("workers")
        .and_then(|v| v.as_arr())
        .expect("workers array");
    assert_eq!(workers.len(), 3);
    for w in workers {
        assert_eq!(w.get("alive").and_then(|v| v.as_bool()), Some(true));
    }
    // unknown routes are a clean 404, not a hang or a panic
    let (status, _) = get(endpoint.addr(), "/nope");
    assert!(status.contains("404"), "{status}");
    endpoint.stop();
    server.shutdown();
}

#[test]
fn tail_sampler_retains_the_errored_request_and_serves_it() {
    let server = Server::start(ServerConfig {
        workers: 1,
        queue_depth: 2,
        ..ServerConfig::default()
    });
    // healthy traffic first, then one panicking request
    for _ in 0..4 {
        server.profile(empty_replay()).expect("replay succeeds");
    }
    let ticket = server.submit(panicking_replay()).expect("submits");
    let failed_id = ticket.id();
    let err = ticket.wait().expect_err("panicking request errors");
    assert!(matches!(err, ServeError::WorkerPanicked { .. }));
    let (observed, retained) = server.sampler().totals();
    assert_eq!(observed, 5);
    assert!(retained >= 1, "errored request is retained");
    let kept = server.sampler().traces();
    assert!(
        kept.iter().any(|t| t.id == failed_id && t.error.is_some()),
        "retained traces carry the failed request id {failed_id}: {kept:?}"
    );
    // and /traces serves the same thing as JSON
    let endpoint = server.serve_http("127.0.0.1:0").expect("endpoint binds");
    let (status, body) = get(endpoint.addr(), "/traces");
    assert!(status.contains("200"), "{status}");
    let doc = obs::json::parse(&body).expect("traces endpoint is valid JSON");
    let arr = doc.as_arr().expect("traces is an array");
    assert!(arr
        .iter()
        .any(|t| t.get("id").and_then(|v| v.as_u64()) == Some(failed_id)));
    endpoint.stop();
    server.shutdown();
}

#[test]
fn panicking_worker_writes_a_parseable_flight_dump_to_disk() {
    let dir = fresh_dir("dump");
    let server = Server::start(ServerConfig {
        workers: 1,
        queue_depth: 2,
        dump_dir: Some(dir.clone()),
        ..ServerConfig::default()
    });
    server.profile(empty_replay()).expect("replay succeeds");
    let err = server
        .profile(panicking_replay())
        .expect_err("panicking request errors");
    let ServeError::WorkerPanicked { dump, .. } = &err else {
        panic!("expected WorkerPanicked, got {err:?}");
    };
    let dump = dump.as_ref().expect("dump attached");
    // the on-disk artifact exists and parses back to the same dump
    let path = dir.join(format!(
        "flightdump-w{}-r{}.json",
        dump.worker, dump.request_id
    ));
    let text = std::fs::read_to_string(&path).expect("dump file written");
    let parsed = obs::FlightDump::parse(&text).expect("dump file parses");
    assert_eq!(parsed, **dump);
    // it holds the worker's recent healthy history too, not just the
    // failing request
    assert!(
        parsed
            .events
            .iter()
            .filter(|e| e.kind == obs::LiveEventKind::RequestBegin)
            .count()
            >= 2,
        "dump spans earlier requests: {:?}",
        parsed.events
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn ticket_ids_are_unique_and_increasing() {
    let server = Server::start(ServerConfig {
        workers: 2,
        queue_depth: 8,
        ..ServerConfig::default()
    });
    let mut last = 0;
    for _ in 0..5 {
        let t = server.submit(empty_replay()).expect("submits");
        assert!(t.id() > last, "ids increase: {} then {}", last, t.id());
        last = t.id();
        t.wait().expect("replay succeeds");
    }
    server.shutdown();
}
