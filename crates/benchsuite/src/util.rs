//! Shared codegen helpers for the benchmark kernels.

use tvm::isa::ElemKind;
use tvm::program::FuncId;
use tvm::{FnBuilder, Local, ProgramBuilder};

/// Knuth's 64-bit LCG multiplier.
pub const LCG_A: i64 = 6364136223846793005;
/// Knuth's 64-bit LCG increment.
pub const LCG_C: i64 = 1442695040888963407;

/// Emits `x = x * LCG_A + LCG_C` on local `x`.
pub fn lcg_step(f: &mut FnBuilder, x: Local) {
    f.ld(x).ci(LCG_A).imul().ci(LCG_C).iadd().st(x);
}

/// Emits code pushing a pseudo-random value in `[0, bound)` derived
/// from local `x` (which is advanced). `bound` must be positive.
pub fn lcg_bounded(f: &mut FnBuilder, x: Local, bound: i64) {
    lcg_step(f, x);
    f.ld(x).ci(33).iushr().ci(bound).irem();
}

/// Emits a mixing hash of the value on top of the stack (a cheap
/// `splitmix`-style finalizer). Used to derive per-iteration seeds
/// from loop counters, which keeps Monte-Carlo-style loops free of a
/// serializing RNG-state dependency.
pub fn hash_top(f: &mut FnBuilder) {
    // v ^= v >> 30; v *= A; v ^= v >> 27
    f.dup().ci(30).iushr().ixor();
    f.ci(LCG_A).imul();
    f.dup().ci(27).iushr().ixor();
}

/// Defines `fill_int(arr, seed, bound)`: fills an int array with
/// pseudo-random values in `[0, bound)`. Returns nothing.
pub fn define_fill_int(b: &mut ProgramBuilder) -> FuncId {
    b.function("fill_int", 3, false, |f| {
        let (arr, seed, bound) = (f.param(0), f.param(1), f.param(2));
        let i = f.local();
        let n = f.local();
        f.ld(arr).arraylen().st(n);
        f.for_in(i, 0.into(), n.into(), |f| {
            f.ld(arr).ld(i);
            lcg_step(f, seed);
            f.ld(seed).ci(33).iushr().ld(bound).irem();
            f.astore();
        });
        f.ret_void();
    })
}

/// Defines `fill_float(arr, seed)`: fills a float array with
/// pseudo-random values in `[0, 1)`.
pub fn define_fill_float(b: &mut ProgramBuilder) -> FuncId {
    b.function("fill_float", 2, false, |f| {
        let (arr, seed) = (f.param(0), f.param(1));
        let i = f.local();
        let n = f.local();
        f.ld(arr).arraylen().st(n);
        f.for_in(i, 0.into(), n.into(), |f| {
            f.ld(arr).ld(i);
            lcg_step(f, seed);
            f.ld(seed).ci(40).iushr().i2f().cf(16777216.0).fdiv();
            f.astore();
        });
        f.ret_void();
    })
}

/// Allocates an int array of length `n` into local `dst`.
pub fn new_int_array(f: &mut FnBuilder, dst: Local, n: i64) {
    f.ci(n).newarray(ElemKind::Int).st(dst);
}

/// Allocates a float array of length `n` into local `dst`.
pub fn new_float_array(f: &mut FnBuilder, dst: Local, n: i64) {
    f.ci(n).newarray(ElemKind::Float).st(dst);
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvm::{Interp, NullSink};

    #[test]
    fn fill_int_produces_bounded_values() {
        let mut b = ProgramBuilder::new();
        let fill = define_fill_int(&mut b);
        let main = b.function("main", 0, true, |f| {
            let (a, i, mx) = (f.local(), f.local(), f.local());
            new_int_array(f, a, 64);
            f.ld(a).ci(42).ci(100).call(fill);
            f.ci(0).st(mx);
            f.for_in(i, 0.into(), 64.into(), |f| {
                f.ld(mx)
                    .arr_get(a, |f| {
                        f.ld(i);
                    })
                    .imax()
                    .st(mx);
            });
            f.ld(mx).ret();
        });
        let p = b.finish(main).unwrap();
        let r = Interp::run(&p, &mut NullSink).unwrap();
        let mx = r.ret.unwrap().as_int().unwrap();
        assert!(mx > 0 && mx < 100, "max {mx}");
    }

    #[test]
    fn fill_float_produces_unit_interval() {
        let mut b = ProgramBuilder::new();
        let fill = define_fill_float(&mut b);
        let main = b.function("main", 0, true, |f| {
            let (a, i, mx) = (f.local(), f.local(), f.local());
            new_float_array(f, a, 64);
            f.ld(a).ci(7).call(fill);
            f.cf(0.0).st(mx);
            f.for_in(i, 0.into(), 64.into(), |f| {
                f.ld(mx)
                    .arr_get(a, |f| {
                        f.ld(i);
                    })
                    .fmax()
                    .st(mx);
            });
            f.ld(mx).cf(1000000.0).fmul().f2i().ret();
        });
        let p = b.finish(main).unwrap();
        let r = Interp::run(&p, &mut NullSink).unwrap();
        let scaled = r.ret.unwrap().as_int().unwrap();
        assert!(scaled > 0 && scaled < 1_000_000, "max*1e6 = {scaled}");
    }

    #[test]
    fn hash_top_mixes() {
        let mut b = ProgramBuilder::new();
        let main = b.function("main", 0, true, |f| {
            f.ci(1);
            hash_top(f);
            f.ci(2);
            hash_top(f);
            f.ixor().ret();
        });
        let p = b.finish(main).unwrap();
        let r = Interp::run(&p, &mut NullSink).unwrap();
        assert_ne!(r.ret.unwrap().as_int().unwrap(), 0);
    }
}
