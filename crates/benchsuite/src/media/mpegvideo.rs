//! mpegVideo: MPEG block reconstruction — a fast integer butterfly
//! transform per 8×8 block, prediction addition and saturation. The
//! blocks-of-a-frame loop is the STL; per-block threads are small
//! (Table 6: ~700 cycles).

use super::codec_builder;
use crate::util::new_int_array;
use crate::DataSize;
use tvm::Program;

/// Builds the benchmark.
pub fn build(size: DataSize) -> Program {
    let n_blocks: i64 = size.pick(8, 40, 160);
    let (mut b, fill) = codec_builder();

    let main = b.function("main", 0, true, |f| {
        let (coeffs, pred, out) = (f.local(), f.local(), f.local());
        let (blk, r, c, t0, t1, sum) = (
            f.local(),
            f.local(),
            f.local(),
            f.local(),
            f.local(),
            f.local(),
        );
        new_int_array(f, coeffs, n_blocks * 64);
        new_int_array(f, pred, n_blocks * 64);
        new_int_array(f, out, n_blocks * 64);
        f.ld(coeffs).ci(0x3E6).ci(64).call(fill);
        f.ld(pred).ci(0x9E6).ci(200).call(fill);

        f.for_in(blk, 0.into(), n_blocks.into(), |f| {
            // row butterflies: a Walsh-Hadamard-flavoured fast pass
            f.for_in(r, 0.into(), 8.into(), |f| {
                f.for_in(c, 0.into(), 4.into(), |f| {
                    f.arr_get(coeffs, |f| {
                        f.ld(blk)
                            .ci(64)
                            .imul()
                            .ld(r)
                            .ci(8)
                            .imul()
                            .iadd()
                            .ld(c)
                            .iadd();
                    })
                    .st(t0);
                    f.arr_get(coeffs, |f| {
                        f.ld(blk)
                            .ci(64)
                            .imul()
                            .ld(r)
                            .ci(8)
                            .imul()
                            .iadd()
                            .ci(7)
                            .ld(c)
                            .isub()
                            .iadd();
                    })
                    .st(t1);
                    f.arr_set(
                        coeffs,
                        |f| {
                            f.ld(blk)
                                .ci(64)
                                .imul()
                                .ld(r)
                                .ci(8)
                                .imul()
                                .iadd()
                                .ld(c)
                                .iadd();
                        },
                        |f| {
                            f.ld(t0).ld(t1).iadd();
                        },
                    );
                    f.arr_set(
                        coeffs,
                        |f| {
                            f.ld(blk)
                                .ci(64)
                                .imul()
                                .ld(r)
                                .ci(8)
                                .imul()
                                .iadd()
                                .ci(7)
                                .ld(c)
                                .isub()
                                .iadd();
                        },
                        |f| {
                            f.ld(t0).ld(t1).isub();
                        },
                    );
                });
            });
            // column butterflies
            f.for_in(c, 0.into(), 8.into(), |f| {
                f.for_in(r, 0.into(), 4.into(), |f| {
                    f.arr_get(coeffs, |f| {
                        f.ld(blk)
                            .ci(64)
                            .imul()
                            .ld(r)
                            .ci(8)
                            .imul()
                            .iadd()
                            .ld(c)
                            .iadd();
                    })
                    .st(t0);
                    f.arr_get(coeffs, |f| {
                        f.ld(blk)
                            .ci(64)
                            .imul()
                            .ci(7)
                            .ld(r)
                            .isub()
                            .ci(8)
                            .imul()
                            .iadd()
                            .ld(c)
                            .iadd();
                    })
                    .st(t1);
                    f.arr_set(
                        coeffs,
                        |f| {
                            f.ld(blk)
                                .ci(64)
                                .imul()
                                .ld(r)
                                .ci(8)
                                .imul()
                                .iadd()
                                .ld(c)
                                .iadd();
                        },
                        |f| {
                            f.ld(t0).ld(t1).iadd().ci(1).ishr();
                        },
                    );
                    f.arr_set(
                        coeffs,
                        |f| {
                            f.ld(blk)
                                .ci(64)
                                .imul()
                                .ci(7)
                                .ld(r)
                                .isub()
                                .ci(8)
                                .imul()
                                .iadd()
                                .ld(c)
                                .iadd();
                        },
                        |f| {
                            f.ld(t0).ld(t1).isub().ci(1).ishr();
                        },
                    );
                });
            });
            // reconstruction: out = clamp(pred + transformed/8)
            f.for_in(r, 0.into(), 64.into(), |f| {
                f.arr_set(
                    out,
                    |f| {
                        f.ld(blk).ci(64).imul().ld(r).iadd();
                    },
                    |f| {
                        f.arr_get(pred, |f| {
                            f.ld(blk).ci(64).imul().ld(r).iadd();
                        });
                        f.arr_get(coeffs, |f| {
                            f.ld(blk).ci(64).imul().ld(r).iadd();
                        })
                        .ci(3)
                        .ishr()
                        .iadd()
                        .ci(0)
                        .imax()
                        .ci(255)
                        .imin();
                    },
                );
            });
        });

        // frame checksum
        f.ci(0).st(sum);
        f.for_in(r, 0.into(), (n_blocks * 64).into(), |f| {
            f.ld(sum)
                .arr_get(out, |f| {
                    f.ld(r);
                })
                .iadd()
                .st(sum);
        });
        f.ld(sum).ret();
    });
    b.finish(main).expect("mpegVideo builds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvm::{Interp, NullSink};

    #[test]
    fn reconstruction_saturates_to_bytes() {
        let p = build(DataSize::Small);
        let r = Interp::run(&p, &mut NullSink).unwrap();
        let sum = r.ret.unwrap().as_int().unwrap();
        let pixels = 8 * 64;
        assert!(sum > 0);
        assert!(sum <= pixels * 255);
    }
}
