//! The multimedia benchmarks of Table 6 (mediabench-style codec
//! kernels).

pub mod decjpeg;
pub mod encjpeg;
pub mod h263dec;
pub mod mp3;
pub mod mpegvideo;

use crate::{Benchmark, Category};
use tvm::{FnBuilder, Local, ProgramBuilder};

/// The five multimedia benchmarks, in Table 6 order.
pub fn benchmarks() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "decJpeg",
            category: Category::Multimedia,
            description: "JPEG decode core: dequantization + 8x8 IDCT",
            build: decjpeg::build,
            analyzable: false,
            data_sensitive: false,
        },
        Benchmark {
            name: "encJpeg",
            category: Category::Multimedia,
            description: "JPEG encode core: 8x8 FDCT + quantization",
            build: encjpeg::build,
            analyzable: false,
            data_sensitive: false,
        },
        Benchmark {
            name: "h263dec",
            category: Category::Multimedia,
            description: "H.263 decode core: motion compensation + residual",
            build: h263dec::build,
            analyzable: false,
            data_sensitive: false,
        },
        Benchmark {
            name: "mpegVideo",
            category: Category::Multimedia,
            description: "MPEG video block reconstruction with saturation",
            build: mpegvideo::build,
            analyzable: false,
            data_sensitive: false,
        },
        Benchmark {
            name: "mp3",
            category: Category::Multimedia,
            description: "MP3 subband synthesis windowing",
            build: mp3::build,
            analyzable: false,
            data_sensitive: false,
        },
    ]
}

/// Emits code filling `cos_tab[8*8]` with the DCT-II basis
/// `c(u) * cos((2x+1)uπ/16)` so the codec kernels share one table
/// builder. `tmp` is a scratch float local.
pub(crate) fn emit_cos_table(f: &mut FnBuilder, cos_tab: Local, x: Local, u: Local, tmp: Local) {
    f.for_in(x, 0.into(), 8.into(), |f| {
        f.for_in(u, 0.into(), 8.into(), |f| {
            // angle = (2x+1) * u * pi/16
            f.ld(x)
                .ci(2)
                .imul()
                .ci(1)
                .iadd()
                .ld(u)
                .imul()
                .i2f()
                .cf(std::f64::consts::PI / 16.0)
                .fmul()
                .fcos()
                .st(tmp);
            // scale: 1/(2*sqrt(2)) for u == 0, 1/2 otherwise
            f.if_else_icmp(
                tvm::Cond::Eq,
                |f| {
                    f.ld(u).ci(0);
                },
                |f| {
                    f.ld(tmp).cf(0.35355339059327373).fmul().st(tmp);
                },
                |f| {
                    f.ld(tmp).cf(0.5).fmul().st(tmp);
                },
            );
            f.arr_set(
                cos_tab,
                |f| {
                    f.ld(x).ci(8).imul().ld(u).iadd();
                },
                |f| {
                    f.ld(tmp);
                },
            );
        });
    });
}

/// Declares a `ProgramBuilder` with the shared pixel-fill helper and
/// returns `(builder, fill_int_id)`.
pub(crate) fn codec_builder() -> (ProgramBuilder, tvm::FuncId) {
    let mut b = ProgramBuilder::new();
    let fill = crate::util::define_fill_int(&mut b);
    (b, fill)
}
