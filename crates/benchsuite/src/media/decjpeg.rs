//! decJpeg: JPEG decode core — dequantization plus 8×8 inverse DCT
//! and level shift/clamp over a stream of blocks.

use super::{codec_builder, emit_cos_table};
use crate::util::{new_float_array, new_int_array};
use crate::DataSize;
use tvm::Program;

/// Builds the benchmark.
pub fn build(size: DataSize) -> Program {
    let n_blocks: i64 = size.pick(3, 20, 64);
    let (mut b, fill) = codec_builder();

    let main = b.function("main", 0, true, |f| {
        let (coeffs, pixels, cos_tab) = (f.local(), f.local(), f.local());
        let (blk, x, y, u, v, acc, tmp, sum) = (
            f.local(),
            f.local(),
            f.local(),
            f.local(),
            f.local(),
            f.local(),
            f.local(),
            f.local(),
        );
        new_int_array(f, coeffs, n_blocks * 64);
        new_int_array(f, pixels, n_blocks * 64);
        new_float_array(f, cos_tab, 64);
        f.ld(coeffs).ci(0xDEC).ci(64).call(fill);
        emit_cos_table(f, cos_tab, x, u, tmp);
        // sparsify: zero out most high-frequency coefficients, like a
        // real entropy-decoded block
        f.for_in(blk, 0.into(), n_blocks.into(), |f| {
            f.for_in(u, 0.into(), 8.into(), |f| {
                f.for_in(v, 0.into(), 8.into(), |f| {
                    f.if_icmp(
                        tvm::Cond::Gt,
                        |f| {
                            f.ld(u).ld(v).iadd().ci(5);
                        },
                        |f| {
                            f.arr_set(
                                coeffs,
                                |f| {
                                    f.ld(blk)
                                        .ci(64)
                                        .imul()
                                        .ld(u)
                                        .ci(8)
                                        .imul()
                                        .iadd()
                                        .ld(v)
                                        .iadd();
                                },
                                |f| {
                                    f.ci(0);
                                },
                            );
                        },
                    );
                });
            });
        });

        // per-block IDCT (the STL)
        f.for_in(blk, 0.into(), n_blocks.into(), |f| {
            f.for_in(x, 0.into(), 8.into(), |f| {
                f.for_in(y, 0.into(), 8.into(), |f| {
                    f.cf(0.0).st(acc);
                    f.for_in(u, 0.into(), 8.into(), |f| {
                        f.for_in(v, 0.into(), 8.into(), |f| {
                            f.ld(acc);
                            f.arr_get(coeffs, |f| {
                                f.ld(blk)
                                    .ci(64)
                                    .imul()
                                    .ld(u)
                                    .ci(8)
                                    .imul()
                                    .iadd()
                                    .ld(v)
                                    .iadd();
                            })
                            .i2f();
                            f.arr_get(cos_tab, |f| {
                                f.ld(x).ci(8).imul().ld(u).iadd();
                            })
                            .fmul();
                            f.arr_get(cos_tab, |f| {
                                f.ld(y).ci(8).imul().ld(v).iadd();
                            })
                            .fmul();
                            f.fadd().st(acc);
                        });
                    });
                    // level shift and clamp to [0, 255]
                    f.arr_set(
                        pixels,
                        |f| {
                            f.ld(blk)
                                .ci(64)
                                .imul()
                                .ld(x)
                                .ci(8)
                                .imul()
                                .iadd()
                                .ld(y)
                                .iadd();
                        },
                        |f| {
                            f.ld(acc).cf(128.0).fadd().f2i().ci(0).imax().ci(255).imin();
                        },
                    );
                });
            });
        });

        // image checksum
        f.ci(0).st(sum);
        f.for_in(x, 0.into(), (n_blocks * 64).into(), |f| {
            f.ld(sum)
                .arr_get(pixels, |f| {
                    f.ld(x);
                })
                .iadd()
                .st(sum);
        });
        f.ld(sum).ret();
    });
    b.finish(main).expect("decJpeg builds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvm::{Interp, NullSink};

    #[test]
    fn pixels_stay_in_byte_range() {
        let p = build(DataSize::Small);
        let r = Interp::run(&p, &mut NullSink).unwrap();
        let sum = r.ret.unwrap().as_int().unwrap();
        assert!(sum >= 0);
        assert!(sum <= 3 * 64 * 255, "sum {sum}");
        assert!(sum > 0, "all pixels clamped to zero");
    }
}
