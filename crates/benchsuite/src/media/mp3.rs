//! mp3: MP3 decode core — polyphase subband synthesis windowing.
//! For each granule, 32 subband samples are matrixed through a cosine
//! bank and windowed with a 512-tap FIFO-style MAC — the dominant
//! loops of a real MP3 decoder. Granules form the outer stream loop.

use crate::util::{define_fill_float, new_float_array};
use crate::DataSize;
use tvm::{Program, ProgramBuilder};

const SUBBANDS: i64 = 32;

/// Builds the benchmark.
pub fn build(size: DataSize) -> Program {
    let granules: i64 = size.pick(4, 24, 96);
    let mut b = ProgramBuilder::new();
    let fill = define_fill_float(&mut b);

    let main = b.function("main", 0, true, |f| {
        let (samples, window, synth, pcm) = (f.local(), f.local(), f.local(), f.local());
        let (g, sb, k, acc, sum) = (f.local(), f.local(), f.local(), f.local(), f.local());
        new_float_array(f, samples, granules * SUBBANDS);
        new_float_array(f, window, 512);
        new_float_array(f, synth, SUBBANDS * SUBBANDS);
        new_float_array(f, pcm, granules * SUBBANDS);
        f.ld(samples).ci(0x3B3).call(fill);

        // window coefficients: raised cosine taps
        f.for_in(k, 0.into(), 512.into(), |f| {
            f.arr_set(
                window,
                |f| {
                    f.ld(k);
                },
                |f| {
                    f.ld(k)
                        .i2f()
                        .cf(std::f64::consts::PI / 256.0)
                        .fmul()
                        .fcos()
                        .cf(0.5)
                        .fmul()
                        .cf(0.5)
                        .fadd();
                },
            );
        });
        // synthesis matrix: cos((2k+1)(sb)π/64)
        f.for_in(sb, 0.into(), SUBBANDS.into(), |f| {
            f.for_in(k, 0.into(), SUBBANDS.into(), |f| {
                f.arr_set(
                    synth,
                    |f| {
                        f.ld(sb).ci(SUBBANDS).imul().ld(k).iadd();
                    },
                    |f| {
                        f.ld(k)
                            .ci(2)
                            .imul()
                            .ci(1)
                            .iadd()
                            .ld(sb)
                            .imul()
                            .i2f()
                            .cf(std::f64::consts::PI / 64.0)
                            .fmul()
                            .fcos();
                    },
                );
            });
        });

        // granule loop (the outer stream STL)
        f.for_in(g, 0.into(), granules.into(), |f| {
            f.for_in(sb, 0.into(), SUBBANDS.into(), |f| {
                // matrixing: acc = Σ_k synth[sb][k] * samples[g][k]
                f.cf(0.0).st(acc);
                f.for_in(k, 0.into(), SUBBANDS.into(), |f| {
                    f.ld(acc)
                        .arr_get(synth, |f| {
                            f.ld(sb).ci(SUBBANDS).imul().ld(k).iadd();
                        })
                        .arr_get(samples, |f| {
                            f.ld(g).ci(SUBBANDS).imul().ld(k).iadd();
                        })
                        .fmul()
                        .fadd()
                        .st(acc);
                });
                // windowing: 16 taps at stride 32 through the window
                f.for_in(k, 0.into(), 16.into(), |f| {
                    f.ld(acc)
                        .arr_get(window, |f| {
                            f.ld(k).ci(SUBBANDS).imul().ld(sb).iadd();
                        })
                        .arr_get(samples, |f| {
                            // neighbor tap within this granule
                            f.ld(g)
                                .ci(SUBBANDS)
                                .imul()
                                .ld(k)
                                .ld(sb)
                                .iadd()
                                .ci(SUBBANDS - 1)
                                .iand()
                                .iadd();
                        })
                        .fmul()
                        .fadd()
                        .st(acc);
                });
                f.arr_set(
                    pcm,
                    |f| {
                        f.ld(g).ci(SUBBANDS).imul().ld(sb).iadd();
                    },
                    |f| {
                        f.ld(acc);
                    },
                );
            });
        });

        // output energy checksum
        f.cf(0.0).st(sum);
        f.for_in(k, 0.into(), (granules * SUBBANDS).into(), |f| {
            f.ld(sum)
                .arr_get(pcm, |f| {
                    f.ld(k);
                })
                .fabs()
                .fadd()
                .st(sum);
        });
        f.ld(sum).cf(1000.0).fmul().f2i().ret();
    });
    b.finish(main).expect("mp3 builds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvm::{Interp, NullSink};

    #[test]
    fn synthesis_produces_energy() {
        let p = build(DataSize::Small);
        let r = Interp::run(&p, &mut NullSink).unwrap();
        let energy = r.ret.unwrap().as_int().unwrap();
        assert!(energy > 0, "silent output");
    }
}
