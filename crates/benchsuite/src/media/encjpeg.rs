//! encJpeg: JPEG encode core — 8×8 forward DCT plus quantization over
//! a stream of blocks. Blocks are independent; each block's 2-D DCT
//! is a dense quadruple loop, giving the fine thread sizes Table 6
//! reports for the codecs.

use super::{codec_builder, emit_cos_table};
use crate::util::{new_float_array, new_int_array};
use crate::DataSize;
use tvm::Program;

/// Builds the benchmark.
pub fn build(size: DataSize) -> Program {
    let n_blocks: i64 = size.pick(3, 18, 60);
    let (mut b, fill) = codec_builder();

    let main = b.function("main", 0, true, |f| {
        let (pixels, coeffs, cos_tab, quant) = (f.local(), f.local(), f.local(), f.local());
        let (blk, x, y, u, v, acc, tmp, sum) = (
            f.local(),
            f.local(),
            f.local(),
            f.local(),
            f.local(),
            f.local(),
            f.local(),
            f.local(),
        );
        new_int_array(f, pixels, n_blocks * 64);
        new_int_array(f, coeffs, n_blocks * 64);
        new_float_array(f, cos_tab, 64);
        new_int_array(f, quant, 64);
        f.ld(pixels).ci(0x1A6).ci(256).call(fill);
        emit_cos_table(f, cos_tab, x, u, tmp);
        // quantizer ramp: coarser at high frequency
        f.for_in(u, 0.into(), 8.into(), |f| {
            f.for_in(v, 0.into(), 8.into(), |f| {
                f.arr_set(
                    quant,
                    |f| {
                        f.ld(u).ci(8).imul().ld(v).iadd();
                    },
                    |f| {
                        f.ci(8).ld(u).ld(v).iadd().ci(2).imul().iadd();
                    },
                );
            });
        });

        // per-block FDCT + quantization (the STL)
        f.for_in(blk, 0.into(), n_blocks.into(), |f| {
            f.for_in(u, 0.into(), 8.into(), |f| {
                f.for_in(v, 0.into(), 8.into(), |f| {
                    f.cf(0.0).st(acc);
                    f.for_in(x, 0.into(), 8.into(), |f| {
                        f.for_in(y, 0.into(), 8.into(), |f| {
                            f.ld(acc);
                            f.arr_get(pixels, |f| {
                                f.ld(blk)
                                    .ci(64)
                                    .imul()
                                    .ld(x)
                                    .ci(8)
                                    .imul()
                                    .iadd()
                                    .ld(y)
                                    .iadd();
                            })
                            .i2f()
                            .cf(128.0)
                            .fsub();
                            f.arr_get(cos_tab, |f| {
                                f.ld(x).ci(8).imul().ld(u).iadd();
                            })
                            .fmul();
                            f.arr_get(cos_tab, |f| {
                                f.ld(y).ci(8).imul().ld(v).iadd();
                            })
                            .fmul();
                            f.fadd().st(acc);
                        });
                    });
                    // quantize
                    f.arr_set(
                        coeffs,
                        |f| {
                            f.ld(blk)
                                .ci(64)
                                .imul()
                                .ld(u)
                                .ci(8)
                                .imul()
                                .iadd()
                                .ld(v)
                                .iadd();
                        },
                        |f| {
                            f.ld(acc)
                                .arr_get(quant, |f| {
                                    f.ld(u).ci(8).imul().ld(v).iadd();
                                })
                                .i2f()
                                .fdiv()
                                .f2i();
                        },
                    );
                });
            });
        });

        // checksum of quantized coefficients
        f.ci(0).st(sum);
        f.for_in(x, 0.into(), (n_blocks * 64).into(), |f| {
            f.ld(sum)
                .arr_get(coeffs, |f| {
                    f.ld(x);
                })
                .fabs_int()
                .iadd()
                .st(sum);
        });
        f.ld(sum).ret();
    });
    b.finish(main).expect("encJpeg builds")
}

trait AbsInt {
    fn fabs_int(&mut self) -> &mut Self;
}

impl AbsInt for tvm::FnBuilder {
    /// |top| for an int on the stack: `(x ^ (x>>63)) - (x>>63)`.
    fn fabs_int(&mut self) -> &mut Self {
        self.dup().ci(63).ishr().swap();
        // stack: [s, x] -> want (x ^ s) - s
        self.dup().ci(63).ishr(); // [s, x, s]
        self.ixor(); // [s, x^s]
        self.swap().isub() // [(x^s) - s]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DataSize;
    use tvm::{Interp, NullSink};

    #[test]
    fn dct_energy_is_positive_and_bounded() {
        let p = build(DataSize::Small);
        let r = Interp::run(&p, &mut NullSink).unwrap();
        let sum = r.ret.unwrap().as_int().unwrap();
        assert!(sum > 0, "all coefficients quantized to zero");
        // coarse bound: 3 blocks, |coeff| <= 1024/8
        assert!(sum < 3 * 64 * 200, "sum {sum}");
    }
}
