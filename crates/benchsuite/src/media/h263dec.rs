//! h263dec: H.263 decode core — motion compensation plus residual
//! addition over the macroblocks of a frame. Each macroblock copies a
//! motion-displaced 16×16 region from the reference frame and adds a
//! decoded residual with clamping; macroblocks are independent.

use super::codec_builder;
use crate::util::new_int_array;
use crate::DataSize;
use tvm::Program;

const MB: i64 = 16;

/// Builds the benchmark.
pub fn build(size: DataSize) -> Program {
    // frame dimensions in macroblocks
    let (mbx, mby): (i64, i64) = size.pick((3, 2), (11, 3), (22, 9));
    let w = mbx * MB;
    let h = mby * MB;
    let (mut b, fill) = codec_builder();

    let main = b.function("main", 0, true, |f| {
        let (reference, cur, resid, mvs) = (f.local(), f.local(), f.local(), f.local());
        let (mb, px, py, dx, dy, sx, sy, sum) = (
            f.local(),
            f.local(),
            f.local(),
            f.local(),
            f.local(),
            f.local(),
            f.local(),
            f.local(),
        );
        new_int_array(f, reference, w * h);
        new_int_array(f, cur, w * h);
        new_int_array(f, resid, w * h);
        new_int_array(f, mvs, mbx * mby * 2);
        f.ld(reference).ci(0x263).ci(256).call(fill);
        f.ld(resid).ci(0x1263).ci(32).call(fill);
        f.ld(mvs).ci(0x3263).ci(7).call(fill);

        // macroblock loop (the STL)
        f.for_in(mb, 0.into(), (mbx * mby).into(), |f| {
            // motion vector, biased to [-3, 3]
            f.arr_get(mvs, |f| {
                f.ld(mb).ci(2).imul();
            })
            .ci(3)
            .isub()
            .st(dx);
            f.arr_get(mvs, |f| {
                f.ld(mb).ci(2).imul().ci(1).iadd();
            })
            .ci(3)
            .isub()
            .st(dy);
            f.for_in(py, 0.into(), MB.into(), |f| {
                f.for_in(px, 0.into(), MB.into(), |f| {
                    // source pixel with clamped coordinates
                    f.ld(mb)
                        .ci(mbx)
                        .irem()
                        .ci(MB)
                        .imul()
                        .ld(px)
                        .iadd()
                        .ld(dx)
                        .iadd();
                    f.ci(0).imax().ci(w - 1).imin().st(sx);
                    f.ld(mb)
                        .ci(mbx)
                        .idiv()
                        .ci(MB)
                        .imul()
                        .ld(py)
                        .iadd()
                        .ld(dy)
                        .iadd();
                    f.ci(0).imax().ci(h - 1).imin().st(sy);
                    // cur = clamp(ref[sy][sx] + resid - 16)
                    f.arr_set(
                        cur,
                        |f| {
                            f.ld(mb).ci(mbx).idiv().ci(MB).imul().ld(py).iadd();
                            f.ci(w).imul();
                            f.ld(mb).ci(mbx).irem().ci(MB).imul().ld(px).iadd();
                            f.iadd();
                        },
                        |f| {
                            f.arr_get(reference, |f| {
                                f.ld(sy).ci(w).imul().ld(sx).iadd();
                            });
                            f.arr_get(resid, |f| {
                                f.ld(mb).ci(mbx).idiv().ci(MB).imul().ld(py).iadd();
                                f.ci(w).imul();
                                f.ld(mb).ci(mbx).irem().ci(MB).imul().ld(px).iadd();
                                f.iadd();
                            })
                            .ci(16)
                            .isub()
                            .iadd()
                            .ci(0)
                            .imax()
                            .ci(255)
                            .imin();
                        },
                    );
                });
            });
        });

        // frame checksum
        f.ci(0).st(sum);
        f.for_in(px, 0.into(), (w * h).into(), |f| {
            f.ld(sum)
                .arr_get(cur, |f| {
                    f.ld(px);
                })
                .iadd()
                .st(sum);
        });
        f.ld(sum).ret();
    });
    b.finish(main).expect("h263dec builds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvm::{Interp, NullSink};

    #[test]
    fn reconstructed_frame_is_byte_ranged() {
        let p = build(DataSize::Small);
        let r = Interp::run(&p, &mut NullSink).unwrap();
        let sum = r.ret.unwrap().as_int().unwrap();
        let pixels = 48 * 32;
        assert!(sum > 0);
        assert!(sum <= pixels * 255, "sum {sum}");
        // average pixel near the reference average (~127) shifted by
        // the residual bias (+16-16 ≈ 0)
        let avg = sum / pixels;
        assert!(avg > 60 && avg < 200, "avg {avg}");
    }
}
