//! # benchsuite — the 26 workloads of the TEST paper's Table 6
//!
//! Re-implementations of the benchmarks the paper evaluates — drawn
//! from jBYTEmark, SPECjvm98, Java Grande and a multimedia set — as
//! real kernels on the TraceVM builder. Each program is a genuine
//! computation (the heap sort sorts, the FFT transforms, the IDCT
//! inverts the DCT) whose *loop and dependency structure* mirrors the
//! original: the paper's observations (which loop level gets selected,
//! where speculative buffers overflow, which programs stay serial)
//! depend on that structure, not on the exact instruction mix.
//!
//! Data-set-sensitive programs (Table 6 column b) accept a
//! [`DataSize`]; the paper's §6.1 observation — larger data sets push
//! selection toward inner loops because outer iterations overflow the
//! speculative buffers — is reproducible by sweeping it.
//!
//! ```
//! use benchsuite::{all, DataSize};
//! use tvm::{Interp, NullSink};
//!
//! let suite = all();
//! assert_eq!(suite.len(), 26);
//! let huffman = benchsuite::by_name("Huffman").unwrap();
//! let program = (huffman.build)(DataSize::Small);
//! let r = Interp::run(&program, &mut NullSink).unwrap();
//! assert!(r.cycles > 0);
//! ```

pub mod float;
pub mod integer;
pub mod media;
pub mod util;

use tvm::Program;

/// Benchmark category (the three groups of Table 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Category {
    /// General integer programs.
    Integer,
    /// Fortran-like floating point programs.
    FloatingPoint,
    /// Multimedia codecs.
    Multimedia,
}

impl std::fmt::Display for Category {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Category::Integer => write!(f, "Integer"),
            Category::FloatingPoint => write!(f, "Floating point"),
            Category::Multimedia => write!(f, "Multimedia"),
        }
    }
}

/// Workload scale. `Small` keeps debug-mode tests fast; `Default`
/// approximates the paper's data sets (51×51 Assignment, 101×101
/// LuFactor, 1024-point FFT, …); `Large` exercises the data-set
/// sensitivity experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataSize {
    /// Reduced inputs for fast tests.
    Small,
    /// The paper's published input sizes.
    Default,
    /// Scaled-up inputs for sensitivity studies.
    Large,
}

impl DataSize {
    /// Picks one of three values by size.
    pub fn pick<T>(self, small: T, default: T, large: T) -> T {
        match self {
            DataSize::Small => small,
            DataSize::Default => default,
            DataSize::Large => large,
        }
    }
}

/// One benchmark of the suite.
#[derive(Debug, Clone, Copy)]
pub struct Benchmark {
    /// Name as printed in Table 6.
    pub name: &'static str,
    /// Category group.
    pub category: Category,
    /// One-line description (Table 6's second column).
    pub description: &'static str,
    /// Builds the program at a given scale.
    pub build: fn(DataSize) -> Program,
    /// Table 6 column (a): could a traditional parallelizing compiler
    /// analyze it (affine arrays, no dynamic objects, bounded loops)?
    pub analyzable: bool,
    /// Table 6 column (b): do selected decompositions change with the
    /// data-set size?
    pub data_sensitive: bool,
}

/// The full suite, in Table 6 order.
pub fn all() -> Vec<Benchmark> {
    let mut v = integer::benchmarks();
    v.extend(float::benchmarks());
    v.extend(media::benchmarks());
    v
}

/// Looks up a benchmark by its Table 6 name (case-sensitive).
pub fn by_name(name: &str) -> Option<Benchmark> {
    all().into_iter().find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_matches_table6_inventory() {
        let suite = all();
        assert_eq!(suite.len(), 26);
        assert_eq!(
            suite
                .iter()
                .filter(|b| b.category == Category::Integer)
                .count(),
            14
        );
        assert_eq!(
            suite
                .iter()
                .filter(|b| b.category == Category::FloatingPoint)
                .count(),
            7
        );
        assert_eq!(
            suite
                .iter()
                .filter(|b| b.category == Category::Multimedia)
                .count(),
            5
        );
    }

    #[test]
    fn names_are_unique() {
        let suite = all();
        let mut names: Vec<_> = suite.iter().map(|b| b.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 26);
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("Huffman").is_some());
        assert!(by_name("LuFactor").is_some());
        assert!(by_name("nope").is_none());
    }
}
