//! jLex: lexer-generator core — NFA→DFA subset construction.
//!
//! DFA states are bit-sets of NFA states (64-bit masks). The worklist
//! loop is inherently serial (head/count cursor chain, rejected by the
//! scalar screen), but the inner loops — computing the successor set
//! for each symbol by scanning NFA states, and the linear dedup search
//! over existing DFA states — are read-mostly and parallelizable,
//! matching the paper's selected-loop heights for jLex.

use crate::util::{define_fill_int, new_int_array};
use crate::DataSize;
use tvm::{Cond, Program, ProgramBuilder};

/// Builds the benchmark.
pub fn build(size: DataSize) -> Program {
    let n_nfa: i64 = size.pick(24, 48, 63); // NFA states (fit a 64-bit set)
    let n_syms: i64 = size.pick(4, 8, 12);
    let max_dfa: i64 = size.pick(96, 400, 1200);
    let mut b = ProgramBuilder::new();
    let fill = define_fill_int(&mut b);

    let main = b.function("main", 0, true, |f| {
        let (trans, dstates, dtrans) = (f.local(), f.local(), f.local());
        let (head, count, sym, s, set, next, j, found, sum) = (
            f.local(),
            f.local(),
            f.local(),
            f.local(),
            f.local(),
            f.local(),
            f.local(),
            f.local(),
            f.local(),
        );
        new_int_array(f, trans, n_nfa * n_syms);
        new_int_array(f, dstates, max_dfa);
        new_int_array(f, dtrans, max_dfa * n_syms);
        f.ld(trans).ci(0x1e4).ci(n_nfa).call(fill);

        // start state: NFA state 0
        f.arr_set(
            dstates,
            |f| {
                f.ci(0);
            },
            |f| {
                f.ci(1);
            },
        );
        f.ci(0).st(head);
        f.ci(1).st(count);

        // worklist loop (serial by construction)
        f.while_icmp(
            Cond::Lt,
            |f| {
                f.ld(head).ld(count);
            },
            |f| {
                f.arr_get(dstates, |f| {
                    f.ld(head);
                })
                .st(set);
                f.for_in(sym, 0.into(), n_syms.into(), |f| {
                    // successor set: union of trans[s][sym] for s in set
                    f.ci(0).st(next);
                    f.for_in(s, 0.into(), n_nfa.into(), |f| {
                        f.if_icmp(
                            Cond::Ne,
                            |f| {
                                f.ld(set).ld(s).ishr().ci(1).iand().ci(0);
                            },
                            |f| {
                                f.ld(next)
                                    .ci(1)
                                    .arr_get(trans, |f| {
                                        f.ld(s).ci(n_syms).imul().ld(sym).iadd();
                                    })
                                    .ishl()
                                    .ior()
                                    .st(next);
                            },
                        );
                    });
                    // dedup: linear scan over existing DFA states
                    f.ci(-1).st(found);
                    f.for_in(j, 0.into(), count.into(), |f| {
                        f.if_icmp(
                            Cond::Eq,
                            |f| {
                                f.arr_get(dstates, |f| {
                                    f.ld(j);
                                })
                                .ld(next);
                            },
                            |f| {
                                f.ld(j).st(found);
                            },
                        );
                    });
                    f.if_icmp(
                        Cond::Eq,
                        |f| {
                            f.ld(found).ci(-1);
                        },
                        |f| {
                            // new DFA state (if room)
                            f.if_icmp(
                                Cond::Lt,
                                |f| {
                                    f.ld(count).ci(max_dfa);
                                },
                                |f| {
                                    f.arr_set(
                                        dstates,
                                        |f| {
                                            f.ld(count);
                                        },
                                        |f| {
                                            f.ld(next);
                                        },
                                    );
                                    f.ld(count).st(found);
                                    f.inc(count, 1);
                                },
                            );
                        },
                    );
                    f.arr_set(
                        dtrans,
                        |f| {
                            f.ld(head).ci(n_syms).imul().ld(sym).iadd();
                        },
                        |f| {
                            f.ld(found);
                        },
                    );
                });
                f.inc(head, 1);
            },
        );

        // checksum: DFA size and a transition digest
        f.ci(0).st(sum);
        f.for_in(j, 0.into(), count.into(), |f| {
            f.for_in(sym, 0.into(), n_syms.into(), |f| {
                f.ld(sum)
                    .arr_get(dtrans, |f| {
                        f.ld(j).ci(n_syms).imul().ld(sym).iadd();
                    })
                    .iadd()
                    .ci(0xFFFF_FFFF)
                    .iand()
                    .st(sum);
            });
        });
        f.ld(count).ci(1_000_000).imul().ld(sum).iadd().ret();
    });
    b.finish(main).expect("jLex builds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvm::{Interp, NullSink};

    #[test]
    fn subset_construction_builds_a_dfa() {
        let p = build(DataSize::Small);
        let r = Interp::run(&p, &mut NullSink).unwrap();
        let v = r.ret.unwrap().as_int().unwrap();
        let count = v / 1_000_000;
        assert!(count > 1, "DFA has {count} states");
        assert!(count <= 96);
    }
}
