//! jess: expert-system rule matching (SPECjvm98 202), reduced to the
//! RETE network's two hot phases.
//!
//! * **Alpha pass** — every pattern filters the working memory of fact
//!   triples into its own alpha memory (independent across patterns:
//!   dynamic parallelism with disjoint writes);
//! * **Beta join** — each rule joins its two patterns' alpha memories
//!   on a shared variable (`fact1.object == fact2.subject`) and fires
//!   matches onto a shared agenda through a single cursor — the
//!   occasional serializing dependency that keeps jess from perfect
//!   speedup in the paper's Figure 10.

use crate::util::{define_fill_int, new_int_array};
use crate::DataSize;
use tvm::{Cond, Program, ProgramBuilder};

/// Alpha-memory capacity per pattern.
const ALPHA_CAP: i64 = 48;

/// Builds the benchmark.
pub fn build(size: DataSize) -> Program {
    let n_facts: i64 = size.pick(60, 300, 1200);
    let n_rules: i64 = size.pick(40, 170, 700);
    let n_patterns = n_rules * 2;
    let mut b = ProgramBuilder::new();
    let fill = define_fill_int(&mut b);

    let main = b.function("main", 0, true, |f| {
        let (facts, patterns, alpha, alpha_n, agenda, matches) = (
            f.local(),
            f.local(),
            f.local(),
            f.local(),
            f.local(),
            f.local(),
        );
        let (r, p, fa, field, want, cnt) = (
            f.local(),
            f.local(),
            f.local(),
            f.local(),
            f.local(),
            f.local(),
        );
        let (i1, i2, n1, n2, f1, f2, acount, sum) = (
            f.local(),
            f.local(),
            f.local(),
            f.local(),
            f.local(),
            f.local(),
            f.local(),
            f.local(),
        );
        // fact = (subject, relation, object); pattern = (field, value)
        new_int_array(f, facts, n_facts * 3);
        new_int_array(f, patterns, n_patterns * 2);
        new_int_array(f, alpha, n_patterns * ALPHA_CAP);
        new_int_array(f, alpha_n, n_patterns);
        new_int_array(f, agenda, n_facts * 8);
        new_int_array(f, matches, n_rules);
        f.ld(facts).ci(0xFAC7).ci(12).call(fill);
        f.ld(patterns).ci(0x701E).ci(12).call(fill);
        // pattern field selectors must be 0..3
        f.for_in(p, 0.into(), n_patterns.into(), |f| {
            f.arr_set(
                patterns,
                |f| {
                    f.ld(p).ci(2).imul();
                },
                |f| {
                    f.arr_get(patterns, |f| {
                        f.ld(p).ci(2).imul();
                    })
                    .ci(3)
                    .irem();
                },
            );
        });

        // ---- alpha pass: one thread per pattern, disjoint memories ----
        f.for_in(p, 0.into(), n_patterns.into(), |f| {
            f.arr_get(patterns, |f| {
                f.ld(p).ci(2).imul();
            })
            .st(field);
            f.arr_get(patterns, |f| {
                f.ld(p).ci(2).imul().ci(1).iadd();
            })
            .st(want);
            f.ci(0).st(cnt); // private alpha count
            f.for_in(fa, 0.into(), n_facts.into(), |f| {
                f.if_icmp(
                    Cond::Eq,
                    |f| {
                        f.arr_get(facts, |f| {
                            f.ld(fa).ci(3).imul().ld(field).iadd();
                        })
                        .ld(want);
                    },
                    |f| {
                        f.if_icmp(
                            Cond::Lt,
                            |f| {
                                f.ld(cnt).ci(ALPHA_CAP);
                            },
                            |f| {
                                f.arr_set(
                                    alpha,
                                    |f| {
                                        f.ld(p).ci(ALPHA_CAP).imul().ld(cnt).iadd();
                                    },
                                    |f| {
                                        f.ld(fa);
                                    },
                                );
                                f.inc(cnt, 1);
                            },
                        );
                    },
                );
            });
            f.arr_set(
                alpha_n,
                |f| {
                    f.ld(p);
                },
                |f| {
                    f.ld(cnt);
                },
            );
        });

        // ---- beta join: one thread per rule ----
        f.ci(0).st(acount);
        f.for_in(r, 0.into(), n_rules.into(), |f| {
            f.arr_get(alpha_n, |f| {
                f.ld(r).ci(2).imul();
            })
            .st(n1);
            f.arr_get(alpha_n, |f| {
                f.ld(r).ci(2).imul().ci(1).iadd();
            })
            .st(n2);
            f.for_in(i1, 0.into(), n1.into(), |f| {
                f.arr_get(alpha, |f| {
                    f.ld(r).ci(2).imul().ci(ALPHA_CAP).imul().ld(i1).iadd();
                })
                .st(f1);
                f.for_in(i2, 0.into(), n2.into(), |f| {
                    f.arr_get(alpha, |f| {
                        f.ld(r)
                            .ci(2)
                            .imul()
                            .ci(1)
                            .iadd()
                            .ci(ALPHA_CAP)
                            .imul()
                            .ld(i2)
                            .iadd();
                    })
                    .st(f2);
                    // join test: distinct facts, f1.object == f2.subject
                    f.if_icmp(
                        Cond::Ne,
                        |f| {
                            f.ld(f1).ld(f2);
                        },
                        |f| {
                            f.if_icmp(
                                Cond::Eq,
                                |f| {
                                    f.arr_get(facts, |f| {
                                        f.ld(f1).ci(3).imul().ci(2).iadd();
                                    });
                                    f.arr_get(facts, |f| {
                                        f.ld(f2).ci(3).imul();
                                    });
                                },
                                |f| {
                                    // fire: per-rule count and shared agenda
                                    f.arr_set(
                                        matches,
                                        |f| {
                                            f.ld(r);
                                        },
                                        |f| {
                                            f.arr_get(matches, |f| {
                                                f.ld(r);
                                            })
                                            .ci(1)
                                            .iadd();
                                        },
                                    );
                                    f.arr_set(
                                        agenda,
                                        |f| {
                                            f.ld(acount);
                                        },
                                        |f| {
                                            f.ld(r).ci(1000).imul().ld(f1).iadd();
                                        },
                                    );
                                    f.ld(acount)
                                        .ci(1)
                                        .iadd()
                                        .ld(agenda)
                                        .arraylen()
                                        .ci(1)
                                        .isub()
                                        .imin()
                                        .st(acount);
                                },
                            );
                        },
                    );
                });
            });
        });

        // checksum over match counts and the agenda cursor
        f.ci(0).st(sum);
        f.for_in(r, 0.into(), n_rules.into(), |f| {
            f.ld(sum)
                .arr_get(matches, |f| {
                    f.ld(r);
                })
                .iadd()
                .st(sum);
        });
        f.ld(sum).ci(100000).imul().ld(acount).iadd().ret();
    });
    b.finish(main).expect("jess builds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvm::{Interp, NullSink};

    #[test]
    fn rete_join_fires_rules() {
        let p = build(DataSize::Small);
        let r = Interp::run(&p, &mut NullSink).unwrap();
        let v = r.ret.unwrap().as_int().unwrap();
        let total_matches = v / 100000;
        let agenda = v % 100000;
        // 12-valued fields: each pattern admits ~1/12 of 60 facts
        // (~5), each join admits ~1/12 of the 25 pairs (~2 per rule)
        assert!(total_matches > 0, "no joins fired");
        assert!(agenda > 0);
        assert!(total_matches < 40 * 48, "implausibly many matches");
    }

    #[test]
    fn deterministic() {
        let p = build(DataSize::Small);
        let a = Interp::run(&p, &mut NullSink).unwrap();
        let b2 = Interp::run(&p, &mut NullSink).unwrap();
        assert_eq!(a.ret, b2.ret);
    }
}
