//! BitOps: bit-array manipulation (jBYTEmark BitfieldOperations).
//!
//! A packed bit array (64 bits per word) is hit with a sequence of
//! pseudo-random range operations (set / clear / toggle), then scanned
//! with a popcount pass. Range operations at different offsets mostly
//! touch different words but occasionally collide — the kind of
//! irregular, data-dependent sharing static analysis cannot
//! disambiguate. The popcount inner `while` chews the classic
//! `x &= x - 1` serial chain, which the scalar screen rejects.

use crate::util::{hash_top, new_int_array};
use crate::DataSize;
use tvm::{Cond, Program, ProgramBuilder};

/// Builds the benchmark.
pub fn build(size: DataSize) -> Program {
    let n_words: i64 = size.pick(64, 512, 2048);
    let n_ops: i64 = size.pick(300, 2000, 8000);
    let n_bits = n_words * 64;
    let mut b = ProgramBuilder::new();

    let main = b.function("main", 0, true, |f| {
        let bits = f.local();
        let (op, start, len, k, x, mode, count, w) = (
            f.local(),
            f.local(),
            f.local(),
            f.local(),
            f.local(),
            f.local(),
            f.local(),
            f.local(),
        );
        new_int_array(f, bits, n_words);

        // range operations: set / clear / toggle pseudo-random spans
        f.for_in(op, 0.into(), n_ops.into(), |f| {
            f.ld(op).ci(0x9e37_79b9).imul();
            hash_top(f);
            f.st(x);
            f.ld(x).ci(13).iushr().ci(n_bits - 256).irem().st(start);
            f.ld(x).ci(3).iushr().ci(200).irem().ci(8).iadd().st(len);
            f.ld(x).ci(29).iushr().ci(3).irem().st(mode);
            f.ld(start).ld(len).iadd().st(len); // len := end
            f.for_in(k, start.into(), len.into(), |f| {
                // word index k>>6, mask 1<<(k&63)
                f.if_else_icmp(
                    Cond::Eq,
                    |f| {
                        f.ld(mode).ci(0);
                    },
                    |f| {
                        // set
                        f.arr_set(
                            bits,
                            |f| {
                                f.ld(k).ci(6).ishr();
                            },
                            |f| {
                                f.arr_get(bits, |f| {
                                    f.ld(k).ci(6).ishr();
                                })
                                .ci(1)
                                .ld(k)
                                .ci(63)
                                .iand()
                                .ishl()
                                .ior();
                            },
                        );
                    },
                    |f| {
                        f.if_else_icmp(
                            Cond::Eq,
                            |f| {
                                f.ld(mode).ci(1);
                            },
                            |f| {
                                // clear
                                f.arr_set(
                                    bits,
                                    |f| {
                                        f.ld(k).ci(6).ishr();
                                    },
                                    |f| {
                                        f.arr_get(bits, |f| {
                                            f.ld(k).ci(6).ishr();
                                        })
                                        .ci(1)
                                        .ld(k)
                                        .ci(63)
                                        .iand()
                                        .ishl()
                                        .ci(-1)
                                        .ixor()
                                        .iand();
                                    },
                                );
                            },
                            |f| {
                                // toggle
                                f.arr_set(
                                    bits,
                                    |f| {
                                        f.ld(k).ci(6).ishr();
                                    },
                                    |f| {
                                        f.arr_get(bits, |f| {
                                            f.ld(k).ci(6).ishr();
                                        })
                                        .ci(1)
                                        .ld(k)
                                        .ci(63)
                                        .iand()
                                        .ishl()
                                        .ixor();
                                    },
                                );
                            },
                        );
                    },
                );
            });
        });

        // popcount pass: the inner while is a serial x &= x-1 chain
        f.ci(0).st(count);
        f.for_in(w, 0.into(), n_words.into(), |f| {
            f.arr_get(bits, |f| {
                f.ld(w);
            })
            .st(x);
            f.while_icmp(
                Cond::Ne,
                |f| {
                    f.ld(x).ci(0);
                },
                |f| {
                    f.ld(x).ld(x).ci(1).isub().iand().st(x);
                    f.inc(count, 1);
                },
            );
        });
        f.ld(count).ret();
    });
    b.finish(main).expect("bitops builds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvm::{Interp, NullSink};

    #[test]
    fn popcount_is_plausible() {
        let p = build(DataSize::Small);
        let r = Interp::run(&p, &mut NullSink).unwrap();
        let count = r.ret.unwrap().as_int().unwrap();
        // 300 ops averaging ~100 bits each leave a substantial but
        // partial population
        assert!(count > 100, "count {count}");
        assert!(count < 64 * 64, "count {count}");
    }
}
