//! monteCarlo: Monte Carlo π estimation (Java Grande style).
//!
//! Each sample derives its random point from a *hashed* counter — the
//! standard parallel-Monte-Carlo trick that avoids a serializing RNG
//! state — walks a short multi-step path, and accumulates a hit count
//! through a sum reduction the speculative compiler can eliminate.

use crate::util::hash_top;
use crate::DataSize;
use tvm::{Cond, Program, ProgramBuilder};

const SCALE: i64 = 1 << 20;

/// Builds the benchmark.
pub fn build(size: DataSize) -> Program {
    let samples: i64 = size.pick(400, 4000, 16000);
    let path_steps: i64 = 4;
    let mut b = ProgramBuilder::new();

    let main = b.function("main", 0, true, |f| {
        let (s, k, x, y, h, hits) = (
            f.local(),
            f.local(),
            f.local(),
            f.local(),
            f.local(),
            f.local(),
        );
        f.ci(0).st(hits);
        f.for_in(s, 0.into(), samples.into(), |f| {
            // per-sample seed from the counter
            f.ld(s).ci(0x9E37_79B9_7F4A_7C15u64 as i64).imul();
            hash_top(f);
            f.st(h);
            f.ld(h).ci(22).iushr().ci(SCALE).irem().st(x);
            f.ld(h).ci(3).iushr().ci(SCALE).irem().st(y);
            // a short random walk before the membership test
            f.for_in(k, 0.into(), path_steps.into(), |f| {
                f.ld(h).ld(k).iadd();
                hash_top(f);
                f.st(h);
                f.ld(x)
                    .ld(h)
                    .ci(40)
                    .iushr()
                    .ci(1024)
                    .irem()
                    .iadd()
                    .ci(512)
                    .isub()
                    .st(x);
                f.ld(y)
                    .ld(h)
                    .ci(50)
                    .iushr()
                    .ci(1024)
                    .irem()
                    .iadd()
                    .ci(512)
                    .isub()
                    .st(y);
            });
            // clamp into [0, SCALE)
            f.ld(x).ci(0).imax().ci(SCALE - 1).imin().st(x);
            f.ld(y).ci(0).imax().ci(SCALE - 1).imin().st(y);
            // inside the quarter circle?
            f.if_icmp(
                Cond::Le,
                |f| {
                    f.ld(x).ld(x).imul().ld(y).ld(y).imul().iadd();
                    f.ci(SCALE - 1).ci(SCALE - 1).imul();
                },
                |f| {
                    f.ld(hits).ci(1).iadd().st(hits);
                },
            );
        });
        f.ld(hits).ret();
    });
    b.finish(main).expect("monteCarlo builds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvm::{Interp, NullSink};

    #[test]
    fn hit_ratio_approximates_quarter_pi() {
        let p = build(DataSize::Small);
        let r = Interp::run(&p, &mut NullSink).unwrap();
        let hits = r.ret.unwrap().as_int().unwrap() as f64;
        let ratio = hits / 400.0;
        // π/4 ≈ 0.785; allow generous sampling noise
        assert!(ratio > 0.60 && ratio < 0.95, "ratio {ratio}");
    }
}
