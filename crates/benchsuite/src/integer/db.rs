//! db: in-memory database operations (SPECjvm98 209).
//!
//! A table of records receives a stream of lookup/update operations —
//! binary searches over a sorted key column followed by value
//! updates — and a final insertion-sort pass over a result buffer.
//! Lookups at different keys mostly touch different records (dynamic
//! parallelism), the binary-search `while` is a serial `lo/hi` chain
//! the screen rejects, and the sort pass is the significant serial
//! region the paper notes limits db's total speedup.

use crate::util::{hash_top, new_int_array};
use crate::DataSize;
use tvm::{Cond, ElemKind, Program, ProgramBuilder};

/// Builds the benchmark. Default record count follows the paper's
/// `db` data set ("5000.").
pub fn build(size: DataSize) -> Program {
    let n_rec: i64 = size.pick(500, 5000, 20000);
    let n_ops: i64 = size.pick(300, 2500, 10000);
    let sort_n: i64 = size.pick(60, 220, 500);
    let mut b = ProgramBuilder::new();
    let stats_class = b.class(&[ElemKind::Int]);

    let main = b.function("main", 0, true, |f| {
        let (keys, vals, res, stats) = (f.local(), f.local(), f.local(), f.local());
        let (i, op, k, lo, hi, mid, j, tmp, sum) = (
            f.local(),
            f.local(),
            f.local(),
            f.local(),
            f.local(),
            f.local(),
            f.local(),
            f.local(),
            f.local(),
        );
        new_int_array(f, keys, n_rec);
        new_int_array(f, vals, n_rec);
        new_int_array(f, res, sort_n);

        // sorted keys: key[i] = 3*i + 7
        f.for_in(i, 0.into(), n_rec.into(), |f| {
            f.arr_set(
                keys,
                |f| {
                    f.ld(i);
                },
                |f| {
                    f.ld(i).ci(3).imul().ci(7).iadd();
                },
            );
        });

        // operation stream: binary search + update
        f.for_in(op, 0.into(), n_ops.into(), |f| {
            f.ld(op).ci(0x517c_c1b7).imul();
            hash_top(f);
            f.ci(20).iushr().ci(3 * n_rec).irem().st(k);
            f.ci(0).st(lo);
            f.ci(n_rec).st(hi);
            // while (lo < hi) { mid = (lo+hi)/2; ... }  — serial chain
            f.while_icmp(
                Cond::Lt,
                |f| {
                    f.ld(lo).ld(hi);
                },
                |f| {
                    f.ld(lo).ld(hi).iadd().ci(2).idiv().st(mid);
                    f.if_else_icmp(
                        Cond::Lt,
                        |f| {
                            f.arr_get(keys, |f| {
                                f.ld(mid);
                            })
                            .ld(k);
                        },
                        |f| {
                            f.ld(mid).ci(1).iadd().st(lo);
                        },
                        |f| {
                            f.ld(mid).st(hi);
                        },
                    );
                },
            );
            // update the found record's value
            f.if_icmp(
                Cond::Lt,
                |f| {
                    f.ld(lo).ci(n_rec);
                },
                |f| {
                    f.arr_set(
                        vals,
                        |f| {
                            f.ld(lo);
                        },
                        |f| {
                            f.arr_get(vals, |f| {
                                f.ld(lo);
                            })
                            .ci(1)
                            .iadd();
                        },
                    );
                },
            );
        });

        // result buffer + insertion sort (the serial phase)
        f.for_in(i, 0.into(), sort_n.into(), |f| {
            f.arr_set(
                res,
                |f| {
                    f.ld(i);
                },
                |f| {
                    f.arr_get(vals, |f| {
                        f.ld(i).ci(37).imul().ci(n_rec).irem();
                    })
                    .ci(1000)
                    .imul()
                    .ld(i)
                    .iadd();
                },
            );
        });
        f.for_in(i, 1.into(), sort_n.into(), |f| {
            f.arr_get(res, |f| {
                f.ld(i);
            })
            .st(tmp);
            f.ld(i).st(j);
            // while (j > 0 && res[j-1] > tmp) { res[j] = res[j-1]; j--; }
            let head = f.new_label();
            let exit = f.new_label();
            f.bind(head);
            f.ld(j).ci(0).br_icmp(Cond::Le, exit);
            f.arr_get(res, |f| {
                f.ld(j).ci(1).isub();
            });
            f.ld(tmp);
            f.br_icmp(Cond::Le, exit);
            f.arr_set(
                res,
                |f| {
                    f.ld(j);
                },
                |f| {
                    f.arr_get(res, |f| {
                        f.ld(j).ci(1).isub();
                    });
                },
            );
            f.inc(j, -1);
            f.goto(head);
            f.bind(exit);
            f.arr_set(
                res,
                |f| {
                    f.ld(j);
                },
                |f| {
                    f.ld(tmp);
                },
            );
        });

        // aggregation pass: a running balance threaded through the
        // value column — the genuinely serial report phase of a
        // database workload (each row's running total feeds the next)
        f.for_in(i, 1.into(), n_rec.into(), |f| {
            f.arr_set(
                vals,
                |f| {
                    f.ld(i);
                },
                |f| {
                    f.arr_get(vals, |f| {
                        f.ld(i).ci(1).isub();
                    });
                    f.arr_get(vals, |f| {
                        f.ld(i);
                    })
                    .iadd()
                    .arr_get(keys, |f| {
                        f.ld(i);
                    })
                    .iadd()
                    .ci(0x00FF_FFFF)
                    .iand();
                },
            );
        });

        // grand total: stats.total += vals[i] over the whole value
        // column — a field reduction through a stats record. The
        // static screen demotes it as written (a guaranteed field
        // recurrence); the loop-rescue delta rewrite recovers it
        f.newobject(stats_class).st(stats);
        f.for_in(i, 0.into(), n_rec.into(), |f| {
            f.ld(stats)
                .ld(stats)
                .getfield(0)
                .arr_get(vals, |f| {
                    f.ld(i);
                })
                .iadd()
                .putfield(0);
        });

        // checksum: sorted-order inversions (must be zero) in the high
        // bits, the grand total's low 16 bits below them
        f.ci(0).st(sum);
        f.for_in(i, 1.into(), sort_n.into(), |f| {
            f.if_icmp(
                Cond::Gt,
                |f| {
                    f.arr_get(res, |f| {
                        f.ld(i).ci(1).isub();
                    })
                    .arr_get(res, |f| {
                        f.ld(i);
                    });
                },
                |f| {
                    f.inc(sum, 1);
                },
            );
        });
        f.ld(sum)
            .ci(65536)
            .imul()
            .ld(stats)
            .getfield(0)
            .ci(0xFFFF)
            .iand()
            .iadd()
            .ret();
    });
    b.finish(main).expect("db builds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvm::{Interp, NullSink};

    #[test]
    fn sort_leaves_no_inversions() {
        let p = build(DataSize::Small);
        let r = Interp::run(&p, &mut NullSink).unwrap();
        let ret = r.ret.unwrap().as_int().unwrap();
        assert_eq!(ret >> 16, 0, "inversions remain");
        assert_ne!(ret & 0xFFFF, 0, "the grand total folds in");
    }
}
