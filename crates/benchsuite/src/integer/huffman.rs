//! Huffman decode — the paper's running example (Figure 3).
//!
//! A complete binary code tree is walked bit-by-bit: the inner `while`
//! descends the tree, the outer `do` loop emits one symbol per
//! iteration. `in_p` (the bit cursor) and `out_p` (the output cursor)
//! are the loop-carried locals whose dependency arcs Figure 3
//! measures; the paper's Table 3 shows Equation 2 choosing the *outer*
//! loop over the inner one.

use crate::util::{hash_top, new_int_array};
use crate::DataSize;
use tvm::{Cond, FuncId, Program, ProgramBuilder};

/// Tree depth: 2^DEPTH leaf symbols.
const DEPTH: i64 = 5;

/// Defines `get_bit(input, p) -> (input[p>>6] >> (p & 63)) & 1` — the
/// `in.getBit(in_p)` call of the paper's Figure 3 source.
fn define_get_bit(b: &mut ProgramBuilder) -> FuncId {
    b.function("get_bit", 2, true, |f| {
        let (input, p) = (f.param(0), f.param(1));
        f.arr_get(input, |f| {
            f.ld(p).ci(6).ishr();
        })
        .ld(p)
        .ci(63)
        .iand()
        .ishr()
        .ci(1)
        .iand()
        .ret();
    })
}

/// Builds the benchmark.
pub fn build(size: DataSize) -> Program {
    let n_bits: i64 = size.pick(4_000, 40_000, 160_000);
    let mut b = ProgramBuilder::new();
    let get_bit = define_get_bit(&mut b);

    let main = b.function("main", 0, true, |f| {
        // complete binary tree in arrays: internal nodes 0..2^D-1,
        // leaves 2^D-1 .. 2^(D+1)-1 with left = -1
        let n_internal = (1 << DEPTH) - 1;
        let n_nodes = (1 << (DEPTH + 1)) - 1;
        let (left, right, chr) = (f.local(), f.local(), f.local());
        let (input, out) = (f.local(), f.local());
        let (i, n, in_p, out_p, sum) = (f.local(), f.local(), f.local(), f.local(), f.local());

        new_int_array(f, left, n_nodes);
        new_int_array(f, right, n_nodes);
        new_int_array(f, chr, n_nodes);
        // bits packed 64 per word, as a real bit reader sees them
        new_int_array(f, input, n_bits / 64 + 1);
        // out is sized generously: at most n_bits / DEPTH symbols
        new_int_array(f, out, n_bits / DEPTH + 2);

        // build the tree
        f.for_in(i, 0.into(), n_internal.into(), |f| {
            f.arr_set(
                left,
                |f| {
                    f.ld(i);
                },
                |f| {
                    f.ld(i).ci(2).imul().ci(1).iadd();
                },
            );
            f.arr_set(
                right,
                |f| {
                    f.ld(i);
                },
                |f| {
                    f.ld(i).ci(2).imul().ci(2).iadd();
                },
            );
        });
        f.for_in(i, n_internal.into(), n_nodes.into(), |f| {
            f.arr_set(
                left,
                |f| {
                    f.ld(i);
                },
                |f| {
                    f.ci(-1);
                },
            );
            f.arr_set(
                chr,
                |f| {
                    f.ld(i);
                },
                |f| {
                    f.ld(i).ci(n_internal).isub().ci(65).iadd();
                },
            );
        });
        // pseudo-random packed input bits
        f.for_in(i, 0.into(), (n_bits / 64 + 1).into(), |f| {
            f.arr_set(
                input,
                |f| {
                    f.ld(i);
                },
                |f| {
                    f.ld(i).ci(0x9e37).imul();
                    hash_top(f);
                },
            );
        });

        // the Figure 3 decode loop
        f.ci(0).st(in_p);
        f.ci(0).st(out_p);
        f.do_while_icmp(
            |f| {
                f.ci(0).st(n);
                // inner loop: descend until a leaf
                f.while_icmp(
                    Cond::Ne,
                    |f| {
                        f.arr_get(left, |f| {
                            f.ld(n);
                        })
                        .ci(-1);
                    },
                    |f| {
                        f.if_else_icmp(
                            Cond::Eq,
                            |f| {
                                // if (in.getBit(in_p) == 0)
                                f.ld(input).ld(in_p).call(get_bit).ci(0);
                            },
                            |f| {
                                f.arr_get(left, |f| {
                                    f.ld(n);
                                })
                                .st(n);
                            },
                            |f| {
                                f.arr_get(right, |f| {
                                    f.ld(n);
                                })
                                .st(n);
                            },
                        );
                        f.inc(in_p, 1);
                    },
                );
                f.arr_set(
                    out,
                    |f| {
                        f.ld(out_p);
                    },
                    |f| {
                        f.arr_get(chr, |f| {
                            f.ld(n);
                        });
                    },
                );
                f.inc(out_p, 1);
            },
            |f| {
                f.ld(in_p).ci(n_bits - DEPTH);
            },
            Cond::Lt,
        );

        // checksum of decoded symbols
        f.ci(0).st(sum);
        f.for_in(i, 0.into(), out_p.into(), |f| {
            f.ld(sum)
                .arr_get(out, |f| {
                    f.ld(i);
                })
                .iadd()
                .st(sum);
        });
        f.ld(sum).ret();
    });
    b.finish(main).expect("huffman builds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvm::{Interp, NullSink};

    #[test]
    fn decodes_expected_symbol_count() {
        let p = build(DataSize::Small);
        let r = Interp::run(&p, &mut NullSink).unwrap();
        let sum = r.ret.unwrap().as_int().unwrap();
        // 4000 bits / 5 bits-per-symbol = 800 symbols of value 65..96;
        // the sum must land in that band
        assert!(sum >= 800 * 65, "sum {sum}");
        assert!(sum <= 801 * 97, "sum {sum}");
    }
}
