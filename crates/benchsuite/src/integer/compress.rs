//! compress: block-oriented LZ-style compression (SPECjvm98 201).
//!
//! The input is compressed in independent blocks, each with its own
//! hash-chain dictionary region — the block loop is the coarse
//! parallel decomposition, while the per-byte scan inside a block is
//! serialized by the dictionary state (and by the output cursor).

use crate::util::{define_fill_int, new_int_array};
use crate::DataSize;
use tvm::{Cond, Program, ProgramBuilder};

const BLOCK: i64 = 256;
const HASH: i64 = 64;

/// Builds the benchmark.
pub fn build(size: DataSize) -> Program {
    let n_blocks: i64 = size.pick(6, 40, 160);
    let n = n_blocks * BLOCK;
    let mut b = ProgramBuilder::new();
    let fill = define_fill_int(&mut b);

    let main = b.function("main", 0, true, |f| {
        let (input, out, ht) = (f.local(), f.local(), f.local());
        let (blk, i, base, h, cand, out_p, sum, matched) = (
            f.local(),
            f.local(),
            f.local(),
            f.local(),
            f.local(),
            f.local(),
            f.local(),
            f.local(),
        );
        new_int_array(f, input, n);
        new_int_array(f, out, n + n_blocks);
        new_int_array(f, ht, n_blocks * HASH);
        // small alphabet so back-references actually occur
        f.ld(input).ci(0xC0DE).ci(17).call(fill);

        f.for_in(blk, 0.into(), n_blocks.into(), |f| {
            f.ld(blk).ci(BLOCK).imul().st(base);
            // out cursor is private per block: out[base..]
            f.ld(base).st(out_p);
            // reset this block's dictionary region
            f.for_in(i, 0.into(), HASH.into(), |f| {
                f.arr_set(
                    ht,
                    |f| {
                        f.ld(blk).ci(HASH).imul().ld(i).iadd();
                    },
                    |f| {
                        f.ci(-1);
                    },
                );
            });
            // per-byte scan: dictionary state serializes this loop
            f.for_in(i, 0.into(), (BLOCK - 1).into(), |f| {
                // h = (in[base+i]*31 + in[base+i+1]) % HASH
                f.arr_get(input, |f| {
                    f.ld(base).ld(i).iadd();
                })
                .ci(31)
                .imul()
                .arr_get(input, |f| {
                    f.ld(base).ld(i).iadd().ci(1).iadd();
                })
                .iadd()
                .ci(HASH)
                .irem()
                .st(h);
                f.arr_get(ht, |f| {
                    f.ld(blk).ci(HASH).imul().ld(h).iadd();
                })
                .st(cand);
                f.arr_set(
                    ht,
                    |f| {
                        f.ld(blk).ci(HASH).imul().ld(h).iadd();
                    },
                    |f| {
                        f.ld(i);
                    },
                );
                // match if candidate position has the same two bytes
                f.ci(0).st(matched);
                f.if_icmp(
                    Cond::Ge,
                    |f| {
                        f.ld(cand).ci(0);
                    },
                    |f| {
                        f.if_icmp(
                            Cond::Eq,
                            |f| {
                                f.arr_get(input, |f| {
                                    f.ld(base).ld(cand).iadd();
                                })
                                .arr_get(input, |f| {
                                    f.ld(base).ld(i).iadd();
                                });
                            },
                            |f| {
                                f.ci(1).st(matched);
                            },
                        );
                    },
                );
                f.if_else_icmp(
                    Cond::Ne,
                    |f| {
                        f.ld(matched).ci(0);
                    },
                    |f| {
                        // emit a back-reference: -(distance)
                        f.arr_set(
                            out,
                            |f| {
                                f.ld(out_p);
                            },
                            |f| {
                                f.ld(cand).ld(i).isub(); // negative
                            },
                        );
                    },
                    |f| {
                        // emit a literal
                        f.arr_set(
                            out,
                            |f| {
                                f.ld(out_p);
                            },
                            |f| {
                                f.arr_get(input, |f| {
                                    f.ld(base).ld(i).iadd();
                                });
                            },
                        );
                    },
                );
                f.inc(out_p, 1);
            });
        });

        // checksum the compressed stream
        f.ci(0).st(sum);
        f.for_in(i, 0.into(), n.into(), |f| {
            f.ld(sum)
                .arr_get(out, |f| {
                    f.ld(i);
                })
                .iadd()
                .st(sum);
        });
        f.ld(sum).ret();
    });
    b.finish(main).expect("compress builds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvm::{Interp, NullSink};

    #[test]
    fn produces_mixed_literals_and_references() {
        let p = build(DataSize::Small);
        let r = Interp::run(&p, &mut NullSink).unwrap();
        let sum = r.ret.unwrap().as_int().unwrap();
        // literals are 0..16, references negative: with a 17-symbol
        // alphabet and 64-entry tables, matches must occur, pulling
        // the checksum below the all-literal expectation
        let all_literal_max = 6 * 255 * 16;
        assert!(sum < all_literal_max, "sum {sum}");
        assert_ne!(sum, 0);
    }
}
