//! Assignment: resource-allocation cost-matrix reduction (jBYTEmark).
//!
//! Repeated row and column reduction of an `n × n` cost matrix — the
//! first phase of the Hungarian assignment algorithm. Row reductions
//! are independent across rows and column reductions across columns,
//! so the per-row/per-column loops are the parallel decompositions;
//! with a larger matrix the per-row working set grows, the paper's
//! data-set-sensitivity case.

use crate::util::{define_fill_int, new_int_array};
use crate::DataSize;
use tvm::{Program, ProgramBuilder};

/// Builds the benchmark. The cost matrix is `n × n` with
/// `n = 51` at the paper's data size.
pub fn build(size: DataSize) -> Program {
    let n: i64 = size.pick(17, 51, 101);
    let passes: i64 = 3;
    let mut b = ProgramBuilder::new();
    let fill = define_fill_int(&mut b);

    let main = b.function("main", 0, true, |f| {
        let c = f.local();
        let (pass, r, col, m, sum) = (f.local(), f.local(), f.local(), f.local(), f.local());
        new_int_array(f, c, n * n);
        f.ld(c).ci(0x5eed).ci(1000).call(fill);

        f.for_in(pass, 0.into(), passes.into(), |f| {
            // row reduction: independent across rows
            f.for_in(r, 0.into(), n.into(), |f| {
                f.ci(i64::MAX).st(m);
                f.for_in(col, 0.into(), n.into(), |f| {
                    f.ld(m)
                        .arr_get(c, |f| {
                            f.ld(r).ci(n).imul().ld(col).iadd();
                        })
                        .imin()
                        .st(m);
                });
                f.for_in(col, 0.into(), n.into(), |f| {
                    f.arr_set(
                        c,
                        |f| {
                            f.ld(r).ci(n).imul().ld(col).iadd();
                        },
                        |f| {
                            f.arr_get(c, |f| {
                                f.ld(r).ci(n).imul().ld(col).iadd();
                            })
                            .ld(m)
                            .isub();
                        },
                    );
                });
            });
            // column reduction: independent across columns
            f.for_in(col, 0.into(), n.into(), |f| {
                f.ci(i64::MAX).st(m);
                f.for_in(r, 0.into(), n.into(), |f| {
                    f.ld(m)
                        .arr_get(c, |f| {
                            f.ld(r).ci(n).imul().ld(col).iadd();
                        })
                        .imin()
                        .st(m);
                });
                f.for_in(r, 0.into(), n.into(), |f| {
                    f.arr_set(
                        c,
                        |f| {
                            f.ld(r).ci(n).imul().ld(col).iadd();
                        },
                        |f| {
                            f.arr_get(c, |f| {
                                f.ld(r).ci(n).imul().ld(col).iadd();
                            })
                            .ld(m)
                            .isub();
                        },
                    );
                });
            });
        });

        // checksum: every row and column now contains a zero
        f.ci(0).st(sum);
        f.for_in(r, 0.into(), (n * n).into(), |f| {
            f.ld(sum)
                .arr_get(c, |f| {
                    f.ld(r);
                })
                .iadd()
                .st(sum);
        });
        f.ld(sum).ret();
    });
    b.finish(main).expect("assignment builds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvm::{Interp, NullSink};

    #[test]
    fn reduced_matrix_is_nonnegative_and_smaller() {
        let p = build(DataSize::Small);
        let r = Interp::run(&p, &mut NullSink).unwrap();
        let sum = r.ret.unwrap().as_int().unwrap();
        // all entries reduced but still non-negative
        assert!(sum >= 0);
        // a 17x17 matrix of values <1000 reduced by row+col minima
        assert!(sum < 17 * 17 * 1000);
    }

    #[test]
    fn deterministic_across_runs() {
        let p = build(DataSize::Small);
        let a = Interp::run(&p, &mut NullSink).unwrap();
        let b2 = Interp::run(&p, &mut NullSink).unwrap();
        assert_eq!(a.ret, b2.ret);
        assert_eq!(a.cycles, b2.cycles);
    }
}
