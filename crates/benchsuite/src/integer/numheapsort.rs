//! NumHeapSort: heap sort over a batch of arrays (jBYTEmark NumSort).
//!
//! The outer loop sorts independent arrays — a clean coarse STL — but
//! within each sort the sift-down loops chase the heap property
//! serially. This reproduces the paper's observation that integer
//! programs expose parallelism at specific levels of a loop nest that
//! only dynamic measurement finds.

use crate::util::{define_fill_int, new_int_array};
use crate::DataSize;
use tvm::{Cond, FuncId, Program, ProgramBuilder};

/// Defines `sift(arr, base, start, end)`: sift-down on the heap stored
/// at `arr[base .. base+end]`.
fn define_sift(b: &mut ProgramBuilder) -> FuncId {
    b.function("sift", 4, false, |f| {
        let (arr, base, start, end) = (f.param(0), f.param(1), f.param(2), f.param(3));
        let (root, child, tmp) = (f.local(), f.local(), f.local());
        f.ld(start).st(root);
        let head = f.new_label();
        let exit = f.new_label();
        f.bind(head);
        // child = 2*root + 1; stop when past end
        f.ld(root).ci(2).imul().ci(1).iadd().st(child);
        f.ld(child).ld(end).br_icmp(Cond::Ge, exit);
        // pick the larger child
        f.if_icmp(
            Cond::Lt,
            |f| {
                f.ld(child).ci(1).iadd().ld(end);
            },
            |f| {
                f.if_icmp(
                    Cond::Lt,
                    |f| {
                        f.arr_get(arr, |f| {
                            f.ld(base).ld(child).iadd();
                        });
                        f.arr_get(arr, |f| {
                            f.ld(base).ld(child).iadd().ci(1).iadd();
                        });
                    },
                    |f| {
                        f.inc(child, 1);
                    },
                );
            },
        );
        // if arr[root] >= arr[child] we are done
        f.arr_get(arr, |f| {
            f.ld(base).ld(root).iadd();
        });
        f.arr_get(arr, |f| {
            f.ld(base).ld(child).iadd();
        });
        f.br_icmp(Cond::Ge, exit);
        // swap and continue
        f.arr_get(arr, |f| {
            f.ld(base).ld(root).iadd();
        })
        .st(tmp);
        f.arr_set(
            arr,
            |f| {
                f.ld(base).ld(root).iadd();
            },
            |f| {
                f.arr_get(arr, |f| {
                    f.ld(base).ld(child).iadd();
                });
            },
        );
        f.arr_set(
            arr,
            |f| {
                f.ld(base).ld(child).iadd();
            },
            |f| {
                f.ld(tmp);
            },
        );
        f.ld(child).st(root);
        f.goto(head);
        f.bind(exit);
        f.ret_void();
    })
}

/// Builds the benchmark.
pub fn build(size: DataSize) -> Program {
    let n_arrays: i64 = size.pick(4, 8, 16);
    let n: i64 = size.pick(60, 400, 1600);
    let mut b = ProgramBuilder::new();
    let fill = define_fill_int(&mut b);
    let sift = define_sift(&mut b);

    let main = b.function("main", 0, true, |f| {
        let data = f.local();
        let (a, base, i, end, tmp, bad) = (
            f.local(),
            f.local(),
            f.local(),
            f.local(),
            f.local(),
            f.local(),
        );
        new_int_array(f, data, n_arrays * n);
        f.ld(data).ci(0x50FA).ci(1_000_000).call(fill);

        // sort each array independently (the coarse STL)
        f.for_in(a, 0.into(), n_arrays.into(), |f| {
            f.ld(a).ci(n).imul().st(base);
            // heapify
            f.for_step(i, (n / 2 - 1).into(), (-1).into(), -1, |f| {
                f.ld(data).ld(base).ld(i).ci(n).call(sift);
            });
            // sortdown
            f.for_step(end, (n - 1).into(), 0.into(), -1, |f| {
                // swap root with arr[end]
                f.arr_get(data, |f| {
                    f.ld(base);
                })
                .st(tmp);
                f.arr_set(
                    data,
                    |f| {
                        f.ld(base);
                    },
                    |f| {
                        f.arr_get(data, |f| {
                            f.ld(base).ld(end).iadd();
                        });
                    },
                );
                f.arr_set(
                    data,
                    |f| {
                        f.ld(base).ld(end).iadd();
                    },
                    |f| {
                        f.ld(tmp);
                    },
                );
                f.ld(data).ld(base).ci(0).ld(end).call(sift);
            });
        });

        // verify: count out-of-order adjacent pairs (must be zero)
        f.ci(0).st(bad);
        f.for_in(a, 0.into(), n_arrays.into(), |f| {
            f.ld(a).ci(n).imul().st(base);
            f.for_in(i, 1.into(), n.into(), |f| {
                f.if_icmp(
                    Cond::Gt,
                    |f| {
                        f.arr_get(data, |f| {
                            f.ld(base).ld(i).iadd().ci(1).isub();
                        });
                        f.arr_get(data, |f| {
                            f.ld(base).ld(i).iadd();
                        });
                    },
                    |f| {
                        f.inc(bad, 1);
                    },
                );
            });
        });
        f.ld(bad).ret();
    });
    b.finish(main).expect("NumHeapSort builds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvm::{Interp, NullSink};

    #[test]
    fn all_arrays_end_up_sorted() {
        let p = build(DataSize::Small);
        let r = Interp::run(&p, &mut NullSink).unwrap();
        assert_eq!(r.ret.unwrap().as_int().unwrap(), 0, "unsorted pairs remain");
    }
}
