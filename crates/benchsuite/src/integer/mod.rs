//! The integer benchmarks of Table 6 (jBYTEmark and SPECjvm98
//! derived).

pub mod assignment;
pub mod bitops;
pub mod compress;
pub mod db;
pub mod deltablue;
pub mod emfloat;
pub mod huffman;
pub mod idea;
pub mod jess;
pub mod jlex;
pub mod mips;
pub mod montecarlo;
pub mod numheapsort;
pub mod raytrace;

use crate::{Benchmark, Category};

/// The fourteen integer benchmarks, in Table 6 order.
pub fn benchmarks() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "Assignment",
            category: Category::Integer,
            description: "Resource allocation (51x51 cost matrix reduction)",
            build: assignment::build,
            analyzable: false,
            data_sensitive: true,
        },
        Benchmark {
            name: "BitOps",
            category: Category::Integer,
            description: "Bit array range set/clear/toggle and popcounts",
            build: bitops::build,
            analyzable: false,
            data_sensitive: false,
        },
        Benchmark {
            name: "compress",
            category: Category::Integer,
            description: "Block-oriented LZ-style compression",
            build: compress::build,
            analyzable: false,
            data_sensitive: false,
        },
        Benchmark {
            name: "db",
            category: Category::Integer,
            description: "In-memory database: lookups, updates, sort",
            build: db::build,
            analyzable: false,
            data_sensitive: true,
        },
        Benchmark {
            name: "deltaBlue",
            category: Category::Integer,
            description: "One-way constraint solver propagation",
            build: deltablue::build,
            analyzable: false,
            data_sensitive: false,
        },
        Benchmark {
            name: "EmFloatPnt",
            category: Category::Integer,
            description: "Software-emulated floating point arithmetic",
            build: emfloat::build,
            analyzable: false,
            data_sensitive: false,
        },
        Benchmark {
            name: "Huffman",
            category: Category::Integer,
            description: "Huffman decode (the paper's Figure 3 example)",
            build: huffman::build,
            analyzable: false,
            data_sensitive: false,
        },
        Benchmark {
            name: "IDEA",
            category: Category::Integer,
            description: "IDEA-style block cipher encryption",
            build: idea::build,
            analyzable: true,
            data_sensitive: false,
        },
        Benchmark {
            name: "jess",
            category: Category::Integer,
            description: "Expert-system rule/fact pattern matching",
            build: jess::build,
            analyzable: false,
            data_sensitive: false,
        },
        Benchmark {
            name: "jLex",
            category: Category::Integer,
            description: "Lexer generator: NFA-to-DFA subset construction",
            build: jlex::build,
            analyzable: false,
            data_sensitive: false,
        },
        Benchmark {
            name: "MipsSimulator",
            category: Category::Integer,
            description: "MIPS-subset CPU interpreter running a guest kernel",
            build: mips::build,
            analyzable: false,
            data_sensitive: false,
        },
        Benchmark {
            name: "monteCarlo",
            category: Category::Integer,
            description: "Monte Carlo pi estimation with hashed seeds",
            build: montecarlo::build,
            analyzable: false,
            data_sensitive: false,
        },
        Benchmark {
            name: "NumHeapSort",
            category: Category::Integer,
            description: "Heap sort over a batch of arrays",
            build: numheapsort::build,
            analyzable: false,
            data_sensitive: false,
        },
        Benchmark {
            name: "raytrace",
            category: Category::Integer,
            description: "Sphere ray tracer (fixed scene)",
            build: raytrace::build,
            analyzable: false,
            data_sensitive: false,
        },
    ]
}
