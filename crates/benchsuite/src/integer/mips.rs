//! MipsSimulator: a MIPS-subset CPU interpreter (the jBYTEmark-style
//! emulator from Table 6).
//!
//! The simulator predecodes a guest program into parallel opcode
//! arrays (a parallel loop), then interprets it: the fetch-execute
//! loop computes the next PC *early* in each iteration — branches
//! override it late but rarely — so the interpreter loop is a
//! textbook case of dynamic parallelism that static analysis must
//! treat as serial but TEST can measure. A final memory-checksum loop
//! is embarrassingly parallel.
//!
//! The guest kernel is a vector-scale-accumulate loop written in the
//! guest ISA.

use crate::util::new_int_array;
use crate::DataSize;
use tvm::{Cond, Program, ProgramBuilder};

// guest opcodes
const OP_ADDI: i64 = 0; // r[d] = r[s] + imm
const OP_ADD: i64 = 1; // r[d] = r[s] + r[t]
const OP_MUL: i64 = 2; // r[d] = r[s] * r[t]
const OP_LW: i64 = 3; // r[d] = mem[r[s] + imm]
const OP_SW: i64 = 4; // mem[r[s] + imm] = r[d]
const OP_BNE: i64 = 5; // if r[d] != r[s] goto imm
const OP_HALT: i64 = 6;

/// One guest instruction, encoded as four ints.
struct G(i64, i64, i64, i64); // (op, d, s, imm/t)

/// The guest program: for (i = n-1; i != 0; i--) mem[64+i] = mem[i]*3 + i
/// then halts. Registers: r1 = i, r2 = scratch, r3 = 3.
fn guest_program(n: i64) -> Vec<G> {
    vec![
        G(OP_ADDI, 1, 0, n - 1), // 0: r1 = n-1
        G(OP_ADDI, 3, 0, 3),     // 1: r3 = 3
        // loop:
        G(OP_LW, 2, 1, 0),    // 2: r2 = mem[r1]
        G(OP_MUL, 2, 2, 3),   // 3: r2 = r2 * r3
        G(OP_ADD, 2, 2, 1),   // 4: r2 = r2 + r1
        G(OP_SW, 2, 1, 64),   // 5: mem[r1 + 64] = r2
        G(OP_ADDI, 1, 1, -1), // 6: r1 = r1 - 1
        G(OP_BNE, 1, 0, 2),   // 7: if r1 != r0 goto 2
        G(OP_HALT, 0, 0, 0),  // 8
    ]
}

/// Builds the benchmark.
pub fn build(size: DataSize) -> Program {
    let guest_n: i64 = size.pick(40, 300, 1200);
    let mem_size: i64 = guest_n + 80;
    let guest = guest_program(guest_n);
    let glen = guest.len() as i64;
    let mut b = ProgramBuilder::new();

    let main = b.function("main", 0, true, |f| {
        let (code, ops, rd, rs, imm, regs, mem) = (
            f.local(),
            f.local(),
            f.local(),
            f.local(),
            f.local(),
            f.local(),
            f.local(),
        );
        let (i, pc, npc, op, running, sum) = (
            f.local(),
            f.local(),
            f.local(),
            f.local(),
            f.local(),
            f.local(),
        );
        new_int_array(f, code, glen * 4);
        new_int_array(f, ops, glen);
        new_int_array(f, rd, glen);
        new_int_array(f, rs, glen);
        new_int_array(f, imm, glen);
        new_int_array(f, regs, 8);
        new_int_array(f, mem, mem_size);

        // load the guest image
        for (k, g) in guest.iter().enumerate() {
            for (slot, v) in [g.0, g.1, g.2, g.3].into_iter().enumerate() {
                f.arr_set(
                    code,
                    |f| {
                        f.ci(k as i64 * 4 + slot as i64);
                    },
                    |f| {
                        f.ci(v);
                    },
                );
            }
        }
        // guest memory init (parallel)
        f.for_in(i, 0.into(), mem_size.into(), |f| {
            f.arr_set(
                mem,
                |f| {
                    f.ld(i);
                },
                |f| {
                    f.ld(i).ci(5).imul().ci(13).iadd().ci(255).iand();
                },
            );
        });
        // predecode (parallel): split the image into opcode arrays
        f.for_in(i, 0.into(), glen.into(), |f| {
            for (arr, slot) in [(ops, 0i64), (rd, 1), (rs, 2), (imm, 3)] {
                f.arr_set(
                    arr,
                    |f| {
                        f.ld(i);
                    },
                    |f| {
                        f.arr_get(code, |f| {
                            f.ld(i).ci(4).imul().ci(slot).iadd();
                        });
                    },
                );
            }
        });

        // fetch-execute loop. Like a threaded-dispatch interpreter,
        // the fall-through PC is committed at the TOP of the
        // iteration (`cur` keeps the fetched slot); only taken
        // branches overwrite it late. This is the paper's
        // "increase distances between inter-thread dependencies"
        // compiler scheduling, applied to the hot pc chain.
        let cur = npc; // reuse the slot: `cur` is the fetched index
        f.ci(0).st(pc);
        f.ci(1).st(running);
        f.while_icmp(
            Cond::Ne,
            |f| {
                f.ld(running).ci(0);
            },
            |f| {
                f.ld(pc).st(cur);
                f.ld(pc).ci(1).iadd().st(pc);
                f.arr_get(ops, |f| {
                    f.ld(cur);
                })
                .st(op);
                // decode/execute ladder
                f.if_icmp(
                    Cond::Eq,
                    |f| {
                        f.ld(op).ci(OP_ADDI);
                    },
                    |f| {
                        f.ld(regs);
                        f.arr_get(rd, |f| {
                            f.ld(cur);
                        });
                        f.arr_get(regs, |f| {
                            f.arr_get(rs, |f| {
                                f.ld(cur);
                            });
                        });
                        f.arr_get(imm, |f| {
                            f.ld(cur);
                        })
                        .iadd();
                        f.astore();
                    },
                );
                f.if_icmp(
                    Cond::Eq,
                    |f| {
                        f.ld(op).ci(OP_ADD);
                    },
                    |f| {
                        f.ld(regs);
                        f.arr_get(rd, |f| {
                            f.ld(cur);
                        });
                        f.arr_get(regs, |f| {
                            f.arr_get(rs, |f| {
                                f.ld(cur);
                            });
                        });
                        f.arr_get(regs, |f| {
                            f.arr_get(imm, |f| {
                                f.ld(cur);
                            });
                        })
                        .iadd();
                        f.astore();
                    },
                );
                f.if_icmp(
                    Cond::Eq,
                    |f| {
                        f.ld(op).ci(OP_MUL);
                    },
                    |f| {
                        f.ld(regs);
                        f.arr_get(rd, |f| {
                            f.ld(cur);
                        });
                        f.arr_get(regs, |f| {
                            f.arr_get(rs, |f| {
                                f.ld(cur);
                            });
                        });
                        f.arr_get(regs, |f| {
                            f.arr_get(imm, |f| {
                                f.ld(cur);
                            });
                        })
                        .imul();
                        f.astore();
                    },
                );
                f.if_icmp(
                    Cond::Eq,
                    |f| {
                        f.ld(op).ci(OP_LW);
                    },
                    |f| {
                        f.ld(regs);
                        f.arr_get(rd, |f| {
                            f.ld(cur);
                        });
                        f.arr_get(mem, |f| {
                            f.arr_get(regs, |f| {
                                f.arr_get(rs, |f| {
                                    f.ld(cur);
                                });
                            });
                            f.arr_get(imm, |f| {
                                f.ld(cur);
                            })
                            .iadd();
                        });
                        f.astore();
                    },
                );
                f.if_icmp(
                    Cond::Eq,
                    |f| {
                        f.ld(op).ci(OP_SW);
                    },
                    |f| {
                        f.ld(mem);
                        f.arr_get(regs, |f| {
                            f.arr_get(rs, |f| {
                                f.ld(cur);
                            });
                        });
                        f.arr_get(imm, |f| {
                            f.ld(cur);
                        })
                        .iadd();
                        f.arr_get(regs, |f| {
                            f.arr_get(rd, |f| {
                                f.ld(cur);
                            });
                        });
                        f.astore();
                    },
                );
                f.if_icmp(
                    Cond::Eq,
                    |f| {
                        f.ld(op).ci(OP_BNE);
                    },
                    |f| {
                        f.if_icmp(
                            Cond::Ne,
                            |f| {
                                f.arr_get(regs, |f| {
                                    f.arr_get(rd, |f| {
                                        f.ld(cur);
                                    });
                                });
                                f.arr_get(regs, |f| {
                                    f.arr_get(rs, |f| {
                                        f.ld(cur);
                                    });
                                });
                            },
                            |f| {
                                f.arr_get(imm, |f| {
                                    f.ld(cur);
                                })
                                .st(pc);
                            },
                        );
                    },
                );
                f.if_icmp(
                    Cond::Eq,
                    |f| {
                        f.ld(op).ci(OP_HALT);
                    },
                    |f| {
                        f.ci(0).st(running);
                    },
                );
            },
        );

        // checksum of guest memory (parallel)
        f.ci(0).st(sum);
        f.for_in(i, 0.into(), mem_size.into(), |f| {
            f.ld(sum)
                .arr_get(mem, |f| {
                    f.ld(i);
                })
                .iadd()
                .st(sum);
        });
        f.ld(sum).ret();
    });
    b.finish(main).expect("MipsSimulator builds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvm::{Interp, NullSink};

    #[test]
    fn guest_kernel_computes_the_expected_memory() {
        let p = build(DataSize::Small);
        let r = Interp::run(&p, &mut NullSink).unwrap();
        let got = r.ret.unwrap().as_int().unwrap();
        // replicate the guest semantics natively
        let n = 40i64;
        let mem_size = n + 80;
        let mut mem: Vec<i64> = (0..mem_size).map(|i| (i * 5 + 13) & 255).collect();
        let mut i = n - 1;
        while i != 0 {
            mem[(i + 64) as usize] = mem[i as usize] * 3 + i;
            i -= 1;
        }
        let expect: i64 = mem.iter().sum();
        assert_eq!(got, expect);
    }
}
