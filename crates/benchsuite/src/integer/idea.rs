//! IDEA: block-cipher encryption (jBYTEmark IDEA).
//!
//! An IDEA-style cipher: four 16-bit words per block, eight rounds of
//! multiplication modulo 65537, addition modulo 65536 and XOR mixing
//! with a key schedule. Blocks are independent — the block loop is a
//! clean, coarse STL, and the kernel is regular enough that a
//! traditional compiler could also analyze it (Table 6 marks IDEA
//! analyzable).

use crate::util::{define_fill_int, new_int_array};
use crate::DataSize;
use tvm::{Cond, FuncId, Program, ProgramBuilder};

/// Defines `mulmod(a, b) -> a*b mod 65537` with IDEA's 0 ≡ 65536
/// convention.
fn define_mulmod(b: &mut ProgramBuilder) -> FuncId {
    b.function("mulmod", 2, true, |f| {
        let (a, bb) = (f.param(0), f.param(1));
        let (x, y) = (f.local(), f.local());
        f.if_else_icmp(
            Cond::Eq,
            |f| {
                f.ld(a).ci(0);
            },
            |f| {
                f.ci(65536).st(x);
            },
            |f| {
                f.ld(a).st(x);
            },
        );
        f.if_else_icmp(
            Cond::Eq,
            |f| {
                f.ld(bb).ci(0);
            },
            |f| {
                f.ci(65536).st(y);
            },
            |f| {
                f.ld(bb).st(y);
            },
        );
        f.ld(x).ld(y).imul().ci(65537).irem().ci(65535).iand().ret();
    })
}

/// Builds the benchmark.
pub fn build(size: DataSize) -> Program {
    let n_blocks: i64 = size.pick(30, 240, 1000);
    let rounds: i64 = 8;
    let mut b = ProgramBuilder::new();
    let fill = define_fill_int(&mut b);
    let mulmod = define_mulmod(&mut b);

    let main = b.function("main", 0, true, |f| {
        let (data, key) = (f.local(), f.local());
        let (blk, r, x0, x1, x2, x3, t, sum) = (
            f.local(),
            f.local(),
            f.local(),
            f.local(),
            f.local(),
            f.local(),
            f.local(),
            f.local(),
        );
        new_int_array(f, data, n_blocks * 4);
        new_int_array(f, key, 52);
        f.ld(data).ci(0x1DEA).ci(65536).call(fill);
        f.ld(key).ci(0x5C3D).ci(65536).call(fill);

        f.for_in(blk, 0.into(), n_blocks.into(), |f| {
            for (k, x) in [x0, x1, x2, x3].into_iter().enumerate() {
                f.arr_get(data, |f| {
                    f.ld(blk).ci(4).imul().ci(k as i64).iadd();
                })
                .st(x);
            }
            f.for_in(r, 0.into(), rounds.into(), |f| {
                // x0 = mulmod(x0, key[4r]); x1 = (x1 + key[4r+1]) & 0xFFFF
                f.ld(x0)
                    .arr_get(key, |f| {
                        f.ld(r).ci(4).imul();
                    })
                    .call(mulmod)
                    .st(x0);
                f.ld(x1)
                    .arr_get(key, |f| {
                        f.ld(r).ci(4).imul().ci(1).iadd();
                    })
                    .iadd()
                    .ci(0xFFFF)
                    .iand()
                    .st(x1);
                f.ld(x2)
                    .arr_get(key, |f| {
                        f.ld(r).ci(4).imul().ci(2).iadd();
                    })
                    .iadd()
                    .ci(0xFFFF)
                    .iand()
                    .st(x2);
                f.ld(x3)
                    .arr_get(key, |f| {
                        f.ld(r).ci(4).imul().ci(3).iadd();
                    })
                    .call(mulmod)
                    .st(x3);
                // MA mixing: t = mulmod(x0 ^ x2, x1 ^ x3); swap halves
                f.ld(x0)
                    .ld(x2)
                    .ixor()
                    .ld(x1)
                    .ld(x3)
                    .ixor()
                    .call(mulmod)
                    .st(t);
                f.ld(x1).ld(t).ixor().ci(0xFFFF).iand().st(x1);
                f.ld(x2).ld(t).ixor().ci(0xFFFF).iand().st(x2);
                // swap x1 <-> x2
                f.ld(x1).st(t);
                f.ld(x2).st(x1);
                f.ld(t).st(x2);
            });
            for (k, x) in [x0, x1, x2, x3].into_iter().enumerate() {
                f.arr_set(
                    data,
                    |f| {
                        f.ld(blk).ci(4).imul().ci(k as i64).iadd();
                    },
                    |f| {
                        f.ld(x);
                    },
                );
            }
        });

        f.ci(0).st(sum);
        f.for_in(blk, 0.into(), (n_blocks * 4).into(), |f| {
            f.ld(sum)
                .arr_get(data, |f| {
                    f.ld(blk);
                })
                .ixor()
                .ld(blk)
                .iadd()
                .st(sum);
        });
        f.ld(sum).ret();
    });
    b.finish(main).expect("IDEA builds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvm::{Interp, NullSink};

    #[test]
    fn cipher_output_is_in_range_and_deterministic() {
        let p = build(DataSize::Small);
        let a = Interp::run(&p, &mut NullSink).unwrap();
        let b2 = Interp::run(&p, &mut NullSink).unwrap();
        assert_eq!(a.ret, b2.ret);
        let sum = a.ret.unwrap().as_int().unwrap();
        assert!(sum > 0);
    }
}
