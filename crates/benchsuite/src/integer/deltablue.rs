//! deltaBlue: one-way constraint solver (jBYTEmark / deltablue
//! derived).
//!
//! Variables and constraints are heap *objects* (dynamic pointer
//! structures a traditional parallelizing compiler cannot analyze).
//! The solver runs DeltaBlue's two phases: a **planner** that orders
//! satisfiable constraints by strength (an insertion sort over the
//! constraint list — inherently serial, like the real incremental
//! planner), and repeated **plan execution** passes that propagate
//! `dst.value = src.value * coef + offset` in plan order. Short
//! constraint chains create genuine cross-iteration dependencies;
//! independent constraints run in parallel — a mix only dynamic
//! analysis can see.

use crate::util::new_int_array;
use crate::DataSize;
use tvm::{Cond, ElemKind, Program, ProgramBuilder};

/// Builds the benchmark.
pub fn build(size: DataSize) -> Program {
    let n_vars: i64 = size.pick(24, 80, 320);
    let n_cons: i64 = size.pick(30, 100, 400);
    let passes: i64 = size.pick(10, 25, 40);
    let mut b = ProgramBuilder::new();
    // Var { value, stay }
    let var_cls = b.class(&[ElemKind::Int, ElemKind::Int]);
    // Constraint { src, dst, coef, offset, strength }
    let con_cls = b.class(&[
        ElemKind::Ref,
        ElemKind::Ref,
        ElemKind::Int,
        ElemKind::Int,
        ElemKind::Int,
    ]);

    let main = b.function("main", 0, true, |f| {
        let (vars, cons, plan) = (f.local(), f.local(), f.local());
        let (i, j, tmp, pass, v, c, sum) = (
            f.local(),
            f.local(),
            f.local(),
            f.local(),
            f.local(),
            f.local(),
            f.local(),
        );
        f.ci(n_vars).newarray(ElemKind::Ref).st(vars);
        f.ci(n_cons).newarray(ElemKind::Ref).st(cons);
        new_int_array(f, plan, n_cons);

        // build variables
        f.for_in(i, 0.into(), n_vars.into(), |f| {
            f.newobject(var_cls).st(v);
            f.ld(v).ld(i).ci(3).imul().ci(1).iadd().putfield(0);
            f.ld(v).ci(0).putfield(1);
            f.arr_set(
                vars,
                |f| {
                    f.ld(i);
                },
                |f| {
                    f.ld(v);
                },
            );
        });
        // build constraints: mostly independent, every 7th chains onto
        // the previous constraint's destination
        f.for_in(i, 0.into(), n_cons.into(), |f| {
            f.newobject(con_cls).st(c);
            // src = vars[(i*5+1) % n_vars], dst = vars[(i*11+3) % n_vars]
            f.ld(c);
            f.arr_get(vars, |f| {
                f.ld(i).ci(5).imul().ci(1).iadd().ci(n_vars).irem();
            });
            f.putfield(0);
            f.ld(c);
            f.arr_get(vars, |f| {
                f.ld(i).ci(11).imul().ci(3).iadd().ci(n_vars).irem();
            });
            f.putfield(1);
            f.ld(c).ld(i).ci(7).irem().ci(1).iadd().putfield(2);
            f.ld(c).ld(i).ci(13).irem().putfield(3);
            f.ld(c)
                .ld(i)
                .ci(5)
                .imul()
                .ci(3)
                .iadd()
                .ci(10)
                .irem()
                .putfield(4);
            f.arr_set(
                cons,
                |f| {
                    f.ld(i);
                },
                |f| {
                    f.ld(c);
                },
            );
        });

        // planner: order constraints by strength, strongest first — an
        // insertion sort over the constraint objects (the serial
        // incremental-planner phase of DeltaBlue)
        f.for_in(i, 0.into(), n_cons.into(), |f| {
            f.arr_set(
                plan,
                |f| {
                    f.ld(i);
                },
                |f| {
                    f.ld(i);
                },
            );
        });
        f.for_in(i, 1.into(), n_cons.into(), |f| {
            f.arr_get(plan, |f| {
                f.ld(i);
            })
            .st(tmp);
            f.ld(i).st(j);
            let head = f.new_label();
            let exit = f.new_label();
            f.bind(head);
            f.ld(j).ci(0).br_icmp(Cond::Le, exit);
            // strength(plan[j-1]) >= strength(tmp)? then stop
            f.arr_get(cons, |f| {
                f.arr_get(plan, |f| {
                    f.ld(j).ci(1).isub();
                });
            })
            .getfield(4);
            f.arr_get(cons, |f| {
                f.ld(tmp);
            })
            .getfield(4);
            f.br_icmp(Cond::Ge, exit);
            f.arr_set(
                plan,
                |f| {
                    f.ld(j);
                },
                |f| {
                    f.arr_get(plan, |f| {
                        f.ld(j).ci(1).isub();
                    });
                },
            );
            f.inc(j, -1);
            f.goto(head);
            f.bind(exit);
            f.arr_set(
                plan,
                |f| {
                    f.ld(j);
                },
                |f| {
                    f.ld(tmp);
                },
            );
        });

        // plan execution passes: the constraint loop is the STL
        f.for_in(pass, 0.into(), passes.into(), |f| {
            f.for_in(i, 0.into(), n_cons.into(), |f| {
                f.arr_get(cons, |f| {
                    f.arr_get(plan, |f| {
                        f.ld(i);
                    });
                })
                .st(c);
                // dst.value = (src.value * coef + offset) mod 2^20
                f.ld(c).getfield(1); // dst ref
                f.ld(c).getfield(0).getfield(0); // src.value
                f.ld(c).getfield(2).imul();
                f.ld(c).getfield(3).iadd();
                f.ci(0xF_FFFF).iand();
                f.putfield(0);
            });
        });

        // checksum of variable values
        f.ci(0).st(sum);
        f.for_in(i, 0.into(), n_vars.into(), |f| {
            f.ld(sum)
                .arr_get(vars, |f| {
                    f.ld(i);
                })
                .getfield(0)
                .iadd()
                .st(sum);
        });
        f.ld(sum).ret();
    });
    b.finish(main).expect("deltaBlue builds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvm::{Interp, NullSink};

    #[test]
    fn propagation_converges_deterministically() {
        let p = build(DataSize::Small);
        let a = Interp::run(&p, &mut NullSink).unwrap();
        let b2 = Interp::run(&p, &mut NullSink).unwrap();
        let sum = a.ret.unwrap().as_int().unwrap();
        assert_eq!(a.ret, b2.ret);
        assert!(sum > 0);
        // all values masked to 20 bits
        assert!(sum < 24 * (1 << 20));
    }
}
