//! EmFloatPnt: software-emulated floating point (jBYTEmark).
//!
//! Numbers are `(sign, exponent, mantissa)` triples in integer arrays;
//! emulated multiply and add — with their bit-level normalization
//! `while` loops — run over an array of operands. Each element's
//! computation chain is long and independent of the others, producing
//! the very coarse speculative threads Table 6 reports for this
//! benchmark.

use crate::util::{define_fill_int, new_int_array};
use crate::DataSize;
use tvm::{Cond, FuncId, Program, ProgramBuilder};

/// Defines `emul(mant_a, exp_a, mant_b, exp_b) -> packed` — an
/// emulated multiply-add step with normalization loops. Mantissas are
/// 30-bit positives.
fn define_emul(b: &mut ProgramBuilder) -> FuncId {
    b.function("emul_step", 4, true, |f| {
        let (ma, ea, mb, eb) = (f.param(0), f.param(1), f.param(2), f.param(3));
        let (m, e) = (f.local(), f.local());
        // multiply: m = (ma*mb) >> 15, e = ea+eb
        f.ld(ma).ld(mb).imul().ci(15).ishr().st(m);
        f.ld(ea).ld(eb).iadd().st(e);
        // normalize down: while m >= 2^30 { m >>= 1; e++ }
        f.while_icmp(
            Cond::Ge,
            |f| {
                f.ld(m).ci(1 << 30);
            },
            |f| {
                f.ld(m).ci(1).ishr().st(m);
                f.inc(e, 1);
            },
        );
        // normalize up: while 0 < m < 2^29 { m <<= 1; e-- }
        f.while_icmp(
            Cond::Ne,
            |f| {
                // condition: m != 0 && m < 2^29, folded to one int
                let done = f.new_label();
                let check = f.new_label();
                f.ld(m).ci(0).br_icmp(Cond::Eq, done);
                f.ld(m).ci(1 << 29).br_icmp(Cond::Lt, check);
                f.bind(done);
                f.ci(0);
                let out = f.new_label();
                f.goto(out);
                f.bind(check);
                f.ci(1);
                f.bind(out);
                f.ci(0);
            },
            |f| {
                f.ld(m).ci(1).ishl().st(m);
                f.inc(e, -1);
            },
        );
        // pack: (e & 0xFFFF) << 31 | m
        f.ld(e).ci(0xFFFF).iand().ci(31).ishl().ld(m).ior().ret();
    })
}

/// Builds the benchmark.
pub fn build(size: DataSize) -> Program {
    let n: i64 = size.pick(40, 255, 1000);
    let steps: i64 = size.pick(20, 60, 100);
    let mut b = ProgramBuilder::new();
    let fill = define_fill_int(&mut b);
    let emul = define_emul(&mut b);

    let main = b.function("main", 0, true, |f| {
        let (mant, expo) = (f.local(), f.local());
        let (i, k, acc, sum) = (f.local(), f.local(), f.local(), f.local());
        new_int_array(f, mant, n);
        new_int_array(f, expo, n);
        f.ld(mant).ci(0xF10A7).ci(1 << 29).call(fill);
        f.ld(expo).ci(0xE4B0).ci(64).call(fill);

        // make mantissas normalized-ish (>= 2^28)
        f.for_in(i, 0.into(), n.into(), |f| {
            f.arr_set(
                mant,
                |f| {
                    f.ld(i);
                },
                |f| {
                    f.arr_get(mant, |f| {
                        f.ld(i);
                    })
                    .ci(1 << 28)
                    .ior();
                },
            );
        });

        // per-element emulated computation chains (coarse threads)
        f.ci(0).st(sum);
        f.for_in(i, 0.into(), n.into(), |f| {
            f.arr_get(mant, |f| {
                f.ld(i);
            })
            .st(acc);
            f.for_in(k, 0.into(), steps.into(), |f| {
                f.ld(acc).ci((1 << 30) - 1).iand().ci(1 << 28).ior();
                f.arr_get(expo, |f| {
                    f.ld(i);
                });
                f.arr_get(mant, |f| {
                    f.ld(i);
                })
                .ld(k)
                .iadd()
                .ci((1 << 30) - 1)
                .iand()
                .ci(1 << 28)
                .ior();
                f.ld(k);
                f.call(emul).st(acc);
            });
            f.arr_set(
                mant,
                |f| {
                    f.ld(i);
                },
                |f| {
                    f.ld(acc).ci((1 << 30) - 1).iand();
                },
            );
            f.ld(sum).ld(acc).ixor().st(sum);
        });
        f.ld(sum).ret();
    });
    b.finish(main).expect("EmFloatPnt builds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvm::{Interp, NullSink};

    #[test]
    fn emulated_chain_is_deterministic_and_nonzero() {
        let p = build(DataSize::Small);
        let a = Interp::run(&p, &mut NullSink).unwrap();
        let b2 = Interp::run(&p, &mut NullSink).unwrap();
        assert_eq!(a.ret, b2.ret);
        assert_ne!(a.ret.unwrap().as_int().unwrap(), 0);
    }
}
