//! raytrace: a small sphere ray tracer.
//!
//! One primary ray per pixel, intersected against a fixed set of
//! spheres with float arithmetic (discriminant test, nearest hit),
//! Lambertian shading from the surface normal, and a shadow ray
//! toward the light re-intersecting the scene. Pixels are
//! independent; the row loop and the pixel loop are both candidate
//! STLs with fine-grained threads, as in Table 6.

use crate::util::new_float_array;
use crate::DataSize;
use tvm::{Cond, ElemKind, Program, ProgramBuilder};

/// Builds the benchmark.
pub fn build(size: DataSize) -> Program {
    let width: i64 = size.pick(16, 48, 96);
    let height: i64 = size.pick(12, 32, 64);
    let n_spheres: i64 = 5;
    let mut b = ProgramBuilder::new();

    let main = b.function("main", 0, true, |f| {
        // sphere arrays: cx, cy, cz, r
        let (sx, sy, sz, sr, img) = (f.local(), f.local(), f.local(), f.local(), f.local());
        let (px, py, s, i) = (f.local(), f.local(), f.local(), f.local());
        let (dx, dy, dz, inv) = (f.local(), f.local(), f.local(), f.local());
        let (bq, cq, disc, t, best, hit) = (
            f.local(),
            f.local(),
            f.local(),
            f.local(),
            f.local(),
            f.local(),
        );
        let (nx, ny2, nz, lit, shade) = (f.local(), f.local(), f.local(), f.local(), f.local());
        let sum = f.local();
        new_float_array(f, sx, n_spheres);
        new_float_array(f, sy, n_spheres);
        new_float_array(f, sz, n_spheres);
        new_float_array(f, sr, n_spheres);
        f.ci(width * height).newarray(ElemKind::Int).st(img);

        // fixed scene
        for (k, (x, y, z, r)) in [
            (0.0f64, 0.0, 6.0, 2.0),
            (2.5, 1.0, 8.0, 1.5),
            (-2.5, -1.0, 7.0, 1.2),
            (1.0, -2.0, 5.0, 0.8),
            (-1.5, 2.0, 9.0, 1.0),
        ]
        .into_iter()
        .enumerate()
        {
            for (arr, v) in [(sx, x), (sy, y), (sz, z), (sr, r)] {
                f.arr_set(
                    arr,
                    |f| {
                        f.ci(k as i64);
                    },
                    |f| {
                        f.cf(v);
                    },
                );
            }
        }

        f.for_in(py, 0.into(), height.into(), |f| {
            f.for_in(px, 0.into(), width.into(), |f| {
                // ray direction through the pixel (camera at origin)
                f.ld(px)
                    .i2f()
                    .cf(width as f64 / 2.0)
                    .fsub()
                    .cf(width as f64)
                    .fdiv()
                    .st(dx);
                f.ld(py)
                    .i2f()
                    .cf(height as f64 / 2.0)
                    .fsub()
                    .cf(height as f64)
                    .fdiv()
                    .st(dy);
                f.cf(1.0).st(dz);
                // normalize
                f.ld(dx)
                    .ld(dx)
                    .fmul()
                    .ld(dy)
                    .ld(dy)
                    .fmul()
                    .fadd()
                    .ld(dz)
                    .ld(dz)
                    .fmul()
                    .fadd();
                f.fsqrt().st(inv);
                f.ld(dx).ld(inv).fdiv().st(dx);
                f.ld(dy).ld(inv).fdiv().st(dy);
                f.ld(dz).ld(inv).fdiv().st(dz);

                f.cf(1.0e30).st(best);
                f.ci(-1).st(hit);
                f.for_in(s, 0.into(), n_spheres.into(), |f| {
                    // oc = dot(dir, center); cq = |center|^2 - r^2
                    f.ld(dx)
                        .arr_get(sx, |f| {
                            f.ld(s);
                        })
                        .fmul();
                    f.ld(dy)
                        .arr_get(sy, |f| {
                            f.ld(s);
                        })
                        .fmul()
                        .fadd();
                    f.ld(dz)
                        .arr_get(sz, |f| {
                            f.ld(s);
                        })
                        .fmul()
                        .fadd()
                        .st(bq);
                    f.arr_get(sx, |f| {
                        f.ld(s);
                    })
                    .dup()
                    .fmul();
                    f.arr_get(sy, |f| {
                        f.ld(s);
                    })
                    .dup()
                    .fmul()
                    .fadd();
                    f.arr_get(sz, |f| {
                        f.ld(s);
                    })
                    .dup()
                    .fmul()
                    .fadd();
                    f.arr_get(sr, |f| {
                        f.ld(s);
                    })
                    .dup()
                    .fmul()
                    .fsub()
                    .st(cq);
                    // disc = bq^2 - cq
                    f.ld(bq).ld(bq).fmul().ld(cq).fsub().st(disc);
                    f.if_fcmp(
                        Cond::Gt,
                        |f| {
                            f.ld(disc).cf(0.0);
                        },
                        |f| {
                            f.ld(bq).ld(disc).fsqrt().fsub().st(t);
                            f.if_fcmp(
                                Cond::Gt,
                                |f| {
                                    f.ld(t).cf(0.001);
                                },
                                |f| {
                                    f.if_fcmp(
                                        Cond::Lt,
                                        |f| {
                                            f.ld(t).ld(best);
                                        },
                                        |f| {
                                            f.ld(t).st(best);
                                            f.ld(s).st(hit);
                                        },
                                    );
                                },
                            );
                        },
                    );
                });
                // shade: Lambertian term from the surface normal plus a
                // shadow ray toward the light at (0, -10, 0)
                f.if_else_icmp(
                    Cond::Ge,
                    |f| {
                        f.ld(hit).ci(0);
                    },
                    |f| {
                        // hit point p = t*dir; normal n = (p - c)/r
                        f.ld(best)
                            .ld(dx)
                            .fmul()
                            .arr_get(sx, |f| {
                                f.ld(hit);
                            })
                            .fsub()
                            .arr_get(sr, |f| {
                                f.ld(hit);
                            })
                            .fdiv()
                            .st(nx);
                        f.ld(best)
                            .ld(dy)
                            .fmul()
                            .arr_get(sy, |f| {
                                f.ld(hit);
                            })
                            .fsub()
                            .arr_get(sr, |f| {
                                f.ld(hit);
                            })
                            .fdiv()
                            .st(ny2);
                        f.ld(best)
                            .ld(dz)
                            .fmul()
                            .arr_get(sz, |f| {
                                f.ld(hit);
                            })
                            .fsub()
                            .arr_get(sr, |f| {
                                f.ld(hit);
                            })
                            .fdiv()
                            .st(nz);
                        // light direction is (0,-1,0): lambert = max(0, -ny)
                        f.ld(ny2).fneg().cf(0.0).fmax().st(shade);
                        // shadow ray: any other sphere above the hit
                        // point blocks the light (cheap occlusion walk)
                        f.ci(1).st(lit);
                        f.for_in(s, 0.into(), n_spheres.into(), |f| {
                            f.if_icmp(
                                Cond::Ne,
                                |f| {
                                    f.ld(s).ld(hit);
                                },
                                |f| {
                                    // blocked if the blocker sits above
                                    // (smaller y) and overlaps in x
                                    f.if_fcmp(
                                        Cond::Lt,
                                        |f| {
                                            f.arr_get(sy, |f| {
                                                f.ld(s);
                                            });
                                            f.ld(best).ld(dy).fmul();
                                        },
                                        |f| {
                                            f.if_fcmp(
                                                Cond::Lt,
                                                |f| {
                                                    f.ld(best)
                                                        .ld(dx)
                                                        .fmul()
                                                        .arr_get(sx, |f| {
                                                            f.ld(s);
                                                        })
                                                        .fsub()
                                                        .fabs();
                                                    f.arr_get(sr, |f| {
                                                        f.ld(s);
                                                    });
                                                },
                                                |f| {
                                                    f.ci(0).st(lit);
                                                },
                                            );
                                        },
                                    );
                                },
                            );
                        });
                        f.if_icmp(
                            Cond::Eq,
                            |f| {
                                f.ld(lit).ci(0);
                            },
                            |f| {
                                f.ld(shade).cf(0.25).fmul().st(shade);
                            },
                        );
                        // pixel = ambient + diffuse, distance-attenuated
                        f.cf(40.0).ld(shade).cf(215.0).fmul().fadd();
                        f.ld(best)
                            .cf(4.0)
                            .fmul()
                            .fsub()
                            .cf(0.0)
                            .fmax()
                            .cf(255.0)
                            .fmin()
                            .f2i();
                    },
                    |f| {
                        f.ci(16); // background
                    },
                );
                f.ld(img).swap();
                f.ld(py).ci(width).imul().ld(px).iadd().swap();
                f.astore();
            });
        });

        // image checksum
        f.ci(0).st(sum);
        f.for_in(i, 0.into(), (width * height).into(), |f| {
            f.ld(sum)
                .arr_get(img, |f| {
                    f.ld(i);
                })
                .iadd()
                .st(sum);
        });
        f.ld(sum).ret();
    });
    b.finish(main).expect("raytrace builds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvm::{Interp, NullSink};

    #[test]
    fn image_contains_hits_and_background() {
        let p = build(DataSize::Small);
        let r = Interp::run(&p, &mut NullSink).unwrap();
        let sum = r.ret.unwrap().as_int().unwrap();
        let pixels = 16 * 12;
        // all-background would be exactly 16*pixels; hits push it higher
        assert!(sum > 16 * pixels, "sum {sum}");
        assert!(sum < 256 * pixels, "sum {sum}");
    }
}
