//! moldyn: molecular dynamics pair forces (Java Grande moldyn).
//!
//! N particles in a periodic box; each step computes Lennard-Jones-ish
//! pair forces within a cutoff and integrates positions. The
//! per-particle force loop has the very fine-grained threads Table 6
//! reports for moldyn (~96-cycle threads): each particle's force
//! accumulates privately, and the integration loop is embarrassingly
//! parallel.

use crate::util::{define_fill_float, new_float_array};
use crate::DataSize;
use tvm::{Cond, Program, ProgramBuilder};

/// Builds the benchmark.
pub fn build(size: DataSize) -> Program {
    let n: i64 = size.pick(24, 64, 160);
    let steps: i64 = size.pick(4, 10, 16);
    let mut b = ProgramBuilder::new();
    let fill = define_fill_float(&mut b);

    let main = b.function("main", 0, true, |f| {
        let (x, y, fx, fy, vx, vy) = (
            f.local(),
            f.local(),
            f.local(),
            f.local(),
            f.local(),
            f.local(),
        );
        let (t, i, j, dx, dy, r2, s, acc) = (
            f.local(),
            f.local(),
            f.local(),
            f.local(),
            f.local(),
            f.local(),
            f.local(),
            f.local(),
        );
        for arr in [x, y, fx, fy, vx, vy] {
            new_float_array(f, arr, n);
        }
        f.ld(x).ci(0x301D).call(fill);
        f.ld(y).ci(0x60D1).call(fill);

        f.for_in(t, 0.into(), steps.into(), |f| {
            // force pass: one thread per particle i
            f.for_in(i, 0.into(), n.into(), |f| {
                f.cf(0.0).st(dx); // reuse dx/dy as private accumulators
                f.cf(0.0).st(dy);
                f.for_in(j, 0.into(), n.into(), |f| {
                    f.if_icmp(
                        Cond::Ne,
                        |f| {
                            f.ld(i).ld(j);
                        },
                        |f| {
                            // r2 = (xi-xj)^2 + (yi-yj)^2 + eps
                            f.arr_get(x, |f| {
                                f.ld(i);
                            })
                            .arr_get(x, |f| {
                                f.ld(j);
                            })
                            .fsub()
                            .st(r2);
                            f.arr_get(y, |f| {
                                f.ld(i);
                            })
                            .arr_get(y, |f| {
                                f.ld(j);
                            })
                            .fsub()
                            .st(s);
                            f.ld(r2)
                                .ld(r2)
                                .fmul()
                                .ld(s)
                                .ld(s)
                                .fmul()
                                .fadd()
                                .cf(0.01)
                                .fadd();
                            f.st(r2);
                            // within cutoff: f += (1/r2 - 0.5) * d
                            f.if_fcmp(
                                Cond::Lt,
                                |f| {
                                    f.ld(r2).cf(0.25);
                                },
                                |f| {
                                    f.cf(1.0).ld(r2).fdiv().cf(0.5).fsub().st(s);
                                    f.ld(dx)
                                        .arr_get(x, |f| {
                                            f.ld(i);
                                        })
                                        .arr_get(x, |f| {
                                            f.ld(j);
                                        })
                                        .fsub()
                                        .ld(s)
                                        .fmul()
                                        .fadd()
                                        .st(dx);
                                    f.ld(dy)
                                        .arr_get(y, |f| {
                                            f.ld(i);
                                        })
                                        .arr_get(y, |f| {
                                            f.ld(j);
                                        })
                                        .fsub()
                                        .ld(s)
                                        .fmul()
                                        .fadd()
                                        .st(dy);
                                },
                            );
                        },
                    );
                });
                f.arr_set(
                    fx,
                    |f| {
                        f.ld(i);
                    },
                    |f| {
                        f.ld(dx);
                    },
                );
                f.arr_set(
                    fy,
                    |f| {
                        f.ld(i);
                    },
                    |f| {
                        f.ld(dy);
                    },
                );
            });
            // integrate (parallel): v += f*dt; p += v*dt, wrapped to [0,1)
            f.for_in(i, 0.into(), n.into(), |f| {
                for (vel, force, pos) in [(vx, fx, x), (vy, fy, y)] {
                    f.arr_set(
                        vel,
                        |f| {
                            f.ld(i);
                        },
                        |f| {
                            f.arr_get(vel, |f| {
                                f.ld(i);
                            })
                            .arr_get(force, |f| {
                                f.ld(i);
                            })
                            .cf(0.0005)
                            .fmul()
                            .fadd();
                        },
                    );
                    f.arr_set(
                        pos,
                        |f| {
                            f.ld(i);
                        },
                        |f| {
                            // wrap via p - floor-ish: p = |p + v*dt| mod-ish
                            f.arr_get(pos, |f| {
                                f.ld(i);
                            })
                            .arr_get(vel, |f| {
                                f.ld(i);
                            })
                            .cf(0.01)
                            .fmul()
                            .fadd()
                            .fabs();
                            f.dup().f2i().i2f().fsub().fabs();
                        },
                    );
                }
            });
        });

        // kinetic-energy checksum
        f.cf(0.0).st(acc);
        f.for_in(i, 0.into(), n.into(), |f| {
            f.ld(acc);
            f.arr_get(vx, |f| {
                f.ld(i);
            })
            .dup()
            .fmul();
            f.arr_get(vy, |f| {
                f.ld(i);
            })
            .dup()
            .fmul()
            .fadd()
            .fadd()
            .st(acc);
        });
        f.ld(acc).cf(1.0e9).fmul().f2i().ret();
    });
    b.finish(main).expect("moldyn builds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvm::{Interp, NullSink};

    #[test]
    fn particles_acquire_kinetic_energy() {
        let p = build(DataSize::Small);
        let r = Interp::run(&p, &mut NullSink).unwrap();
        let ke = r.ret.unwrap().as_int().unwrap();
        assert!(ke > 0, "system stayed frozen");
    }
}
