//! LuFactor: LU factorization with partial pivoting (jBYTEmark /
//! Linpack style, 101×101 at the paper's data size).
//!
//! The elimination-step loop over `k` is serial (each step transforms
//! the trailing submatrix the next step reads), but the row-update
//! loop inside a step is parallel. As the matrix grows, updating one
//! whole trailing submatrix per outer thread overflows the speculative
//! store buffer — the paper's canonical data-set-sensitivity example.

use crate::util::{define_fill_float, new_float_array};
use crate::DataSize;
use tvm::{Cond, Program, ProgramBuilder};

/// Builds the benchmark.
pub fn build(size: DataSize) -> Program {
    let n: i64 = size.pick(21, 101, 201);
    let mut b = ProgramBuilder::new();
    let fill = define_fill_float(&mut b);

    let main = b.function("main", 0, true, |f| {
        let m = f.local();
        let (k, i, j, piv, big, tmp, factor, acc) = (
            f.local(),
            f.local(),
            f.local(),
            f.local(),
            f.local(),
            f.local(),
            f.local(),
            f.local(),
        );
        new_float_array(f, m, n * n);
        f.ld(m).ci(0x10F).call(fill);
        // strengthen the diagonal so the factorization is well posed
        f.for_in(i, 0.into(), n.into(), |f| {
            f.arr_set(
                m,
                |f| {
                    f.ld(i).ci(n).imul().ld(i).iadd();
                },
                |f| {
                    f.arr_get(m, |f| {
                        f.ld(i).ci(n).imul().ld(i).iadd();
                    })
                    .cf(n as f64)
                    .fadd();
                },
            );
        });

        f.for_in(k, 0.into(), (n - 1).into(), |f| {
            // partial pivot: find the largest |m[i][k]|, i >= k
            f.ld(k).st(piv);
            f.arr_get(m, |f| {
                f.ld(k).ci(n).imul().ld(k).iadd();
            })
            .fabs()
            .st(big);
            f.for_in(i, k.into(), n.into(), |f| {
                f.if_fcmp(
                    Cond::Gt,
                    |f| {
                        f.arr_get(m, |f| {
                            f.ld(i).ci(n).imul().ld(k).iadd();
                        })
                        .fabs()
                        .ld(big);
                    },
                    |f| {
                        f.arr_get(m, |f| {
                            f.ld(i).ci(n).imul().ld(k).iadd();
                        })
                        .fabs()
                        .st(big);
                        f.ld(i).st(piv);
                    },
                );
            });
            // swap rows k and piv
            f.if_icmp(
                Cond::Ne,
                |f| {
                    f.ld(piv).ld(k);
                },
                |f| {
                    f.for_in(j, 0.into(), n.into(), |f| {
                        f.arr_get(m, |f| {
                            f.ld(k).ci(n).imul().ld(j).iadd();
                        })
                        .st(tmp);
                        f.arr_set(
                            m,
                            |f| {
                                f.ld(k).ci(n).imul().ld(j).iadd();
                            },
                            |f| {
                                f.arr_get(m, |f| {
                                    f.ld(piv).ci(n).imul().ld(j).iadd();
                                });
                            },
                        );
                        f.arr_set(
                            m,
                            |f| {
                                f.ld(piv).ci(n).imul().ld(j).iadd();
                            },
                            |f| {
                                f.ld(tmp);
                            },
                        );
                    });
                },
            );
            // eliminate below the pivot: rows are independent
            f.for_in(i, 0.into(), n.into(), |f| {
                f.if_icmp(
                    Cond::Gt,
                    |f| {
                        f.ld(i).ld(k);
                    },
                    |f| {
                        f.arr_get(m, |f| {
                            f.ld(i).ci(n).imul().ld(k).iadd();
                        })
                        .arr_get(m, |f| {
                            f.ld(k).ci(n).imul().ld(k).iadd();
                        })
                        .fdiv()
                        .st(factor);
                        f.arr_set(
                            m,
                            |f| {
                                f.ld(i).ci(n).imul().ld(k).iadd();
                            },
                            |f| {
                                f.ld(factor);
                            },
                        );
                        f.for_in(j, k.into(), n.into(), |f| {
                            f.if_icmp(
                                Cond::Gt,
                                |f| {
                                    f.ld(j).ld(k);
                                },
                                |f| {
                                    f.arr_set(
                                        m,
                                        |f| {
                                            f.ld(i).ci(n).imul().ld(j).iadd();
                                        },
                                        |f| {
                                            f.arr_get(m, |f| {
                                                f.ld(i).ci(n).imul().ld(j).iadd();
                                            })
                                            .ld(factor)
                                            .arr_get(m, |f| {
                                                f.ld(k).ci(n).imul().ld(j).iadd();
                                            })
                                            .fmul()
                                            .fsub();
                                        },
                                    );
                                },
                            );
                        });
                    },
                );
            });
        });

        // checksum: log|det| = sum log|diag|
        f.cf(0.0).st(acc);
        f.for_in(i, 0.into(), n.into(), |f| {
            f.ld(acc)
                .arr_get(m, |f| {
                    f.ld(i).ci(n).imul().ld(i).iadd();
                })
                .fabs()
                .flog()
                .fadd()
                .st(acc);
        });
        f.ld(acc).cf(1000.0).fmul().f2i().ret();
    });
    b.finish(main).expect("LuFactor builds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvm::{Interp, NullSink};

    #[test]
    fn factorization_has_positive_log_det() {
        let p = build(DataSize::Small);
        let r = Interp::run(&p, &mut NullSink).unwrap();
        let logdet = r.ret.unwrap().as_int().unwrap() as f64 / 1000.0;
        // diagonally dominant matrix: log|det| ~ n*log(n) ballpark
        assert!(logdet > 10.0, "log|det| = {logdet}");
        assert!(logdet < 200.0, "log|det| = {logdet}");
    }
}
