//! euler: 2D fluid-dynamics stencil relaxation (Java Grande euler,
//! reduced to its sweep structure on the paper's 33×9 grid).
//!
//! Jacobi-style sweeps over a structured grid: each time step computes
//! a flux-balanced update of every interior cell from its four
//! neighbors, double-buffered. Rows are independent within a sweep —
//! the multi-level parallelism whose best decomposition level shifts
//! with the grid size (Table 6 marks euler data-set sensitive).

use crate::util::{define_fill_float, new_float_array};
use crate::DataSize;
use tvm::{Program, ProgramBuilder};

/// Builds the benchmark. The paper's data set is a 33×9 grid.
pub fn build(size: DataSize) -> Program {
    let (nx, ny): (i64, i64) = size.pick((17, 5), (33, 9), (129, 33));
    let steps: i64 = size.pick(6, 20, 20);
    let mut b = ProgramBuilder::new();
    let fill = define_fill_float(&mut b);

    let main = b.function("main", 0, true, |f| {
        let (u, v) = (f.local(), f.local());
        let (t, i, j, acc) = (f.local(), f.local(), f.local(), f.local());
        new_float_array(f, u, nx * ny);
        new_float_array(f, v, nx * ny);
        f.ld(u).ci(0xE01A).call(fill);

        f.for_in(t, 0.into(), steps.into(), |f| {
            // sweep: v = relax(u)
            f.for_in(i, 1.into(), (nx - 1).into(), |f| {
                f.for_in(j, 1.into(), (ny - 1).into(), |f| {
                    f.ld(v);
                    f.ld(i).ci(ny).imul().ld(j).iadd();
                    // 0.25*(N+S+E+W) + 0.5*center - artificial viscosity
                    f.arr_get(u, |f| {
                        f.ld(i).ci(1).isub().ci(ny).imul().ld(j).iadd();
                    });
                    f.arr_get(u, |f| {
                        f.ld(i).ci(1).iadd().ci(ny).imul().ld(j).iadd();
                    })
                    .fadd();
                    f.arr_get(u, |f| {
                        f.ld(i).ci(ny).imul().ld(j).iadd().ci(1).isub();
                    })
                    .fadd();
                    f.arr_get(u, |f| {
                        f.ld(i).ci(ny).imul().ld(j).iadd().ci(1).iadd();
                    })
                    .fadd();
                    f.cf(0.125).fmul();
                    f.arr_get(u, |f| {
                        f.ld(i).ci(ny).imul().ld(j).iadd();
                    })
                    .cf(0.5)
                    .fmul()
                    .fadd();
                    f.astore();
                });
            });
            // copy back: u = v (interior)
            f.for_in(i, 1.into(), (nx - 1).into(), |f| {
                f.for_in(j, 1.into(), (ny - 1).into(), |f| {
                    f.arr_set(
                        u,
                        |f| {
                            f.ld(i).ci(ny).imul().ld(j).iadd();
                        },
                        |f| {
                            f.arr_get(v, |f| {
                                f.ld(i).ci(ny).imul().ld(j).iadd();
                            });
                        },
                    );
                });
            });
        });

        // checksum (scaled energy)
        f.cf(0.0).st(acc);
        f.for_in(i, 0.into(), (nx * ny).into(), |f| {
            f.ld(acc)
                .arr_get(u, |f| {
                    f.ld(i);
                })
                .fadd()
                .st(acc);
        });
        f.ld(acc).cf(1_000_000.0).fmul().f2i().ret();
    });
    b.finish(main).expect("euler builds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvm::{Interp, NullSink};

    #[test]
    fn relaxation_dissipates_but_preserves_positivity() {
        let p = build(DataSize::Small);
        let r = Interp::run(&p, &mut NullSink).unwrap();
        let scaled = r.ret.unwrap().as_int().unwrap();
        // initial sum is ~ (17*5)/2 = 42.5; relaxation with factor
        // (0.125*4 + 0.5) = 1.0 on interior, but boundary leakage
        // shrinks it — must stay positive and below the start
        assert!(scaled > 0, "energy {scaled}");
        assert!(scaled < 85_000_000, "energy {scaled}");
    }
}
