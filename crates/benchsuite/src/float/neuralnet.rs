//! NeuralNet: MLP forward/backward training (jBYTEmark NeuralNet,
//! 35×8×8 at the paper's data size).
//!
//! Classic backprop over a 3-layer perceptron with a sigmoid
//! activation. Per-neuron loops are short (Table 6: 9 threads of ~617
//! cycles), and the level worth speculating on flips between the
//! neuron loop and the weight loop as the layer widths change — the
//! NeuralNet data-set sensitivity the paper calls out.

use crate::util::{define_fill_float, new_float_array};
use crate::DataSize;
use tvm::{FuncId, Program, ProgramBuilder};

/// Defines `sigmoid(x) = 1 / (1 + exp(-x))`.
fn define_sigmoid(b: &mut ProgramBuilder) -> FuncId {
    b.function("sigmoid", 1, true, |f| {
        let x = f.param(0);
        f.cf(1.0).cf(1.0).ld(x).fneg().fexp().fadd().fdiv().ret();
    })
}

/// Builds the benchmark.
pub fn build(size: DataSize) -> Program {
    let (n_in, n_hid, n_out): (i64, i64, i64) = size.pick((12, 5, 4), (35, 8, 8), (70, 24, 16));
    let epochs: i64 = size.pick(6, 20, 25);
    let rate = 0.3f64;
    let mut b = ProgramBuilder::new();
    let fill = define_fill_float(&mut b);
    let sigmoid = define_sigmoid(&mut b);

    let main = b.function("main", 0, true, |f| {
        let (w1, w2, input, hid, out, target, dout, dhid) = (
            f.local(),
            f.local(),
            f.local(),
            f.local(),
            f.local(),
            f.local(),
            f.local(),
            f.local(),
        );
        let (e, i, j, acc, v) = (f.local(), f.local(), f.local(), f.local(), f.local());
        new_float_array(f, w1, n_in * n_hid);
        new_float_array(f, w2, n_hid * n_out);
        new_float_array(f, input, n_in);
        new_float_array(f, hid, n_hid);
        new_float_array(f, out, n_out);
        new_float_array(f, target, n_out);
        new_float_array(f, dout, n_out);
        new_float_array(f, dhid, n_hid);
        f.ld(w1).ci(0x11).call(fill);
        f.ld(w2).ci(0x22).call(fill);
        f.ld(input).ci(0x33).call(fill);
        f.ld(target).ci(0x44).call(fill);

        f.for_in(e, 0.into(), epochs.into(), |f| {
            // forward: hidden layer (thread per hidden neuron)
            f.for_in(j, 0.into(), n_hid.into(), |f| {
                f.cf(0.0).st(acc);
                f.for_in(i, 0.into(), n_in.into(), |f| {
                    f.ld(acc)
                        .arr_get(input, |f| {
                            f.ld(i);
                        })
                        .arr_get(w1, |f| {
                            f.ld(i).ci(n_hid).imul().ld(j).iadd();
                        })
                        .fmul()
                        .fadd()
                        .st(acc);
                });
                f.ld(acc).call(sigmoid).st(v);
                f.arr_set(
                    hid,
                    |f| {
                        f.ld(j);
                    },
                    |f| {
                        f.ld(v);
                    },
                );
            });
            // forward: output layer
            f.for_in(j, 0.into(), n_out.into(), |f| {
                f.cf(0.0).st(acc);
                f.for_in(i, 0.into(), n_hid.into(), |f| {
                    f.ld(acc)
                        .arr_get(hid, |f| {
                            f.ld(i);
                        })
                        .arr_get(w2, |f| {
                            f.ld(i).ci(n_out).imul().ld(j).iadd();
                        })
                        .fmul()
                        .fadd()
                        .st(acc);
                });
                f.ld(acc).call(sigmoid).st(v);
                f.arr_set(
                    out,
                    |f| {
                        f.ld(j);
                    },
                    |f| {
                        f.ld(v);
                    },
                );
                // output delta: (t - o) * o * (1 - o)
                f.arr_get(target, |f| {
                    f.ld(j);
                })
                .ld(v)
                .fsub()
                .ld(v)
                .fmul()
                .cf(1.0)
                .ld(v)
                .fsub()
                .fmul()
                .st(v);
                f.arr_set(
                    dout,
                    |f| {
                        f.ld(j);
                    },
                    |f| {
                        f.ld(v);
                    },
                );
            });
            // backward: hidden deltas
            f.for_in(i, 0.into(), n_hid.into(), |f| {
                f.cf(0.0).st(acc);
                f.for_in(j, 0.into(), n_out.into(), |f| {
                    f.ld(acc)
                        .arr_get(dout, |f| {
                            f.ld(j);
                        })
                        .arr_get(w2, |f| {
                            f.ld(i).ci(n_out).imul().ld(j).iadd();
                        })
                        .fmul()
                        .fadd()
                        .st(acc);
                });
                f.arr_get(hid, |f| {
                    f.ld(i);
                })
                .st(v);
                f.ld(acc).ld(v).fmul().cf(1.0).ld(v).fsub().fmul().st(v);
                f.arr_set(
                    dhid,
                    |f| {
                        f.ld(i);
                    },
                    |f| {
                        f.ld(v);
                    },
                );
            });
            // weight updates (thread per source neuron)
            f.for_in(i, 0.into(), n_hid.into(), |f| {
                f.for_in(j, 0.into(), n_out.into(), |f| {
                    f.arr_set(
                        w2,
                        |f| {
                            f.ld(i).ci(n_out).imul().ld(j).iadd();
                        },
                        |f| {
                            f.arr_get(w2, |f| {
                                f.ld(i).ci(n_out).imul().ld(j).iadd();
                            })
                            .cf(rate)
                            .arr_get(dout, |f| {
                                f.ld(j);
                            })
                            .fmul()
                            .arr_get(hid, |f| {
                                f.ld(i);
                            })
                            .fmul()
                            .fadd();
                        },
                    );
                });
            });
            f.for_in(i, 0.into(), n_in.into(), |f| {
                f.for_in(j, 0.into(), n_hid.into(), |f| {
                    f.arr_set(
                        w1,
                        |f| {
                            f.ld(i).ci(n_hid).imul().ld(j).iadd();
                        },
                        |f| {
                            f.arr_get(w1, |f| {
                                f.ld(i).ci(n_hid).imul().ld(j).iadd();
                            })
                            .cf(rate)
                            .arr_get(dhid, |f| {
                                f.ld(j);
                            })
                            .fmul()
                            .arr_get(input, |f| {
                                f.ld(i);
                            })
                            .fmul()
                            .fadd();
                        },
                    );
                });
            });
        });

        // final error checksum
        f.cf(0.0).st(acc);
        f.for_in(j, 0.into(), n_out.into(), |f| {
            f.ld(acc)
                .arr_get(target, |f| {
                    f.ld(j);
                })
                .arr_get(out, |f| {
                    f.ld(j);
                })
                .fsub()
                .fabs()
                .fadd()
                .st(acc);
        });
        f.ld(acc).cf(1.0e6).fmul().f2i().ret();
    });
    b.finish(main).expect("NeuralNet builds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvm::{Interp, NullSink};

    #[test]
    fn training_reduces_error_below_random() {
        let p = build(DataSize::Small);
        let r = Interp::run(&p, &mut NullSink).unwrap();
        let err = r.ret.unwrap().as_int().unwrap() as f64 / 1.0e6;
        // 4 outputs, random targets in [0,1): untrained |err| would be
        // ~1.0 total; a few epochs must pull it well down
        assert!(err >= 0.0);
        assert!(err < 1.5, "error {err}");
    }
}
