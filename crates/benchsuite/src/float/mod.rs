//! The floating-point benchmarks of Table 6 (Java Grande and
//! jBYTEmark derived).

pub mod euler;
pub mod fft;
pub mod fourier;
pub mod lufactor;
pub mod moldyn;
pub mod neuralnet;
pub mod shallow;

use crate::{Benchmark, Category};

/// The seven floating point benchmarks, in Table 6 order.
pub fn benchmarks() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "euler",
            category: Category::FloatingPoint,
            description: "2D fluid dynamics stencil (33x9 grid)",
            build: euler::build,
            analyzable: true,
            data_sensitive: true,
        },
        Benchmark {
            name: "fft",
            category: Category::FloatingPoint,
            description: "Iterative radix-2 FFT (1024 points)",
            build: fft::build,
            analyzable: true,
            data_sensitive: true,
        },
        Benchmark {
            name: "FourierTest",
            category: Category::FloatingPoint,
            description: "Fourier series coefficients by numerical integration",
            build: fourier::build,
            analyzable: true,
            data_sensitive: false,
        },
        Benchmark {
            name: "LuFactor",
            category: Category::FloatingPoint,
            description: "LU factorization with partial pivoting (101x101)",
            build: lufactor::build,
            analyzable: true,
            data_sensitive: true,
        },
        Benchmark {
            name: "moldyn",
            category: Category::FloatingPoint,
            description: "Molecular dynamics pair forces (cutoff)",
            build: moldyn::build,
            analyzable: true,
            data_sensitive: false,
        },
        Benchmark {
            name: "NeuralNet",
            category: Category::FloatingPoint,
            description: "MLP forward/backward training (35x8x8)",
            build: neuralnet::build,
            analyzable: true,
            data_sensitive: true,
        },
        Benchmark {
            name: "shallow",
            category: Category::FloatingPoint,
            description: "Shallow water simulation (256x256)",
            build: shallow::build,
            analyzable: true,
            data_sensitive: true,
        },
    ]
}
