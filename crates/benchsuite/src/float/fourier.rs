//! FourierTest: Fourier series coefficients by numerical integration
//! (jBYTEmark FourierTest).
//!
//! Each coefficient `a_k` / `b_k` of `f(x) = (x+1)^x` on `[0, 2]` is a
//! trapezoid-rule integral with hundreds of `sin`/`cos`/`exp`/`log`
//! evaluations — the coefficient loop has the enormous thread sizes
//! Table 6 reports (entry "100 threads × 167802 cycles").

use crate::util::new_float_array;
use crate::DataSize;
use tvm::{FuncId, Program, ProgramBuilder};

/// Defines `func(x) -> (x+1)^x = exp(x * ln(x+1))`.
fn define_func(b: &mut ProgramBuilder) -> FuncId {
    b.function("pow_func", 1, true, |f| {
        let x = f.param(0);
        f.ld(x).ld(x).cf(1.0).fadd().flog().fmul().fexp().ret();
    })
}

/// Builds the benchmark.
pub fn build(size: DataSize) -> Program {
    let n_coeffs: i64 = size.pick(6, 30, 100);
    let n_steps: i64 = size.pick(40, 200, 400);
    let mut b = ProgramBuilder::new();
    let func = define_func(&mut b);

    let main = b.function("main", 0, true, |f| {
        let (a, bb) = (f.local(), f.local());
        let (k, s, x, acc, dx, omega) = (
            f.local(),
            f.local(),
            f.local(),
            f.local(),
            f.local(),
            f.local(),
        );
        let sum = f.local();
        new_float_array(f, a, n_coeffs);
        new_float_array(f, bb, n_coeffs);
        f.cf(2.0 / n_steps as f64).st(dx);

        // coefficient loop: one huge thread per coefficient
        f.for_in(k, 0.into(), n_coeffs.into(), |f| {
            // omega = pi * k
            f.ld(k).i2f().cf(std::f64::consts::PI).fmul().st(omega);
            // a_k = ∫ f(x) cos(omega x) dx
            f.cf(0.0).st(acc);
            f.for_in(s, 0.into(), n_steps.into(), |f| {
                f.ld(s).i2f().cf(0.5).fadd().ld(dx).fmul().st(x);
                f.ld(acc);
                f.ld(x).call(func);
                f.ld(omega).ld(x).fmul().fcos().fmul();
                f.fadd().st(acc);
            });
            f.arr_set(
                a,
                |f| {
                    f.ld(k);
                },
                |f| {
                    f.ld(acc).ld(dx).fmul();
                },
            );
            // b_k = ∫ f(x) sin(omega x) dx
            f.cf(0.0).st(acc);
            f.for_in(s, 0.into(), n_steps.into(), |f| {
                f.ld(s).i2f().cf(0.5).fadd().ld(dx).fmul().st(x);
                f.ld(acc);
                f.ld(x).call(func);
                f.ld(omega).ld(x).fmul().fsin().fmul();
                f.fadd().st(acc);
            });
            f.arr_set(
                bb,
                |f| {
                    f.ld(k);
                },
                |f| {
                    f.ld(acc).ld(dx).fmul();
                },
            );
        });

        // checksum
        f.cf(0.0).st(sum);
        f.for_in(k, 0.into(), n_coeffs.into(), |f| {
            f.ld(sum)
                .arr_get(a, |f| {
                    f.ld(k);
                })
                .fabs()
                .fadd()
                .arr_get(bb, |f| {
                    f.ld(k);
                })
                .fabs()
                .fadd()
                .st(sum);
        });
        f.ld(sum).cf(10000.0).fmul().f2i().ret();
    });
    b.finish(main).expect("FourierTest builds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvm::{Interp, NullSink};

    #[test]
    fn dc_coefficient_dominates() {
        let p = build(DataSize::Small);
        let r = Interp::run(&p, &mut NullSink).unwrap();
        let scaled = r.ret.unwrap().as_int().unwrap() as f64 / 10000.0;
        // a_0 = ∫ (x+1)^x dx over [0,2] ≈ 4.25; the absolute sum over
        // 6 coefficient pairs adds the slowly decaying harmonics
        assert!(scaled > 4.0, "sum {scaled}");
        assert!(scaled < 20.0, "sum {scaled}");
    }
}
