//! shallow: shallow-water equation solver (Java Grande-style, 256×256
//! at the paper's data size).
//!
//! Height and two momentum fields updated by finite-difference sweeps
//! with periodic boundaries. The row loop of each sweep is the
//! parallel decomposition; at 256×256 each row is a substantial
//! thread (Table 6: ~1420 cycles).

use crate::util::{define_fill_float, new_float_array};
use crate::DataSize;
use tvm::{Program, ProgramBuilder};

/// Builds the benchmark.
pub fn build(size: DataSize) -> Program {
    let n: i64 = size.pick(16, 64, 128); // grid edge (256 is too slow in debug tests; Default scales down proportionally)
    let steps: i64 = size.pick(3, 8, 10);
    let mut b = ProgramBuilder::new();
    let fill = define_fill_float(&mut b);

    let main = b.function("main", 0, true, |f| {
        let (h, u, v, hn) = (f.local(), f.local(), f.local(), f.local());
        let (t, i, j, acc) = (f.local(), f.local(), f.local(), f.local());
        for arr in [h, u, v, hn] {
            new_float_array(f, arr, n * n);
        }
        f.ld(h).ci(0x5EA).call(fill);
        f.ld(u).ci(0x0CE).call(fill);
        f.ld(v).ci(0xA11).call(fill);

        // idx(i,j) with periodic wrap: ((i+n)%n)*n + (j+n)%n
        let idx = |f: &mut tvm::FnBuilder, di: i64, dj: i64, i: tvm::Local, j: tvm::Local| {
            f.ld(i).ci(di + n).iadd().ci(n).irem().ci(n).imul();
            f.ld(j).ci(dj + n).iadd().ci(n).irem().iadd();
        };

        f.for_in(t, 0.into(), steps.into(), |f| {
            // continuity: hn = h - 0.1*(du/dx + dv/dy)
            f.for_in(i, 0.into(), n.into(), |f| {
                f.for_in(j, 0.into(), n.into(), |f| {
                    f.ld(hn);
                    f.ld(i).ci(n).imul().ld(j).iadd();
                    f.arr_get(h, |f| {
                        f.ld(i).ci(n).imul().ld(j).iadd();
                    });
                    f.ld(u);
                    idx(f, 1, 0, i, j);
                    f.aload();
                    f.ld(u);
                    idx(f, -1, 0, i, j);
                    f.aload();
                    f.fsub();
                    f.ld(v);
                    idx(f, 0, 1, i, j);
                    f.aload();
                    f.ld(v);
                    idx(f, 0, -1, i, j);
                    f.aload();
                    f.fsub();
                    f.fadd().cf(0.1).fmul().fsub();
                    f.astore();
                });
            });
            // momentum: u -= 0.1 * dh/dx ; v -= 0.1 * dh/dy (using hn)
            f.for_in(i, 0.into(), n.into(), |f| {
                f.for_in(j, 0.into(), n.into(), |f| {
                    f.arr_set(
                        u,
                        |f| {
                            f.ld(i).ci(n).imul().ld(j).iadd();
                        },
                        |f| {
                            f.arr_get(u, |f| {
                                f.ld(i).ci(n).imul().ld(j).iadd();
                            });
                            f.ld(hn);
                            idx(f, 1, 0, i, j);
                            f.aload();
                            f.ld(hn);
                            idx(f, -1, 0, i, j);
                            f.aload();
                            f.fsub().cf(0.1).fmul().fsub();
                        },
                    );
                    f.arr_set(
                        v,
                        |f| {
                            f.ld(i).ci(n).imul().ld(j).iadd();
                        },
                        |f| {
                            f.arr_get(v, |f| {
                                f.ld(i).ci(n).imul().ld(j).iadd();
                            });
                            f.ld(hn);
                            idx(f, 0, 1, i, j);
                            f.aload();
                            f.ld(hn);
                            idx(f, 0, -1, i, j);
                            f.aload();
                            f.fsub().cf(0.1).fmul().fsub();
                        },
                    );
                });
            });
            // h <- hn
            f.for_in(i, 0.into(), (n * n).into(), |f| {
                f.arr_set(
                    h,
                    |f| {
                        f.ld(i);
                    },
                    |f| {
                        f.arr_get(hn, |f| {
                            f.ld(i);
                        });
                    },
                );
            });
        });

        // mass checksum (conserved up to boundary-free periodic flux)
        f.cf(0.0).st(acc);
        f.for_in(i, 0.into(), (n * n).into(), |f| {
            f.ld(acc)
                .arr_get(h, |f| {
                    f.ld(i);
                })
                .fadd()
                .st(acc);
        });
        f.ld(acc).cf(1000.0).fmul().f2i().ret();
    });
    b.finish(main).expect("shallow builds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvm::{Interp, NullSink};

    #[test]
    fn mass_is_conserved_under_periodic_fluxes() {
        // the centered-difference continuity update conserves total
        // mass exactly on a periodic grid
        let p = build(DataSize::Small);
        let r = Interp::run(&p, &mut NullSink).unwrap();
        let mass = r.ret.unwrap().as_int().unwrap() as f64 / 1000.0;
        // initial mass: 256 uniform[0,1) cells ~ 128 ± noise
        assert!(mass > 90.0 && mass < 166.0, "mass {mass}");
    }
}
