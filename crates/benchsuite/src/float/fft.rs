//! fft: iterative radix-2 Cooley–Tukey FFT (Java Grande fft, 1024
//! points at the paper's data size).
//!
//! Bit-reversal permutation (parallel), then log₂N butterfly stages:
//! the stage loop is serial (each stage consumes the previous one) but
//! the butterfly-group loop inside a stage is parallel — the classic
//! multi-level decomposition choice TEST must make, which shifts with
//! the transform size.

use crate::util::{define_fill_float, new_float_array};
use crate::DataSize;
use tvm::{Cond, Program, ProgramBuilder};

/// Builds the benchmark.
pub fn build(size: DataSize) -> Program {
    let log_n: i64 = size.pick(6, 10, 12);
    let n: i64 = 1 << log_n;
    let mut b = ProgramBuilder::new();
    let fill = define_fill_float(&mut b);

    let main = b.function("main", 0, true, |f| {
        let (re, im) = (f.local(), f.local());
        let (i, j, k, bit, stage, half, step, grp) = (
            f.local(),
            f.local(),
            f.local(),
            f.local(),
            f.local(),
            f.local(),
            f.local(),
            f.local(),
        );
        let (wr, wi, tr, ti, ang, acc) = (
            f.local(),
            f.local(),
            f.local(),
            f.local(),
            f.local(),
            f.local(),
        );
        new_float_array(f, re, n);
        new_float_array(f, im, n);
        f.ld(re).ci(0xFF7).call(fill);

        // bit-reversal permutation (parallel across i)
        f.for_in(i, 0.into(), n.into(), |f| {
            // j = reverse bits of i
            f.ci(0).st(j);
            f.for_in(bit, 0.into(), log_n.into(), |f| {
                f.ld(j).ci(1).ishl();
                f.ld(i).ld(bit).ishr().ci(1).iand();
                f.ior().st(j);
            });
            f.if_icmp(
                Cond::Lt,
                |f| {
                    f.ld(i).ld(j);
                },
                |f| {
                    // swap re[i] <-> re[j]
                    f.arr_get(re, |f| {
                        f.ld(i);
                    })
                    .st(tr);
                    f.arr_set(
                        re,
                        |f| {
                            f.ld(i);
                        },
                        |f| {
                            f.arr_get(re, |f| {
                                f.ld(j);
                            });
                        },
                    );
                    f.arr_set(
                        re,
                        |f| {
                            f.ld(j);
                        },
                        |f| {
                            f.ld(tr);
                        },
                    );
                },
            );
        });

        // butterfly stages
        f.for_in(stage, 0.into(), log_n.into(), |f| {
            f.ci(1).ld(stage).ishl().st(half); // half = 2^stage
            f.ld(half).ci(2).imul().st(step);
            // groups of butterflies (parallel across grp)
            f.for_step(grp, 0.into(), n.into(), 1, |f| {
                // execute only when grp % step < half: one butterfly
                // per (group,offset) pair
                f.if_icmp(
                    Cond::Lt,
                    |f| {
                        f.ld(grp).ld(step).irem().ld(half);
                    },
                    |f| {
                        f.ld(grp).ld(half).iadd().st(k);
                        // twiddle w = exp(-2πi * (grp % step) / step)
                        f.ld(grp)
                            .ld(step)
                            .irem()
                            .i2f()
                            .cf(-std::f64::consts::TAU)
                            .fmul()
                            .ld(step)
                            .i2f()
                            .fdiv()
                            .st(ang);
                        f.ld(ang).fcos().st(wr);
                        f.ld(ang).fsin().st(wi);
                        // t = w * x[k]
                        f.ld(wr)
                            .arr_get(re, |f| {
                                f.ld(k);
                            })
                            .fmul()
                            .ld(wi)
                            .arr_get(im, |f| {
                                f.ld(k);
                            })
                            .fmul()
                            .fsub()
                            .st(tr);
                        f.ld(wr)
                            .arr_get(im, |f| {
                                f.ld(k);
                            })
                            .fmul()
                            .ld(wi)
                            .arr_get(re, |f| {
                                f.ld(k);
                            })
                            .fmul()
                            .fadd()
                            .st(ti);
                        // x[k] = x[grp] - t ; x[grp] += t
                        f.arr_set(
                            re,
                            |f| {
                                f.ld(k);
                            },
                            |f| {
                                f.arr_get(re, |f| {
                                    f.ld(grp);
                                })
                                .ld(tr)
                                .fsub();
                            },
                        );
                        f.arr_set(
                            im,
                            |f| {
                                f.ld(k);
                            },
                            |f| {
                                f.arr_get(im, |f| {
                                    f.ld(grp);
                                })
                                .ld(ti)
                                .fsub();
                            },
                        );
                        f.arr_set(
                            re,
                            |f| {
                                f.ld(grp);
                            },
                            |f| {
                                f.arr_get(re, |f| {
                                    f.ld(grp);
                                })
                                .ld(tr)
                                .fadd();
                            },
                        );
                        f.arr_set(
                            im,
                            |f| {
                                f.ld(grp);
                            },
                            |f| {
                                f.arr_get(im, |f| {
                                    f.ld(grp);
                                })
                                .ld(ti)
                                .fadd();
                            },
                        );
                    },
                );
            });
        });

        // Parseval-style checksum
        f.cf(0.0).st(acc);
        f.for_in(i, 0.into(), n.into(), |f| {
            f.ld(acc);
            f.arr_get(re, |f| {
                f.ld(i);
            })
            .dup()
            .fmul();
            f.arr_get(im, |f| {
                f.ld(i);
            })
            .dup()
            .fmul()
            .fadd()
            .fadd()
            .st(acc);
        });
        f.ld(acc).cf(1000.0).fmul().f2i().ret();
    });
    b.finish(main).expect("fft builds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvm::{Interp, NullSink};

    #[test]
    fn parseval_energy_scales_by_n() {
        // for an orthonormal-free radix-2 FFT, sum |X|^2 = N * sum |x|^2
        let p = build(DataSize::Small);
        let r = Interp::run(&p, &mut NullSink).unwrap();
        let spectral = r.ret.unwrap().as_int().unwrap() as f64 / 1000.0;
        // input energy: 64 uniform[0,1) samples ~ 64/3 ≈ 21.3 ± noise;
        // spectral energy must be N times that: ~1365 ± noise
        let per_n = spectral / 64.0;
        assert!(per_n > 12.0 && per_n < 32.0, "per-N energy {per_n}");
    }
}
