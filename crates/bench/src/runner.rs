//! Runs one benchmark through the full pipeline and summarizes what
//! the tables and figures need.

use benchsuite::{Benchmark, DataSize};
use jrpm::pipeline::{run_pipeline, PipelineConfig, PipelineReport};
use jrpm::slowdown::{profile_slowdown, SlowdownReport};
use tvm::VmError;

/// Everything measured for one benchmark at one data size.
#[derive(Debug)]
pub struct BenchResult {
    /// The benchmark descriptor.
    pub bench: Benchmark,
    /// Data size used.
    pub size: DataSize,
    /// Full pipeline output.
    pub report: PipelineReport,
    /// Figure 6 slowdown measurement (base + optimized).
    pub slowdown: SlowdownReport,
}

impl BenchResult {
    /// Table 6 column (e): selected loops with > 0.5 % coverage.
    pub fn selected_above_half_percent(&self) -> usize {
        self.report.selection.chosen_above(0.005).len()
    }

    /// Table 6 column (f): average static height of the selected
    /// loops (innermost = 1).
    pub fn avg_selected_height(&self) -> f64 {
        let sel = self.report.selection.chosen_above(0.005);
        if sel.is_empty() {
            return 0.0;
        }
        // `.get`-shaped lookups: a selection entry whose id is missing
        // from the candidate table or profile (a malformed request at
        // the server boundary) degrades the average, never panics
        let total: u32 = sel
            .iter()
            .filter_map(|c| self.report.candidates.try_candidate(c.loop_id))
            .map(|c| c.height)
            .sum();
        f64::from(total) / sel.len() as f64
    }

    /// Table 6 column (g): average threads per STL entry over selected
    /// loops.
    pub fn avg_threads_per_entry(&self) -> f64 {
        let sel = self.report.selection.chosen_above(0.005);
        if sel.is_empty() {
            return 0.0;
        }
        let s: f64 = sel
            .iter()
            .filter_map(|c| self.report.profile.stl.get(&c.loop_id))
            .map(|s| s.avg_iterations_per_entry())
            .sum();
        s / sel.len() as f64
    }

    /// Table 6 column (h): average thread size in cycles over selected
    /// loops, weighted by coverage.
    pub fn avg_thread_size(&self) -> f64 {
        let sel = self.report.selection.chosen_above(0.005);
        let total_cycles: u64 = sel.iter().map(|c| c.cycles).sum();
        if total_cycles == 0 {
            return 0.0;
        }
        let s: f64 = sel
            .iter()
            .filter_map(|c| {
                let stl = self.report.profile.stl.get(&c.loop_id)?;
                Some(stl.avg_thread_size() * c.cycles as f64)
            })
            .sum();
        s / total_cycles as f64
    }
}

/// Runs pipeline + slowdown measurement for one benchmark.
///
/// # Errors
///
/// Any [`VmError`] from the underlying executions.
pub fn run_benchmark(bench: &Benchmark, size: DataSize) -> Result<BenchResult, VmError> {
    run_benchmark_with(bench, size, &PipelineConfig::default())
}

/// [`run_benchmark`] with an explicit pipeline configuration — used by
/// the tables binary to switch on span tracing for `--trace-out`.
///
/// # Errors
///
/// Any [`VmError`] from the underlying executions.
pub fn run_benchmark_with(
    bench: &Benchmark,
    size: DataSize,
    cfg: &PipelineConfig,
) -> Result<BenchResult, VmError> {
    let program = (bench.build)(size);
    let report = run_pipeline(&program, cfg)?;
    // `report.candidates` are extracted on the rescued program when
    // the rescue stage transformed anything, so the slowdown run must
    // annotate that same program.
    let slowdown = profile_slowdown(report.rescue.program_for(&program), &report.candidates)?;
    Ok(BenchResult {
        bench: *bench,
        size,
        report,
        slowdown,
    })
}
