//! Text renderers for every table and figure of the paper's
//! evaluation.

use crate::runner::BenchResult;
use benchsuite::DataSize;
use cfgir::{
    classify_loop_pairs, classify_loop_pairs_evo, extract_slices, scev, Dominators, PairVerdict,
};
use hydra_sim::TlsConfig;
use jrpm::agreement::{agreement_report, AgreementReport};
use jrpm::pipeline::{run_pipeline, PipelineConfig};
use jrpm::slowdown::software_comparison;
use jrpm::tier::{run_tiered, LoopTier, TierConfig};
use test_tracer::hwcost::{hydra_budget, CostParams};
use test_tracer::TracerConfig;
use tvm::bus::KindCounts;
use tvm::{Cond, ElemKind, ProgramBuilder};

/// Table 1 — thread-level speculation buffer limits.
pub fn table1() -> String {
    let c = TlsConfig::default();
    let mut s = String::new();
    s.push_str("Table 1 - Thread-level speculation buffer limits\n");
    s.push_str("Buffer        Per-thread limit           Associativity\n");
    s.push_str(&format!(
        "Load buffer   {}kB ({} lines x 32B)   4-way\n",
        c.ld_line_limit * 32 / 1024,
        c.ld_line_limit
    ));
    s.push_str(&format!(
        "Store buffer  {}kB ({} lines x 32B)      Fully\n",
        c.st_line_limit * 32 / 1024,
        c.st_line_limit
    ));
    s
}

/// Table 2 — thread-level speculation overheads.
pub fn table2() -> String {
    let c = TlsConfig::default();
    let mut s = String::new();
    s.push_str("Table 2 - Thread-level speculation overheads\n");
    s.push_str("TLS Operation             Overhead / delay\n");
    s.push_str(&format!("Loop startup              {} cycles\n", c.startup));
    s.push_str(&format!(
        "Loop shutdown             {} cycles\n",
        c.shutdown
    ));
    s.push_str(&format!("Loop end-of-iteration     {} cycles\n", c.eoi));
    s.push_str(&format!(
        "Violation and restart     {} cycles\n",
        c.violation_restart
    ));
    s.push_str(&format!(
        "Store-load communication  {} cycles\n",
        c.comm_delay
    ));
    s
}

/// Table 3 — Equation 2 applied to the Huffman loops: the outer loop
/// must win over the inner one.
pub fn table3(size: DataSize) -> String {
    let bench = benchsuite::by_name("Huffman").expect("suite has Huffman");
    let program = (bench.build)(size);
    let report = run_pipeline(&program, &PipelineConfig::default()).expect("pipeline runs");

    // the decode nest: the dynamically nested pair with the largest
    // coverage (the outer do-while and the tree-descent inner while)
    let outer = report
        .profile
        .stl
        .iter()
        .filter(|(l, _)| report.profile.dominant_parent(**l).is_none())
        .max_by_key(|(_, s)| s.cycles)
        .map(|(l, _)| *l)
        .expect("an outer loop profiled");
    let inner = report.profile.children_of(Some(outer));

    let mut s = String::new();
    s.push_str("Table 3 - Equation 2 on the Huffman decode nest\n");
    s.push_str(&format!(
        "{:<26}{:>14}{:>10}{:>14}\n",
        "", "Seq (cycles)", "Speedup", "TLS (cycles)"
    ));
    let os = &report.profile.stl[&outer];
    let oe = &report.selection.estimates[&outer];
    s.push_str(&format!(
        "{:<26}{:>14}{:>10.2}{:>14}\n",
        "Outer loop", os.cycles, oe.speedup, oe.est_tls_cycles
    ));
    let mut inner_seq = 0u64;
    let mut inner_tls = 0u64;
    for l in &inner {
        let is = &report.profile.stl[l];
        let ie = &report.selection.estimates[l];
        inner_seq += is.cycles;
        inner_tls += ie.est_tls_cycles.min(is.cycles);
        s.push_str(&format!(
            "{:<26}{:>14}{:>10.2}{:>14}\n",
            format!("Inner loop {l}"),
            is.cycles,
            ie.speedup,
            ie.est_tls_cycles
        ));
    }
    let serial_rest = os.cycles.saturating_sub(inner_seq);
    s.push_str(&format!(
        "Nested alternative: inner TLS {} + serial {} = {}\n",
        inner_tls,
        serial_rest,
        inner_tls + serial_rest
    ));
    let chosen = report
        .selection
        .chosen
        .iter()
        .map(|c| c.loop_id.to_string())
        .collect::<Vec<_>>()
        .join(", ");
    s.push_str(&format!("Equation 2 selects: {chosen}\n"));
    s
}

/// Table 4 — the annotation instruction set (structural summary plus a
/// live count from an instrumented run).
pub fn table4() -> String {
    let mut s = String::new();
    s.push_str("Table 4 - Annotating instructions\n");
    for (instr, desc) in [
        ("lw/sw (heap)", "communicated to the tracer automatically"),
        ("lwl vn", "get store timestamp for local variable vn"),
        ("swl vn", "record store timestamp for local variable vn"),
        ("sloop n", "allocate bank; reserve n local timestamps"),
        ("eoi", "thread boundary; shift thread start timestamps"),
        ("eloop n", "free bank and n local timestamps"),
        ("(read stats)", "end-of-STL statistics read routine"),
    ] {
        s.push_str(&format!("  {instr:<14} {desc}\n"));
    }
    s
}

/// Table 5 — transistor budget; TEST must stay under 1 % of the CMP.
pub fn table5() -> String {
    let budget = hydra_budget(&CostParams::default(), 8);
    let total = budget.total();
    let mut s = String::new();
    s.push_str("Table 5 - Transistor count estimates (Hydra + TLS + TEST)\n");
    s.push_str(&format!(
        "{:<24}{:>7}{:>12}{:>14}{:>10}\n",
        "Structure", "Count", "Each", "Total", "% of total"
    ));
    for row in &budget.rows {
        s.push_str(&format!(
            "{:<24}{:>7}{:>12}{:>14}{:>9.2}%\n",
            row.name,
            row.count,
            row.each,
            row.total(),
            100.0 * row.total() as f64 / total as f64
        ));
    }
    s.push_str(&format!(
        "{:<24}{:>7}{:>12}{:>14}{:>10}\n",
        "Total", "", "", total, "100.00%"
    ));
    let share = budget.share("Comparator bank");
    s.push_str(&format!(
        "TEST comparator banks: {:.2}% of the CMP ({}: < 1%)\n",
        share * 100.0,
        if share < 0.01 { "PASS" } else { "FAIL" }
    ));
    s
}

/// Table 6 — per-benchmark characteristics and TEST analysis results.
pub fn table6(results: &[BenchResult]) -> String {
    let mut s = String::new();
    s.push_str("Table 6 - Benchmarks evaluated with STLs selected by TEST\n");
    s.push_str(&format!(
        "{:<14}{:>5}{:>5}{:>6}{:>6}{:>9}{:>8}{:>10}{:>10}\n",
        "Benchmark", "(a)", "(b)", "loops", "depth", "sel>0.5%", "height", "thr/entry", "size(cyc)"
    ));
    let mut cat = None;
    for r in results {
        if cat != Some(r.bench.category) {
            cat = Some(r.bench.category);
            s.push_str(&format!("-- {}\n", r.bench.category));
        }
        s.push_str(&format!(
            "{:<14}{:>5}{:>5}{:>6}{:>6}{:>9}{:>8.1}{:>10.0}{:>10.0}\n",
            r.bench.name,
            if r.bench.analyzable { "Y" } else { "N" },
            if r.bench.data_sensitive { "Y" } else { "N" },
            r.report.candidates.total_loops(),
            r.report.profile.max_dynamic_depth,
            r.selected_above_half_percent(),
            r.avg_selected_height(),
            r.avg_threads_per_entry(),
            r.avg_thread_size(),
        ));
    }
    s
}

/// Figure 6 — profiling slowdown per benchmark, base vs optimized,
/// with the component breakdown.
pub fn fig6(results: &[BenchResult]) -> String {
    let mut s = String::new();
    s.push_str("Figure 6 - Execution slowdown during profiling\n");
    s.push_str(&format!(
        "{:<14}{:>9}{:>9}   {:<30}\n",
        "Benchmark", "base", "optim.", "optimized breakdown (stats/locals/markers)"
    ));
    let mut worst: f64 = 0.0;
    for r in results {
        let b = &r.slowdown;
        let opt = &b.optimized;
        let total_ann = opt.breakdown.total().max(1);
        s.push_str(&format!(
            "{:<14}{:>8.1}%{:>8.1}%   {:>3.0}%/{:>3.0}%/{:>3.0}%\n",
            r.bench.name,
            (b.base.slowdown - 1.0) * 100.0,
            (opt.slowdown - 1.0) * 100.0,
            100.0 * opt.breakdown.stats_reads as f64 / total_ann as f64,
            100.0 * opt.breakdown.locals as f64 / total_ann as f64,
            100.0 * opt.breakdown.markers as f64 / total_ann as f64,
        ));
        worst = worst.max(opt.slowdown - 1.0);
    }
    s.push_str(&format!(
        "Worst optimized slowdown: {:.1}% (paper: 3-25%)\n",
        worst * 100.0
    ));
    s
}

/// The Figure 9 program: `if (i % n != 0) A[i] = f(A[i-1])` with the
/// load at the top of the iteration and the store at the bottom, so
/// the observed arcs are short. `n` must be a power of two.
pub fn fig9_program(n: i64) -> tvm::Program {
    let mut b = ProgramBuilder::new();
    let main = b.function("main", 0, false, |f| {
        let (a, i, x, k) = (f.local(), f.local(), f.local(), f.local());
        f.ci(4096).newarray(ElemKind::Int).st(a);
        f.for_in(i, 1.into(), 2000.into(), |f| {
            f.if_icmp(
                Cond::Ne,
                |f| {
                    f.ld(i).ci(n - 1).iand().ci(0);
                },
                |f| {
                    // load the previous element FIRST
                    f.arr_get(a, |f| {
                        f.ld(i).ci(1).isub().ci(4095).iand();
                    })
                    .st(x);
                    // a long dependent computation chain
                    f.for_in(k, 0.into(), 8.into(), |f| {
                        f.ld(x).ci(3).imul().ci(1).iadd().st(x);
                        f.ld(x).ld(x).ci(5).iushr().ixor().st(x);
                    });
                    // store LAST
                    f.arr_set(
                        a,
                        |f| {
                            f.ld(i).ci(4095).iand();
                        },
                        |f| {
                            f.ld(x);
                        },
                    );
                },
            );
        });
        f.ret_void();
    });
    b.finish(main).expect("fig9 program builds")
}

/// Figure 9 — the imprecision pathology: `A[i] = A[i-1]` gated on
/// `i % n != 0` looks serial to TEST although every n-th iteration is
/// independent.
pub fn fig9() -> String {
    let mut s = String::new();
    s.push_str("Figure 9 - Imprecision example: if (i % n != 0) A[i] = A[i-1]\n");
    s.push_str(&format!(
        "{:<6}{:>18}{:>18}\n",
        "n", "arc freq (t-1)", "estimated speedup"
    ));
    for n in [2i64, 4, 8] {
        let p = fig9_program(n);
        let report = run_pipeline(&p, &PipelineConfig::default()).expect("pipeline runs");
        let (l, stats) = report
            .profile
            .stl
            .iter()
            .max_by_key(|(_, st)| st.cycles)
            .expect("loop profiled");
        let est = &report.selection.estimates[l];
        s.push_str(&format!(
            "{:<6}{:>18.2}{:>18.2}\n",
            n,
            stats.arc_freq_t1(),
            est.speedup
        ));
    }
    s.push_str(
        "TEST sees frequent short arcs and predicts no speedup, although\n\
         parallelism exists at every n-th iteration (paper 6.2).\n",
    );
    s
}

/// Figure 10 — normalized execution time: sequential vs predicted,
/// with per-STL coverage blocks.
pub fn fig10(results: &[BenchResult]) -> String {
    let mut s = String::new();
    s.push_str("Figure 10 - Selected STLs: predicted normalized execution time\n");
    s.push_str(&format!(
        "{:<14}{:>7}{:>11}{:>8}{:>8}   per-STL coverage\n",
        "Benchmark", "STLs", "predicted", "serial", "cover"
    ));
    for r in results {
        let sel = r.report.selection.chosen_above(0.005);
        let coverage = r.report.selection.coverage();
        let mut blocks: Vec<String> = sel
            .iter()
            .take(6)
            .map(|c| format!("{}:{:.0}%", c.loop_id, c.coverage * 100.0))
            .collect();
        if sel.len() > 6 {
            blocks.push("…".into());
        }
        s.push_str(&format!(
            "{:<14}{:>7}{:>11.2}{:>8.2}{:>8.2}   {}\n",
            r.bench.name,
            sel.len(),
            r.report.predicted_normalized(),
            1.0 - coverage,
            coverage,
            blocks.join(" ")
        ));
    }
    s
}

/// Renders a 0..1 value as a fixed-width bar.
fn bar(v: f64, width: usize) -> String {
    let filled = ((v.clamp(0.0, 1.0)) * width as f64).round() as usize;
    let mut b = String::with_capacity(width);
    for i in 0..width {
        b.push(if i < filled { '#' } else { '.' });
    }
    b
}

/// Figure 11 — predicted vs actual normalized execution time, with the
/// paper's paired-bars rendering.
pub fn fig11(results: &[BenchResult]) -> String {
    let mut s = String::new();
    s.push_str("Figure 11 - Estimated versus actual speculative performance\n");
    s.push_str(&format!(
        "{:<14}{:>11}{:>9}{:>8}{:>11}{:>10}{:>7}   P/A (0..1)\n",
        "Benchmark", "predicted", "actual", "|err|", "violations", "overflows", "cv"
    ));
    let mut total_err = 0.0;
    for r in results {
        let pred = r.report.predicted_normalized();
        let act = r.report.actual_normalized();
        let viol: u64 = r
            .report
            .actual
            .per_loop
            .values()
            .map(|l| l.violations)
            .sum();
        let ovf: u64 = r.report.actual.per_loop.values().map(|l| l.overflows).sum();
        // the paper's stated disparity predictor: thread-size variance
        // of the selected loops (section 6.2)
        let max_cv = r
            .report
            .selection
            .chosen
            .iter()
            .map(|c| r.report.profile.stl[&c.loop_id].thread_size_cv())
            .fold(0.0f64, f64::max);
        total_err += (pred - act).abs();
        s.push_str(&format!(
            "{:<14}{:>11.2}{:>9.2}{:>8.2}{:>11}{:>10}{:>7.2}   P {}\n{:>70}   A {}\n",
            r.bench.name,
            pred,
            act,
            (pred - act).abs(),
            viol,
            ovf,
            max_cv,
            bar(pred, 25),
            "",
            bar(act, 25),
        ));
    }
    s.push_str(&format!(
        "Mean |predicted - actual| = {:.3}\n",
        total_err / results.len().max(1) as f64
    ));
    s
}

/// §5 claim — hardware vs software-only profiling slowdown.
pub fn softslow(size: DataSize) -> String {
    let mut s = String::new();
    s.push_str("Software-only vs hardware-assisted profiling (paper section 5)\n");
    s.push_str(&format!(
        "{:<14}{:>10}{:>12}{:>10}\n",
        "Benchmark", "hw", "sw (model)", "ratio"
    ));
    for name in ["Huffman", "LuFactor", "compress", "moldyn", "decJpeg"] {
        let bench = benchsuite::by_name(name).expect("benchmark exists");
        let program = (bench.build)(size);
        let cands = cfgir::extract_candidates(&program);
        let c = software_comparison(&program, &cands).expect("comparison runs");
        s.push_str(&format!(
            "{:<14}{:>9.2}x{:>11.0}x{:>10.0}\n",
            name,
            c.hw_slowdown,
            c.sw_slowdown,
            c.sw_slowdown / c.hw_slowdown
        ));
    }
    s
}

/// §4.1 comparison — method-call-return decompositions vs loop STLs.
/// The paper kept only loops because method forks rarely add coverage;
/// this artifact measures both shapes on the same programs.
pub fn methods(size: DataSize) -> String {
    use test_tracer::MethodTracer;
    let mut s = String::new();
    s.push_str("Method-call-return vs loop decompositions (paper section 4.1)\n");
    s.push_str(&format!(
        "{:<14}{:>12}{:>14}{:>14}{:>16}\n",
        "Benchmark", "call sites", "best fork", "fork save", "loop STL save"
    ));
    for name in [
        "Huffman",
        "EmFloatPnt",
        "NumHeapSort",
        "IDEA",
        "monteCarlo",
        "NeuralNet",
        "FourierTest",
    ] {
        let bench = benchsuite::by_name(name).expect("benchmark exists");
        let program = (bench.build)(size);
        // loop pipeline for the comparison baseline
        let report = run_pipeline(&program, &PipelineConfig::default()).expect("pipeline runs");
        let loop_save = 1.0 - report.predicted_normalized();
        // method profiling needs no annotations: run the plain program
        let mut mt = MethodTracer::new();
        let run = tvm::Interp::run(&program, &mut mt).expect("plain run");
        let stats = mt.into_stats();
        let ranked = test_tracer::rank_sites(&stats, run.cycles, 10);
        let (best_speedup, fork_save) = ranked
            .first()
            .map(|m| (m.speedup, m.coverage * (1.0 - 1.0 / m.speedup)))
            .unwrap_or((1.0, 0.0));
        s.push_str(&format!(
            "{:<14}{:>12}{:>13.2}x{:>13.1}%{:>15.1}%\n",
            name,
            stats.len(),
            best_speedup,
            fork_save * 100.0,
            loop_save * 100.0
        ));
    }
    s.push_str(
        "(save = fraction of program cycles removed; loop STLs dominate,\n\
         reproducing the paper's reason for focusing on loops)\n",
    );
    s
}

/// One benchmark's static pre-screen measurements, including the
/// baseline-vs-points-to pair-classification delta the committed
/// snapshot tracks.
#[derive(Debug, Clone)]
pub struct PrescreenRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Natural loops discovered.
    pub loops: usize,
    /// Qualified candidates.
    pub candidates: usize,
    /// Candidates the pre-screen demoted.
    pub demoted: usize,
    /// (load, store) access pairs across all candidate loop bodies.
    pub pairs: usize,
    /// Pairs proven disjoint by the structural rules alone (PR 1).
    pub baseline_disjoint: usize,
    /// Pairs proven disjoint with points-to facts.
    pub disjoint: usize,
    /// Of those, provable only through points-to.
    pub via_pointsto: usize,
    /// Abstract objects the points-to solve modelled.
    pub abstract_objects: usize,
}

/// Computes the pre-screen measurements for every benchmark. Pure
/// static analysis — no interpretation — so the output is fully
/// deterministic and a byte-exact snapshot can be committed.
pub fn prescreen_rows(size: DataSize) -> Vec<PrescreenRow> {
    let mut rows = Vec::new();
    for b in benchsuite::all() {
        let program = (b.build)(size);
        let cands = cfgir::extract_candidates(&program);
        let pt = cfgir::PointsTo::analyze(&program);
        let mut row = PrescreenRow {
            name: b.name,
            loops: cands.total_loops(),
            candidates: cands.candidates.len(),
            demoted: cands.demoted_count(),
            pairs: 0,
            baseline_disjoint: 0,
            disjoint: 0,
            via_pointsto: 0,
            abstract_objects: cands.pointsto.abstract_objects,
        };
        for c in &cands.candidates {
            let fa = &cands.functions[c.func.0 as usize];
            let f = &program.functions[c.func.0 as usize];
            let dom = Dominators::compute(&fa.cfg);
            let lp = &fa.forest.loops[c.loop_idx];
            let view = pt.view(c.func);
            let sharp = classify_loop_pairs(&program, f, &fa.cfg, &dom, lp, Some(&view));
            let base = classify_loop_pairs(&program, f, &fa.cfg, &dom, lp, None);
            row.pairs += sharp.len();
            row.baseline_disjoint += base
                .iter()
                .filter(|p| p.verdict == PairVerdict::Disjoint)
                .count();
            row.disjoint += sharp
                .iter()
                .filter(|p| p.verdict == PairVerdict::Disjoint)
                .count();
            row.via_pointsto += sharp.iter().filter(|p| p.via_pointsto).count();
        }
        rows.push(row);
    }
    rows.sort_by_key(|r| r.name);
    rows
}

/// The pre-screen snapshot as JSON, diffed by the `prescreen-gate`
/// binary against `results_prescreen_baseline.json`.
pub fn prescreen_json(rows: &[PrescreenRow]) -> String {
    let mut s = String::from("{\n  \"benchmarks\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": {}, \"loops\": {}, \"candidates\": {}, \"demoted\": {}, \
             \"pairs\": {}, \"baseline_disjoint\": {}, \"disjoint\": {}, \
             \"via_pointsto\": {}, \"abstract_objects\": {}}}{}\n",
            json_str(r.name),
            r.loops,
            r.candidates,
            r.demoted,
            r.pairs,
            r.baseline_disjoint,
            r.disjoint,
            r.via_pointsto,
            r.abstract_objects,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Static pre-screen summary — per benchmark, how many candidate loops
/// the memory-dependence analysis proved serial and demoted before any
/// profiling run, and how many access pairs the points-to sharpening
/// proved independent beyond the structural alias rules.
pub fn prescreen(size: DataSize) -> String {
    let mut s = String::new();
    s.push_str("Static memory-dependence pre-screen (per benchmark)\n");
    s.push_str(&format!(
        "{:<14}{:>7}{:>9}{:>8}{:>8}{:>11}{:>10}{:>8}\n",
        "Benchmark", "loops", "demoted", "traced", "pairs", "disj(PR1)", "disj(pt)", "+pt"
    ));
    let mut total_pruned = 0usize;
    let mut total_via_pt = 0usize;
    for r in prescreen_rows(size) {
        total_pruned += r.demoted;
        total_via_pt += r.via_pointsto;
        s.push_str(&format!(
            "{:<14}{:>7}{:>9}{:>8}{:>8}{:>11}{:>10}{:>8}\n",
            r.name,
            r.loops,
            r.demoted,
            r.candidates - r.demoted,
            r.pairs,
            r.baseline_disjoint,
            r.disjoint,
            r.via_pointsto,
        ));
    }
    s.push_str(&format!(
        "Total candidate loops pruned statically: {total_pruned}\n\
         Total access pairs proven independent only by points-to: {total_via_pt}\n"
    ));
    s
}

/// One benchmark's scalar-evolution measurements: how much further the
/// scev distance-vector sharpening pushes the pair classification past
/// the points-to pre-screen, how many certified pre-computation slices
/// were extracted, and whether the dynamic value-agreement replay
/// confirmed every claim.
#[derive(Debug, Clone)]
pub struct ScevRow {
    /// Benchmark name.
    pub name: &'static str,
    /// (load, store) access pairs across all candidate loop bodies —
    /// the same universe the pre-screen snapshot counts, so the gate
    /// can check per-benchmark monotonicity against it.
    pub pairs: usize,
    /// Pairs proven disjoint by the points-to pre-screen (PR 5).
    pub prescreen_disjoint: usize,
    /// Pairs proven disjoint with scev evolutions also available.
    pub disjoint: usize,
    /// Pairs carrying a `DistanceAtLeast` verdict — collisions proven
    /// at least that many iterations apart, which the pre-screen had
    /// to leave may-alias.
    pub distance_pairs: usize,
    /// Candidate loops whose Equation 2 estimate gains a RAW-chain
    /// overlap floor from a positive signed distance.
    pub floored_loops: usize,
    /// Loop-carried scalars with closed-form evolutions.
    pub closed_forms: usize,
    /// Certified pre-computation slices (verifier-approved).
    pub slices: usize,
    /// Slice candidates the independent verifier rejected.
    pub slices_rejected: usize,
    /// Per-iteration slice predictions checked against the replay.
    pub slice_checks: u64,
    /// Slice predictions the recorded stream refuted (must be 0).
    pub slice_violations: usize,
    /// Shared addresses cross-checked against a claimed distance.
    pub distance_checks: u64,
    /// Distance claims the replay refuted (must be 0).
    pub distance_violations: usize,
    /// The full agreement report's soundness verdict.
    pub sound: bool,
}

/// Computes the scalar-evolution snapshot for every benchmark: the
/// static columns re-run the pair classification (on the original
/// program, same universe as [`prescreen_rows`]) with evolutions
/// available; the dynamic columns come from the value-agreement replay
/// of [`agreement_report`].
///
/// # Panics
///
/// Panics if a benchmark's agreement replay fails — CI treats that as
/// a build failure.
pub fn scev_rows(size: DataSize) -> Vec<ScevRow> {
    let mut rows = Vec::new();
    for b in benchsuite::all() {
        let program = (b.build)(size);
        let cands = cfgir::extract_candidates(&program);
        let pt = cfgir::PointsTo::analyze(&program);
        let mut row = ScevRow {
            name: b.name,
            pairs: 0,
            prescreen_disjoint: 0,
            disjoint: 0,
            distance_pairs: 0,
            floored_loops: 0,
            closed_forms: 0,
            slices: 0,
            slices_rejected: 0,
            slice_checks: 0,
            slice_violations: 0,
            distance_checks: 0,
            distance_violations: 0,
            sound: false,
        };
        for c in &cands.candidates {
            let fa = &cands.functions[c.func.0 as usize];
            let f = &program.functions[c.func.0 as usize];
            let dom = Dominators::compute(&fa.cfg);
            let lp = &fa.forest.loops[c.loop_idx];
            let view = pt.view(c.func);
            let evo = scev::analyze_loop(&program, f, &fa.cfg, lp);
            let sharp = classify_loop_pairs_evo(&program, f, &fa.cfg, &dom, lp, Some(&view), &evo);
            let base = classify_loop_pairs(&program, f, &fa.cfg, &dom, lp, Some(&view));
            row.pairs += sharp.len();
            row.prescreen_disjoint += base
                .iter()
                .filter(|p| p.verdict == PairVerdict::Disjoint)
                .count();
            row.disjoint += sharp
                .iter()
                .filter(|p| p.verdict == PairVerdict::Disjoint)
                .count();
            row.distance_pairs += sharp
                .iter()
                .filter(|p| matches!(p.verdict, PairVerdict::DistanceAtLeast(_)))
                .count();
            row.closed_forms += evo.closed_form_count();
            let slices = extract_slices(&program, f, &fa.cfg, &fa.forest, c.loop_idx, &evo);
            row.slices += slices.slices.len();
            row.slices_rejected += slices.rejected;
        }
        row.floored_loops = cfgir::distance_floors(&program, &cands).len();
        let report = agreement_report(&program)
            .unwrap_or_else(|e| panic!("agreement report failed on {}: {e}", b.name));
        row.slice_checks = report.slice_checks;
        row.slice_violations = report.slice_violations.len();
        row.distance_checks = report.distance_checks;
        row.distance_violations = report.distance_violations.len();
        row.sound = report.sound();
        rows.push(row);
    }
    rows.sort_by_key(|r| r.name);
    rows
}

/// The scalar-evolution snapshot as JSON, diffed by the `scev-gate`
/// binary against `results_scev_baseline.json`.
pub fn scev_json(rows: &[ScevRow]) -> String {
    let mut s = String::from("{\n  \"benchmarks\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": {}, \"pairs\": {}, \"prescreen_disjoint\": {}, \
             \"disjoint\": {}, \"distance_pairs\": {}, \"floored_loops\": {}, \
             \"closed_forms\": {}, \"slices\": {}, \"slices_rejected\": {}, \
             \"slice_checks\": {}, \"slice_violations\": {}, \
             \"distance_checks\": {}, \"distance_violations\": {}, \"sound\": {}}}{}\n",
            json_str(r.name),
            r.pairs,
            r.prescreen_disjoint,
            r.disjoint,
            r.distance_pairs,
            r.floored_loops,
            r.closed_forms,
            r.slices,
            r.slices_rejected,
            r.slice_checks,
            r.slice_violations,
            r.distance_checks,
            r.distance_violations,
            u64::from(r.sound),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Scalar-evolution summary — per benchmark, how far the distance
/// vectors sharpen the pre-screen, the certified slice yield, and the
/// dynamic value-agreement verdict.
pub fn scev_table(size: DataSize) -> String {
    let mut s = String::new();
    s.push_str("Scalar-evolution sharpening and certified slices (per benchmark)\n");
    s.push_str(&format!(
        "{:<14}{:>7}{:>9}{:>9}{:>6}{:>7}{:>8}{:>5}{:>8}{:>8}{:>7}\n",
        "Benchmark",
        "pairs",
        "disj(pt)",
        "disj(ev)",
        "dist",
        "floors",
        "closed",
        "slc",
        "slc-chk",
        "dst-chk",
        "sound"
    ));
    let rows = scev_rows(size);
    for r in &rows {
        s.push_str(&format!(
            "{:<14}{:>7}{:>9}{:>9}{:>6}{:>7}{:>8}{:>5}{:>8}{:>8}{:>7}\n",
            r.name,
            r.pairs,
            r.prescreen_disjoint,
            r.disjoint,
            r.distance_pairs,
            r.floored_loops,
            r.closed_forms,
            r.slices,
            r.slice_checks,
            r.distance_checks,
            if r.sound { "yes" } else { "NO" },
        ));
    }
    let total_dist: usize = rows.iter().map(|r| r.distance_pairs).sum();
    let total_slices: usize = rows.iter().map(|r| r.slices).sum();
    let all_sound = rows.iter().all(|r| r.sound);
    s.push_str(&format!(
        "Distance vectors proven beyond the pre-screen: {total_dist}\n\
         Certified pre-computation slices: {total_slices}\n\
         Value-agreement invariant (every slice/distance claim replayed): {}\n",
        if all_sound { "HOLDS" } else { "VIOLATED" }
    ));
    s
}

/// One benchmark's loop-rescue verdicts: what the transform pass
/// lifted out of the demoted set, what it refused, and whether the
/// rescued loops then clear dynamic selection.
#[derive(Debug, Clone)]
pub struct RescueRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Candidates the pre-screen demoted on the program as written.
    pub demoted_before: usize,
    /// Candidates still demoted after rescue.
    pub demoted_after: usize,
    /// Verifier-accepted transforms applied.
    pub rescued: usize,
    /// Of those, reduction delta-rewrites.
    pub reductions: usize,
    /// Of those, scalar privatizations.
    pub privatizations: usize,
    /// Of those, loop distributions.
    pub distributions: usize,
    /// Loops a transform considered but could not legalize.
    pub rejected: usize,
    /// Selected STLs gained by running the pipeline on the rescued
    /// program instead of the original (0 when nothing was rescued).
    pub selected_gain: usize,
}

/// Computes the loop-rescue verdicts for every benchmark. The
/// transform/verify columns are pure static analysis; `selected_gain`
/// additionally runs the (deterministic) pipeline with rescue on and
/// off for the benchmarks where anything was rescued.
pub fn rescue_rows(size: DataSize) -> Vec<RescueRow> {
    let mut rows = Vec::new();
    for b in benchsuite::all() {
        let program = (b.build)(size);
        let before = cfgir::extract_candidates(&program);
        let out = cfgir::rescue_program(&program);
        let mut row = RescueRow {
            name: b.name,
            demoted_before: before.demoted_count(),
            demoted_after: cfgir::extract_candidates(&out.program).demoted_count(),
            rescued: out.rescued.len(),
            reductions: 0,
            privatizations: 0,
            distributions: 0,
            rejected: out.rejected.len(),
            selected_gain: 0,
        };
        for r in &out.rescued {
            match r.proof.transform {
                cfgir::Transform::Reduction { .. } => row.reductions += 1,
                cfgir::Transform::Privatization { .. } => row.privatizations += 1,
                cfgir::Transform::Distribution { .. } => row.distributions += 1,
            }
        }
        if row.rescued > 0 {
            let on = run_pipeline(&program, &PipelineConfig::default()).expect("pipeline runs");
            let off = run_pipeline(
                &program,
                &PipelineConfig {
                    no_rescue: true,
                    ..PipelineConfig::default()
                },
            )
            .expect("pipeline runs");
            row.selected_gain = on
                .selection
                .chosen
                .len()
                .saturating_sub(off.selection.chosen.len());
        }
        rows.push(row);
    }
    rows.sort_by_key(|r| r.name);
    rows
}

/// The rescue snapshot as JSON, diffed by the `rescue-gate` binary
/// against `results_rescue_baseline.json`.
pub fn rescue_json(rows: &[RescueRow]) -> String {
    let mut s = String::from("{\n  \"benchmarks\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": {}, \"demoted_before\": {}, \"demoted_after\": {}, \
             \"rescued\": {}, \"reductions\": {}, \"privatizations\": {}, \
             \"distributions\": {}, \"rejected\": {}, \"selected_gain\": {}}}{}\n",
            json_str(r.name),
            r.demoted_before,
            r.demoted_after,
            r.rescued,
            r.reductions,
            r.privatizations,
            r.distributions,
            r.rejected,
            r.selected_gain,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Loop-rescue summary — per benchmark, how many demoted loops the
/// dependence-driven transforms (reduction recognition, scalar
/// privatization, loop distribution) lifted into legal parallel form,
/// and the headline: how many previously-demoted loops now clear
/// dynamic selection as profitable STLs.
pub fn rescue(size: DataSize) -> String {
    let mut s = String::new();
    s.push_str("Dependence-driven loop rescue (per benchmark)\n");
    s.push_str(&format!(
        "{:<14}{:>9}{:>9}{:>9}{:>7}{:>7}{:>7}{:>9}{:>10}\n",
        "Benchmark", "demoted", "after", "rescued", "red", "priv", "dist", "refused", "+selected"
    ));
    let (mut tot_rescued, mut tot_gain) = (0usize, 0usize);
    for r in rescue_rows(size) {
        tot_rescued += r.rescued;
        tot_gain += r.selected_gain;
        s.push_str(&format!(
            "{:<14}{:>9}{:>9}{:>9}{:>7}{:>7}{:>7}{:>9}{:>10}\n",
            r.name,
            r.demoted_before,
            r.demoted_after,
            r.rescued,
            r.reductions,
            r.privatizations,
            r.distributions,
            r.rejected,
            r.selected_gain,
        ));
    }
    s.push_str(&format!(
        "Loops rescued (verifier-accepted transforms): {tot_rescued}\n\
         Previously-demoted loops now selected as profitable STLs: {tot_gain}\n"
    ));
    s
}

/// One benchmark's online tier-controller outcome: how the per-loop
/// state machines converged and whether the online schedule reproduced
/// the offline batch selection.
#[derive(Debug, Clone)]
pub struct TierRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Candidate loops tracked by the controller.
    pub candidates: usize,
    /// Execution epochs until every loop reached a terminal tier.
    pub epochs: u32,
    /// Of those, pure counting epochs (no loop annotated yet).
    pub counting_epochs: u32,
    /// Image generations (incremental patches) the controller went
    /// through.
    pub generations: u64,
    /// Loops that ended Selected.
    pub selected: usize,
    /// Loops demoted by the (deferred) static pre-screen at promotion.
    pub demoted_static: usize,
    /// Loops demoted dynamically (never executed, Equation 2 losers,
    /// comparator-bank starvation).
    pub demoted_dynamic: usize,
    /// Loops whose windowed verdict was revised at least once.
    pub revisions: u32,
    /// Committed selection-verdict flips summed over all loops.
    pub flips: u32,
    /// TI001/TI002 diagnostics raised.
    pub diags: usize,
    /// Every loop reached a terminal tier within the epoch budget.
    pub terminal: bool,
    /// The online Selected set equals the offline batch selection.
    pub matches_offline: bool,
}

/// Computes the online tier-controller outcome for every benchmark.
/// Interpretation is deterministic, so every field is byte-exact and a
/// committed snapshot can be diffed by the `tier-gate` binary.
pub fn tier_rows(size: DataSize) -> Vec<TierRow> {
    let cfg = PipelineConfig::default();
    let mut rows = Vec::new();
    for b in benchsuite::all() {
        let program = (b.build)(size);
        let online = run_tiered(&program, &cfg, &TierConfig::default())
            .unwrap_or_else(|e| panic!("online tier run failed on {}: {e}", b.name));
        let offline = run_pipeline(&program, &cfg)
            .unwrap_or_else(|e| panic!("offline pipeline failed on {}: {e}", b.name));
        let t = &online.tiers;
        let offline_sel: std::collections::BTreeSet<_> =
            offline.selection.chosen.iter().map(|c| c.loop_id).collect();
        let mut row = TierRow {
            name: b.name,
            candidates: t.loops.len(),
            epochs: t.epochs,
            counting_epochs: t.counting_epochs,
            generations: t.generations,
            selected: 0,
            demoted_static: 0,
            demoted_dynamic: 0,
            revisions: t.revisions,
            flips: 0,
            diags: t.diagnostics.len(),
            terminal: t.all_terminal(),
            matches_offline: t.selected_ids() == offline_sel,
        };
        for l in &t.loops {
            row.flips += l.flips;
            match &l.tier {
                LoopTier::Selected => row.selected += 1,
                LoopTier::Demoted { dynamic: false, .. } => row.demoted_static += 1,
                LoopTier::Demoted { dynamic: true, .. } => row.demoted_dynamic += 1,
                _ => {}
            }
        }
        rows.push(row);
    }
    rows.sort_by_key(|r| r.name);
    rows
}

/// The tier snapshot as JSON, diffed by the `tier-gate` binary against
/// `results_tier_baseline.json`. Booleans are written as 0/1 so the
/// gate diffs every field numerically.
pub fn tier_json(rows: &[TierRow]) -> String {
    let mut s = String::from("{\n  \"benchmarks\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": {}, \"candidates\": {}, \"epochs\": {}, \
             \"counting_epochs\": {}, \"generations\": {}, \"selected\": {}, \
             \"demoted_static\": {}, \"demoted_dynamic\": {}, \"revisions\": {}, \
             \"flips\": {}, \"diags\": {}, \"terminal\": {}, \"matches_offline\": {}}}{}\n",
            json_str(r.name),
            r.candidates,
            r.epochs,
            r.counting_epochs,
            r.generations,
            r.selected,
            r.demoted_static,
            r.demoted_dynamic,
            r.revisions,
            r.flips,
            r.diags,
            u8::from(r.terminal),
            u8::from(r.matches_offline),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Online tier-runtime summary — per benchmark, how many epochs the
/// per-loop state machines needed to converge, where the loops ended
/// up, and whether the online schedule reproduced the offline batch.
pub fn tier(size: DataSize) -> String {
    let mut s = String::new();
    s.push_str("Online tiered runtime (per benchmark)\n");
    s.push_str(&format!(
        "{:<14}{:>6}{:>8}{:>7}{:>6}{:>9}{:>8}{:>8}{:>7}{:>7}{:>10}\n",
        "Benchmark",
        "cands",
        "epochs",
        "count",
        "gens",
        "selected",
        "dem(st)",
        "dem(dy)",
        "revis",
        "flips",
        "==offline"
    ));
    let mut all_match = true;
    for r in tier_rows(size) {
        all_match &= r.matches_offline && r.terminal;
        s.push_str(&format!(
            "{:<14}{:>6}{:>8}{:>7}{:>6}{:>9}{:>8}{:>8}{:>7}{:>7}{:>10}\n",
            r.name,
            r.candidates,
            r.epochs,
            r.counting_epochs,
            r.generations,
            r.selected,
            r.demoted_static,
            r.demoted_dynamic,
            r.revisions,
            r.flips,
            if r.matches_offline { "yes" } else { "NO" },
        ));
    }
    s.push_str(&format!(
        "Online schedule reproduces the offline batch on every benchmark: {}\n",
        if all_match { "HOLDS" } else { "VIOLATED" }
    ));
    s
}

/// Static-vs-dynamic agreement report for the named benchmarks (all of
/// them when `names` is empty).
///
/// # Panics
///
/// Panics if a named benchmark does not exist or its agreement run
/// fails — CI treats that as a build failure.
pub fn agreement_results(names: &[&str], size: DataSize) -> Vec<(&'static str, AgreementReport)> {
    let suite: Vec<_> = benchsuite::all()
        .into_iter()
        .filter(|b| names.is_empty() || names.contains(&b.name))
        .collect();
    let mut out = Vec::new();
    for b in suite {
        let program = (b.build)(size);
        let report = agreement_report(&program)
            .unwrap_or_else(|e| panic!("agreement report failed on {}: {e}", b.name));
        out.push((b.name, report));
    }
    out.sort_by_key(|(name, _)| *name);
    out
}

/// Agreement-report table: per benchmark, the static pair verdicts
/// scored against the dynamic dependence profile of a fully annotated
/// run, plus points-to solver statistics.
pub fn agreement(results: &[(&'static str, AgreementReport)]) -> String {
    let mut s = String::new();
    s.push_str("Static-vs-dynamic dependence agreement report\n");
    s.push_str(&format!(
        "{:<14}{:>7}{:>9}{:>7}{:>7}{:>7}{:>9}{:>8}{:>8}{:>7}\n",
        "Benchmark", "pairs", "disjoint", "+pt", "viol", "sound", "prec", "recall", "objs", "iters"
    ));
    let fmt_opt = |v: Option<f64>| v.map_or("-".to_string(), |x| format!("{x:.2}"));
    for (name, r) in results {
        s.push_str(&format!(
            "{:<14}{:>7}{:>9}{:>7}{:>7}{:>7}{:>9}{:>8}{:>8}{:>7}\n",
            name,
            r.pairs,
            r.disjoint,
            r.via_pointsto,
            r.violations.len(),
            if r.sound() { "yes" } else { "NO" },
            fmt_opt(r.precision()),
            fmt_opt(r.recall()),
            r.pointsto.abstract_objects,
            r.pointsto.iterations,
        ));
    }
    let sound = results.iter().all(|(_, r)| r.sound());
    s.push_str(&format!(
        "Soundness invariant (disjoint pairs never alias dynamically): {}\n",
        if sound { "HOLDS" } else { "VIOLATED" }
    ));
    s
}

/// The agreement report as JSON (uploaded as a CI artifact; CI fails
/// the job when any benchmark's `sound` flag is false).
pub fn agreement_json(results: &[(&'static str, AgreementReport)]) -> String {
    let mut s = String::from("{\n  \"benchmarks\": [\n");
    for (i, (name, r)) in results.iter().enumerate() {
        s.push_str("    {\n");
        s.push_str(&format!("      \"name\": {},\n", json_str(name)));
        s.push_str(&format!("      \"sound\": {},\n", r.sound()));
        s.push_str(&format!("      \"pairs\": {},\n", r.pairs));
        s.push_str(&format!("      \"disjoint\": {},\n", r.disjoint));
        s.push_str(&format!(
            "      \"baseline_disjoint\": {},\n",
            r.baseline_disjoint
        ));
        s.push_str(&format!("      \"via_pointsto\": {},\n", r.via_pointsto));
        s.push_str(&format!(
            "      \"predicted_serial\": {},\n",
            r.predicted_serial
        ));
        s.push_str(&format!("      \"actual_serial\": {},\n", r.actual_serial));
        s.push_str(&format!("      \"agree_serial\": {},\n", r.agree_serial));
        let fmt_opt = |v: Option<f64>| v.map_or("null".to_string(), |x| format!("{x:.4}"));
        s.push_str(&format!(
            "      \"precision\": {},\n",
            fmt_opt(r.precision())
        ));
        s.push_str(&format!("      \"recall\": {},\n", fmt_opt(r.recall())));
        s.push_str(&format!("      \"events\": {},\n", r.events));
        s.push_str(&format!(
            "      \"pointsto\": {{\"abstract_objects\": {}, \"variables\": {}, \
             \"constraint_edges\": {}, \"iterations\": {}, \"wall_nanos\": {}}},\n",
            r.pointsto.abstract_objects,
            r.pointsto.variables,
            r.pointsto.constraint_edges,
            r.pointsto.iterations,
            r.pointsto.wall_nanos
        ));
        s.push_str("      \"violations\": [");
        for (j, v) in r.violations.iter().enumerate() {
            if j > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!(
                "{{\"loop\": {}, \"load_at\": {}, \"store_at\": {}, \
                 \"via_pointsto\": {}, \"shared_addr\": {}}}",
                v.loop_id.0, v.load_at, v.store_at, v.via_pointsto, v.shared_addr
            ));
        }
        s.push_str("],\n");
        s.push_str("      \"loops\": [");
        for (j, l) in r.loops.iter().enumerate() {
            if j > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!(
                "{{\"id\": {}, \"demoted\": {}, \"dynamic_cross_raw\": {}, \"iters\": {}, \
                 \"disjoint\": {}, \"via_pointsto\": {}, \"may_alias\": {}, \"guaranteed\": {}}}",
                l.id.0,
                l.demoted,
                l.dynamic_cross_raw,
                l.iters,
                l.disjoint,
                l.via_pointsto,
                l.may_alias,
                l.guaranteed
            ));
        }
        s.push_str("]\n");
        s.push_str(if i + 1 < results.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    s.push_str("  ]\n}\n");
    s
}

/// The reproduction scorecard: every headline claim of the paper,
/// checked against this run and marked PASS/FAIL.
pub fn scorecard(results: &[BenchResult]) -> String {
    let mut s = String::new();
    s.push_str("Reproduction scorecard\n");
    let mut row = |claim: &str, pass: bool, detail: String| {
        s.push_str(&format!(
            "  [{}] {:<52} {}\n",
            if pass { "PASS" } else { "FAIL" },
            claim,
            detail
        ));
    };

    // <1% transistor budget
    let budget = hydra_budget(&CostParams::default(), 8);
    let share = budget.share("Comparator bank");
    row(
        "TEST hardware < 1% of CMP transistors (Table 5)",
        share < 0.01,
        format!("{:.2}%", share * 100.0),
    );

    // 3-25% profiling slowdown
    let worst = results
        .iter()
        .map(|r| r.slowdown.optimized.slowdown - 1.0)
        .fold(0.0f64, f64::max);
    row(
        "profiling slowdown within 3-25% band (Figure 6)",
        worst <= 0.27,
        format!("worst {:.1}%", worst * 100.0),
    );

    // base > optimized annotations
    let ordered = results
        .iter()
        .all(|r| r.slowdown.base.slowdown >= r.slowdown.optimized.slowdown);
    row(
        "optimizations reduce annotation overhead (5.1)",
        ordered,
        String::new(),
    );

    // prediction quality
    let mean_err = results
        .iter()
        .map(|r| (r.report.predicted_normalized() - r.report.actual_normalized()).abs())
        .sum::<f64>()
        / results.len().max(1) as f64;
    row(
        "predictions track actual TLS execution (Figure 11)",
        mean_err < 0.08,
        format!("mean |err| {mean_err:.3}"),
    );

    // every benchmark has selections; coverage varies
    let all_selected = results
        .iter()
        .all(|r| !r.report.selection.chosen.is_empty());
    row(
        "TEST finds decompositions on all 26 programs (Table 6)",
        all_selected,
        String::new(),
    );
    let with_serial = results
        .iter()
        .filter(|r| r.report.selection.coverage() < 0.95)
        .count();
    row(
        "serial regions remain on db-like programs (Figure 10)",
        with_serial >= 1,
        format!("{with_serial} programs < 95% coverage"),
    );

    // eight banks suffice
    let max_depth = results
        .iter()
        .map(|r| r.report.profile.max_dynamic_depth)
        .max()
        .unwrap_or(0);
    let untraced: u64 = results
        .iter()
        .flat_map(|r| r.report.profile.stl.values())
        .map(|t| t.untraced_entries)
        .sum();
    row(
        "eight comparator banks cover the suite (6.1)",
        max_depth <= 8 && untraced == 0,
        format!("max dynamic depth {max_depth}, untraced {untraced}"),
    );

    s
}

/// The results sorted by benchmark name, so observability output is
/// stable regardless of the order the suite ran in.
fn by_name(results: &[BenchResult]) -> Vec<&BenchResult> {
    let mut ordered: Vec<&BenchResult> = results.iter().collect();
    ordered.sort_by_key(|r| r.bench.name);
    ordered
}

/// Pipeline observability — per-stage wall time, event-stream volume,
/// batch occupancy, and sink back-pressure for every benchmark run.
/// Benchmarks and event-kind totals are sorted by name.
pub fn obs(results: &[BenchResult]) -> String {
    let mut s = String::new();
    s.push_str("Pipeline observability - stage wall time and event-stream statistics\n");
    s.push_str(&format!(
        "{:<14}{:>7}{:>12}{:>9}{:>8}   stages (ms)\n",
        "Benchmark", "passes", "events", "Mev/s", "occup"
    ));
    let mut by_kind = KindCounts::default();
    let mut lagged = 0u64;
    let mut dropped = 0u64;
    for r in by_name(results) {
        let o = &r.report.obs;
        by_kind.merge(&o.by_kind);
        for sink in &o.bus.sinks {
            lagged += sink.lagged_batches;
            dropped += sink.dropped_batches;
        }
        let stages = o
            .stages
            .iter()
            .map(|st| format!("{} {:.1}", st.stage, st.nanos as f64 / 1e6))
            .collect::<Vec<_>>()
            .join(", ");
        s.push_str(&format!(
            "{:<14}{:>7}{:>12}{:>9.2}{:>7.0}%   {}\n",
            r.bench.name,
            o.interpreter_passes,
            o.recorded_events,
            o.events_per_sec() / 1e6,
            o.avg_batch_occupancy() * 100.0,
            stages
        ));
    }
    s.push_str("Event totals by kind:\n");
    let mut kinds: Vec<_> = by_kind.iter().filter(|&(_, n)| n > 0).collect();
    kinds.sort_by_key(|(kind, _)| kind.name());
    for (kind, n) in kinds {
        s.push_str(&format!("  {:<16}{n}\n", kind.name()));
    }
    s.push_str(&format!(
        "Sink back-pressure: {lagged} lagged batches, {dropped} dropped\n"
    ));
    s
}

fn json_str(v: &str) -> String {
    let mut out = String::with_capacity(v.len() + 2);
    out.push('"');
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The observability report as a JSON document (hand-built; the
/// workspace deliberately carries no serialization dependency).
/// Benchmarks are sorted by name so two runs diff cleanly.
pub fn obs_json(results: &[BenchResult]) -> String {
    let ordered = by_name(results);
    let mut s = String::from("{\n  \"benchmarks\": [\n");
    for (i, r) in ordered.iter().enumerate() {
        let o = &r.report.obs;
        s.push_str("    {\n");
        s.push_str(&format!("      \"name\": {},\n", json_str(r.bench.name)));
        s.push_str(&format!(
            "      \"interpreter_passes\": {},\n",
            o.interpreter_passes
        ));
        s.push_str(&format!(
            "      \"recorded_events\": {},\n",
            o.recorded_events
        ));
        s.push_str(&format!("      \"batches\": {},\n", o.batches));
        s.push_str(&format!(
            "      \"batch_capacity\": {},\n",
            o.batch_capacity
        ));
        s.push_str(&format!(
            "      \"avg_batch_occupancy\": {:.6},\n",
            o.avg_batch_occupancy()
        ));
        s.push_str(&format!(
            "      \"events_per_sec\": {:.1},\n",
            o.events_per_sec()
        ));
        s.push_str(&format!("      \"threaded\": {},\n", o.bus.threaded));
        s.push_str("      \"stages\": [");
        for (j, st) in o.stages.iter().enumerate() {
            if j > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!(
                "{{\"stage\": {}, \"nanos\": {}}}",
                json_str(&st.stage),
                st.nanos
            ));
        }
        s.push_str("],\n");
        s.push_str("      \"events_by_kind\": {");
        let mut kinds: Vec<_> = o.by_kind.iter().filter(|&(_, n)| n > 0).collect();
        kinds.sort_by_key(|(kind, _)| kind.name());
        for (j, (kind, n)) in kinds.iter().enumerate() {
            if j > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("{}: {n}", json_str(kind.name())));
        }
        s.push_str("},\n");
        s.push_str("      \"sinks\": [");
        for (j, sink) in o.bus.sinks.iter().enumerate() {
            if j > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!(
                "{{\"label\": {}, \"events\": {}, \"batches\": {}, \
                 \"lagged_batches\": {}, \"dropped_batches\": {}, \"drain_nanos\": {}}}",
                json_str(&sink.label),
                sink.events,
                sink.batches,
                sink.lagged_batches,
                sink.dropped_batches,
                sink.drain_nanos
            ));
        }
        s.push_str("]\n");
        s.push_str(if i + 1 < ordered.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    s.push_str("  ]\n}\n");
    s
}

/// Chrome trace-event JSON for every benchmark run — one trace process
/// per benchmark (two pids each: wall-clock tracks and simulated-cycle
/// tracks). Load the file in Perfetto or `chrome://tracing`. Spans are
/// only present when the runs were made with
/// [`jrpm::pipeline::ObsConfig::trace`] enabled.
pub fn chrome_trace(results: &[BenchResult]) -> String {
    let ordered = by_name(results);
    let procs: Vec<(&str, &obs::Trace)> = ordered
        .iter()
        .map(|r| (r.bench.name, &*r.report.telemetry.trace))
        .collect();
    obs::chrome::chrome_json(&procs)
}

/// Every benchmark's full metrics-registry snapshot as one JSON
/// document: `{"benchmarks": [{"name": ..., "metrics": {...}}]}`.
/// This is the raw feed the observability views are computed from.
pub fn metrics_json(results: &[BenchResult]) -> String {
    let ordered = by_name(results);
    let mut s = String::from("{\n  \"benchmarks\": [\n");
    for (i, r) in ordered.iter().enumerate() {
        s.push_str("    {\n");
        s.push_str(&format!("      \"name\": {},\n", json_str(r.bench.name)));
        s.push_str(&format!(
            "      \"metrics\": {}\n",
            r.report.telemetry.snapshot().to_json()
        ));
        s.push_str(if i + 1 < ordered.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    s.push_str("  ]\n}\n");
    s
}

/// The hardware configuration banner printed at the top of reports.
pub fn banner() -> String {
    let t = TracerConfig::default();
    format!(
        "TEST reproduction: {} comparator banks, {}-line store-timestamp FIFO,\n\
         {}/{} line timestamp tables, {} local-variable slots\n",
        t.n_banks, t.store_ts_lines, t.ld_table_entries, t.st_table_entries, t.local_var_capacity
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_tables_render_paper_constants() {
        let t1 = table1();
        assert!(t1.contains("16kB (512 lines x 32B)"));
        assert!(t1.contains("2kB (64 lines x 32B)"));
        let t2 = table2();
        assert!(t2.contains("Loop startup              25 cycles"));
        assert!(t2.contains("Store-load communication  10 cycles"));
        let t4 = table4();
        for mnemonic in ["lwl vn", "swl vn", "sloop n", "eoi", "eloop n"] {
            assert!(t4.contains(mnemonic), "missing {mnemonic}");
        }
    }

    #[test]
    fn table5_reports_the_one_percent_claim() {
        let t5 = table5();
        assert!(t5.contains("PASS: < 1%"), "{t5}");
        assert!(t5.contains("Comparator bank"));
    }

    #[test]
    fn fig9_shows_the_pathology() {
        let out = fig9();
        // high arc frequency for n=8 and a visible table
        assert!(out.contains("0.75"), "{out}");
        assert!(out.lines().count() >= 6);
    }

    #[test]
    fn obs_renders_stages_and_json() {
        let bench = benchsuite::by_name("Huffman").unwrap();
        let r = crate::runner::run_benchmark(&bench, DataSize::Small).unwrap();
        let results = vec![r];
        let text = obs(&results);
        assert!(text.contains("Huffman"), "{text}");
        assert!(text.contains("record"), "{text}");
        assert!(text.contains("heap_load"), "{text}");
        let json = obs_json(&results);
        assert!(json.contains("\"interpreter_passes\": "), "{json}");
        assert!(json.contains("\"stages\": ["), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn obs_outputs_are_sorted_by_benchmark_and_kind_name() {
        let h =
            crate::runner::run_benchmark(&benchsuite::by_name("Huffman").unwrap(), DataSize::Small)
                .unwrap();
        let l = crate::runner::run_benchmark(
            &benchsuite::by_name("LuFactor").unwrap(),
            DataSize::Small,
        )
        .unwrap();
        // deliberately out of order: rendering must sort by name
        let results = vec![l, h];
        let json = obs_json(&results);
        assert!(
            json.find("\"Huffman\"").unwrap() < json.find("\"LuFactor\"").unwrap(),
            "benchmarks sorted by name:\n{json}"
        );
        // event-kind keys come out alphabetically
        assert!(json.find("\"heap_load\"").unwrap() < json.find("\"local_load\"").unwrap());
        assert!(json.find("\"local_load\"").unwrap() < json.find("\"loop_enter\"").unwrap());
        let text = obs(&results);
        assert!(text.find("Huffman").unwrap() < text.find("LuFactor").unwrap());
        // the raw metrics dump is sorted and parses back
        let metrics = metrics_json(&results);
        assert!(metrics.find("\"Huffman\"").unwrap() < metrics.find("\"LuFactor\"").unwrap());
        let v = obs::json::parse(&metrics).expect("metrics JSON parses");
        let benches = v.get("benchmarks").and_then(|b| b.as_arr()).unwrap();
        assert_eq!(benches.len(), 2);
        assert!(benches[0]
            .get("metrics")
            .and_then(|m| m.get("counters"))
            .is_some());
    }

    #[test]
    fn agreement_on_huffman_is_sound_and_renders() {
        let results = agreement_results(&["Huffman"], DataSize::Small);
        assert_eq!(results.len(), 1);
        let (_, r) = &results[0];
        assert!(r.sound(), "violations: {:?}", r.violations);
        assert!(r.pairs > 0);
        let text = agreement(&results);
        assert!(text.contains("Huffman"), "{text}");
        assert!(text.contains("HOLDS"), "{text}");
        let json = agreement_json(&results);
        assert!(json.contains("\"sound\": true"), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let v = obs::json::parse(&json).expect("agreement JSON parses");
        assert!(v.get("benchmarks").and_then(|b| b.as_arr()).is_some());
    }

    #[test]
    fn prescreen_snapshot_is_monotone_and_parses() {
        let rows = prescreen_rows(DataSize::Small);
        assert!(!rows.is_empty());
        for r in &rows {
            assert!(
                r.disjoint >= r.baseline_disjoint,
                "{}: sharpening lost pairs ({} < {})",
                r.name,
                r.disjoint,
                r.baseline_disjoint
            );
            assert_eq!(
                r.disjoint - r.baseline_disjoint,
                r.via_pointsto,
                "{}: delta must equal the via-points-to count",
                r.name
            );
        }
        let json = prescreen_json(&rows);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let v = obs::json::parse(&json).expect("prescreen JSON parses");
        let benches = v.get("benchmarks").and_then(|b| b.as_arr()).unwrap();
        assert_eq!(benches.len(), rows.len());
    }

    #[test]
    fn rescue_snapshot_lifts_a_benchmark_loop_into_selection() {
        let rows = rescue_rows(DataSize::Small);
        assert!(!rows.is_empty());
        for r in &rows {
            assert_eq!(
                r.rescued,
                r.reductions + r.privatizations + r.distributions,
                "{}: transform counts must partition the rescued total",
                r.name
            );
            assert!(
                r.demoted_after + r.rescued >= r.demoted_before
                    || r.demoted_after <= r.demoted_before,
                "{}: rescue may only shrink the demoted set",
                r.name
            );
        }
        let total_rescued: usize = rows.iter().map(|r| r.rescued).sum();
        assert!(
            total_rescued >= 1,
            "no benchmark loop was rescued: {rows:?}"
        );
        let total_gain: usize = rows.iter().map(|r| r.selected_gain).sum();
        assert!(
            total_gain >= 1,
            "no previously-demoted loop became a selected STL: {rows:?}"
        );
        let json = rescue_json(&rows);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let v = obs::json::parse(&json).expect("rescue JSON parses");
        let benches = v.get("benchmarks").and_then(|b| b.as_arr()).unwrap();
        assert_eq!(benches.len(), rows.len());
    }

    #[test]
    fn tier_snapshot_converges_and_matches_the_offline_batch() {
        let rows = tier_rows(DataSize::Small);
        assert!(!rows.is_empty());
        for r in &rows {
            assert!(
                r.terminal,
                "{}: a loop never reached a terminal tier",
                r.name
            );
            assert!(
                r.matches_offline,
                "{}: online Selected set diverges from the offline batch",
                r.name
            );
            assert_eq!(
                r.selected + r.demoted_static + r.demoted_dynamic,
                r.candidates,
                "{}: terminal tiers must partition the candidates",
                r.name
            );
        }
        let json = tier_json(&rows);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let v = obs::json::parse(&json).expect("tier JSON parses");
        let benches = v.get("benchmarks").and_then(|b| b.as_arr()).unwrap();
        assert_eq!(benches.len(), rows.len());
        let text = tier(DataSize::Small);
        assert!(text.contains("HOLDS"), "{text}");
    }

    #[test]
    fn bars_are_fixed_width() {
        assert_eq!(bar(0.0, 10), "..........");
        assert_eq!(bar(1.0, 10), "##########");
        assert_eq!(bar(0.5, 10), "#####.....");
        assert_eq!(bar(7.0, 10), "##########"); // clamped
    }
}
