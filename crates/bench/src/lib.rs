//! # jrpm-bench — evaluation harness
//!
//! Regenerates every table and figure of the TEST paper's evaluation
//! (§6) from the reproduction: run `cargo run --release -p jrpm-bench
//! --bin tables -- all` for the full set, or name a single artifact
//! (`table1` … `table6`, `fig6`, `fig9`, `fig10`, `fig11`,
//! `softslow`). Criterion micro-benchmarks of the tracer itself live
//! in `benches/`.

pub mod ablation;
pub mod diag;
pub mod runner;
pub mod tables;

pub use runner::{run_benchmark, BenchResult};
