//! Stable diagnostic codes shared by `jrpm-lint` and its `--explain`
//! mode.
//!
//! Codes are append-only — downstream tooling keys on them — and every
//! code any binary can emit MUST have an explanation here. The
//! `explanations_cover_every_emittable_code` test pins that
//! self-consistency: adding an emission site means adding the code to
//! [`EMITTABLE`], which fails the test until [`EXPLANATIONS`] gains a
//! matching entry.

/// Stable diagnostic codes with one-paragraph explanations, shown by
/// `jrpm-lint --explain <code>`.
pub const EXPLANATIONS: &[(&str, &str)] = &[
    (
        "PT001",
        "provably-disjoint access pairs: in this loop, N load/store pairs that the \
         structural memory-dependence rules (PR 1) had to treat as may-alias were \
         proven to touch disjoint abstract objects by the Andersen points-to \
         analysis. These pairs no longer mask speculative-thread candidates, so a \
         loop carrying PT001 is analysed more precisely, never less. The count is \
         the `via_pointsto` figure from `cfgir::classify_loop_pairs`.",
    ),
    (
        "PT002",
        "allocation site escapes via a static variable: an object or array \
         allocated in this loop's function is reachable from a static (global) \
         variable, so every opaque call in the program may read or write it. \
         Stores through such a site cannot be localised by the points-to escape \
         analysis; keeping the value out of statics (or threading it through \
         parameters) lets the pre-screen shrink call summaries around it.",
    ),
    (
        "TR001",
        "loop rescued: a demoted loop was rewritten by the loop-rescue pass (PR 6) \
         into a provably parallelizable variant — a reduction delta-rewrite, a \
         scalar privatization, or a loop distribution. The diagnostic names the \
         transform and the recurrence it removed; the attached legality proof was \
         re-checked by the independent verifier (`cfgir::rescue::verify`) before \
         the variant replaced the loop, so downstream profiling and selection run \
         on the transformed code.",
    ),
    (
        "TR002",
        "rescue rejected: a loop-rescue transform matched this loop's shape but \
         could not prove the rewrite legal, so the loop stays as written. The \
         diagnostic carries the rejecting transform, the reason, and — when the \
         rejection is dependence-shaped — the violating dependence witness \
         (source/destination pcs and the overlap kind from the memory-dependence \
         pre-screen). Restructuring the loop to break that dependence is what \
         would let the rescue pass lift it.",
    ),
    (
        "TI001",
        "loop stuck in Tracing past its budget: the online tier controller (PR 7) \
         promoted and patched this loop, but across more epochs than the configured \
         trace budget every one of its entries found the TEST comparator banks \
         already held by enclosing loops, so it never produced a banked profile \
         entry. The controller demotes it dynamically. The witness lists, per \
         epoch, the untraced-entry count and the bank capacity; more comparator \
         banks (TracerConfig::n_banks) or demoting the enclosing loop are what \
         would let it trace.",
    ),
    (
        "TI002",
        "selection verdict flapped: windowed Equation 2 re-selection committed \
         opposite verdicts for this loop more times than the flap limit, even \
         through the hysteresis filter. This typically means two decompositions of \
         the same nest predict near-identical speedups, so epoch-level noise (or a \
         promotion wave re-annotating the nest) keeps flipping the winner. The \
         witness quotes each committed flip with its windowed estimate; raising \
         the hysteresis or window size stabilises the choice, and the final \
         full-image selection is authoritative either way.",
    ),
    (
        "SV001",
        "scalar-evolution distance sharpening: the scev analysis (`cfgir::scev`) \
         derived closed-form evolutions for this loop's inductors and proved a \
         dependence *distance vector* for N affine access pairs the boolean \
         pre-screen had to leave may-alias — either the pair can never collide \
         (non-integral distance, now Disjoint) or it collides only across \
         iterations exactly d apart (DistanceAtLeast(d)). Positive-distance RAW \
         chains floor Equation 2's speedup estimate at d-way overlap; \
         anti-dependences impose no floor because TLS versioning absorbs them. \
         The dynamic value-agreement gate replays every benchmark and \
         cross-checks each claimed distance against the recorded address stream.",
    ),
    (
        "SL001",
        "certified pre-computation slices: for N loop-carried scalars of this loop \
         (inductors and static recurrences with closed-form evolutions), \
         `cfgir::slice` extracted a minimal backward pre-computation slice — the \
         instructions a speculative thread would run to pre-compute the scalar's \
         next value, Prophet-style. Each slice carries a machine-checkable \
         certificate (inputs, evolution claim, cost bound) that was re-derived by \
         the independent verifier (`cfgir::slice::verify`); slices the verifier \
         could not re-prove are counted as rejected and never surface. The \
         value-agreement gate replays each benchmark and checks every slice's \
         predicted per-iteration value against the recorded stream.",
    ),
];

/// Every code an emission site in this crate's binaries can produce.
/// Keep in sync with the `diags.push` sites in `src/bin/lint.rs`.
pub const EMITTABLE: &[&str] = &[
    "PT001", "PT002", "TR001", "TR002", "TI001", "TI002", "SV001", "SL001",
];

/// The explanation for one code, if known.
pub fn explain(code: &str) -> Option<&'static str> {
    EXPLANATIONS
        .iter()
        .find(|(c, _)| *c == code)
        .map(|(_, text)| *text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explanations_cover_every_emittable_code() {
        for code in EMITTABLE {
            assert!(
                explain(code).is_some(),
                "diagnostic code {code} is emittable but has no --explain entry"
            );
        }
    }

    #[test]
    fn every_explanation_is_emittable_and_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for (code, text) in EXPLANATIONS {
            assert!(seen.insert(*code), "duplicate explanation for {code}");
            assert!(
                EMITTABLE.contains(code),
                "explanation for {code} but no emission site lists it"
            );
            assert!(!text.is_empty());
        }
    }
}
