//! Ablation studies over the design choices the paper (and DESIGN.md)
//! call out: the store-timestamp history size, the comparator bank
//! count, and post-violation synchronization in the TLS execution
//! model.

use benchsuite::DataSize;
use hydra_sim::TlsConfig;
use jrpm::annotate::{annotate, AnnotateOptions};
use jrpm::pipeline::{run_pipeline, PipelineConfig};
use test_tracer::{SoftwareTracer, TestTracer, TracerConfig};
use tvm::Interp;

/// Sweep of the heap store-timestamp FIFO capacity (§5.3: the paper
/// statically partitions the five 2 kB speculation buffers, giving 192
/// lines of history). Smaller histories lose dependencies relative to
/// the exact software oracle.
pub fn fifo_sweep(size: DataSize) -> String {
    let mut s = String::new();
    s.push_str("Ablation A - store-timestamp FIFO history vs dependencies found\n");
    s.push_str(&format!(
        "{:<14}{:>12}{:>10}{:>10}{:>10}{:>10}{:>10}\n",
        "Benchmark", "oracle arcs", "8 lines", "32", "64", "192", "1024"
    ));
    for name in ["Huffman", "compress", "db", "MipsSimulator"] {
        let bench = benchsuite::by_name(name).expect("benchmark exists");
        let program = (bench.build)(size);
        let cands = cfgir::extract_candidates(&program);
        let ann = annotate(&program, &cands, &AnnotateOptions::profiling()).expect("annotate");

        let mut sw = SoftwareTracer::new();
        sw.set_local_masks(cands.tracked_masks());
        Interp::run(&ann, &mut sw).expect("oracle run");
        let oracle: u64 = sw
            .into_profile()
            .stl
            .values()
            .map(|t| t.arcs_t1 + t.arcs_lt)
            .sum();

        let mut row = format!("{name:<14}{oracle:>12}");
        for lines in [8usize, 32, 64, 192, 1024] {
            let cfg = TracerConfig {
                store_ts_lines: lines,
                ..TracerConfig::default()
            };
            let mut hw = TestTracer::new(cfg);
            hw.set_local_masks(cands.tracked_masks());
            Interp::run(&ann, &mut hw).expect("hw run");
            let found: u64 = hw
                .into_profile()
                .stl
                .values()
                .map(|t| t.arcs_t1 + t.arcs_lt)
                .sum();
            row.push_str(&format!(
                "{:>9.0}%",
                100.0 * found as f64 / oracle.max(1) as f64
            ));
        }
        row.push('\n');
        s.push_str(&row);
    }
    s.push_str("(arcs recovered relative to the exact oracle; heap deps only decay)\n");
    s
}

/// Sweep of the comparator bank count (§5.2: eight banks; deep nests
/// go untraced when banks run out).
pub fn bank_sweep(size: DataSize) -> String {
    let mut s = String::new();
    s.push_str("Ablation B - comparator banks vs untraced loop entries\n");
    s.push_str(&format!(
        "{:<14}{:>7}{:>14}{:>14}{:>14}\n",
        "Benchmark", "depth", "1 bank", "2 banks", "8 banks"
    ));
    for name in ["decJpeg", "jess", "Assignment", "mp3"] {
        let bench = benchsuite::by_name(name).expect("benchmark exists");
        let program = (bench.build)(size);
        let cands = cfgir::extract_candidates(&program);
        let ann = annotate(&program, &cands, &AnnotateOptions::profiling()).expect("annotate");
        let mut row = String::new();
        let mut depth = 0;
        for (i, n_banks) in [1usize, 2, 8].into_iter().enumerate() {
            let cfg = TracerConfig {
                n_banks,
                ..TracerConfig::default()
            };
            let mut hw = TestTracer::new(cfg);
            hw.set_local_masks(cands.tracked_masks());
            Interp::run(&ann, &mut hw).expect("hw run");
            let p = hw.into_profile();
            if i == 0 {
                depth = p.max_dynamic_depth;
            }
            let untraced: u64 = p.stl.values().map(|t| t.untraced_entries).sum();
            let total: u64 = p.stl.values().map(|t| t.entries + t.untraced_entries).sum();
            row.push_str(&format!(
                "{:>13.0}%",
                100.0 * untraced as f64 / total.max(1) as f64
            ));
        }
        s.push_str(&format!("{name:<14}{depth:>7}{row}\n"));
    }
    s.push_str("(fraction of loop entries left untraced)\n");
    s
}

/// Post-violation synchronization on/off in the Hydra TLS model: the
/// gap between Equation 1's stall-style prediction and raw
/// restart-style execution (paper §3.2 / §6.2 / §6.3).
pub fn sync_sweep(size: DataSize) -> String {
    let mut s = String::new();
    s.push_str("Ablation C - post-violation synchronization in the TLS model\n");
    s.push_str(&format!(
        "{:<14}{:>10}{:>14}{:>16}{:>12}{:>12}\n",
        "Benchmark", "predicted", "actual (sync)", "actual (naive)", "viol(sync)", "viol(naive)"
    ));
    for name in ["MipsSimulator", "Huffman", "compress", "h263dec", "shallow"] {
        let bench = benchsuite::by_name(name).expect("benchmark exists");
        let program = (bench.build)(size);
        let with_sync = PipelineConfig::default();
        let naive = PipelineConfig {
            tls: TlsConfig {
                sync_after_violation: false,
                ..TlsConfig::default()
            },
            ..PipelineConfig::default()
        };
        let a = run_pipeline(&program, &with_sync).expect("pipeline runs");
        let b = run_pipeline(&program, &naive).expect("pipeline runs");
        let viol = |r: &jrpm::pipeline::PipelineReport| -> u64 {
            r.actual.per_loop.values().map(|l| l.violations).sum()
        };
        s.push_str(&format!(
            "{:<14}{:>10.2}{:>14.2}{:>16.2}{:>12}{:>12}\n",
            name,
            a.predicted_normalized(),
            a.actual_normalized(),
            b.actual_normalized(),
            viol(&a),
            viol(&b)
        ));
    }
    s.push_str(
        "(normalized execution time; synchronization closes the gap between\n\
         Equation 1's stall model and restart-style recovery)\n",
    );
    s
}

/// All three sweeps.
pub fn all(size: DataSize) -> String {
    format!(
        "{}\n{}\n{}",
        fifo_sweep(size),
        bank_sweep(size),
        sync_sweep(size)
    )
}
