//! Ablation studies over the design choices the paper (and DESIGN.md)
//! call out: the store-timestamp history size, the comparator bank
//! count, and post-violation synchronization in the TLS execution
//! model.
//!
//! The hardware sweeps (A and B) vary only the *tracer* configuration,
//! never the program, so they record the annotated program's event
//! stream once and replay it into every tracer variant instead of
//! re-interpreting the program per configuration.  Each sweep times one
//! real re-interpretation as an honest baseline and reports the
//! measured wall-clock win at the bottom of its table.

use benchsuite::DataSize;
use hydra_sim::TlsConfig;
use jrpm::annotate::{annotate, AnnotateOptions};
use jrpm::pipeline::{run_pipeline, PipelineConfig};
use std::time::{Duration, Instant};
use test_tracer::{SoftwareTracer, TestTracer, TracerConfig};
use tvm::bus::{record_batches, EventBatch, DEFAULT_BATCH_CAPACITY};
use tvm::Interp;

/// Wall-clock accounting for one record-once/replay-many sweep.
///
/// The estimated re-interpretation cost is built per benchmark — one
/// configuration is actually re-interpreted and timed, then scaled by
/// that benchmark's consumer count — so heterogeneous program sizes do
/// not skew the comparison.
#[derive(Default)]
struct SweepClock {
    record: Duration,
    replay: Duration,
    replays: u32,
    reinterp_est: f64,
    reinterps: u32,
}

impl SweepClock {
    /// Replays every batch into `sink`, accumulating replay time.
    fn replay_into(&mut self, batches: &[EventBatch], sink: &mut impl tvm::TraceSink) {
        let t = Instant::now();
        for b in batches {
            b.replay_into(sink);
        }
        self.replay += t.elapsed();
        self.replays += 1;
    }

    /// Times one real re-interpretation of `ann` and scales it by the
    /// number of consumer passes the old sweep would have run.
    fn baseline(&mut self, ann: &tvm::Program, masks: Vec<(tvm::LoopId, u64)>, consumers: u32) {
        let mut hw = TestTracer::with_masks(TracerConfig::default(), masks);
        let t = Instant::now();
        Interp::run(ann, &mut hw).expect("baseline re-interpretation");
        self.reinterp_est += t.elapsed().as_secs_f64() * f64::from(consumers);
        self.reinterps += 1;
    }

    fn summary(&self) -> String {
        let new = self.record.as_secs_f64() + self.replay.as_secs_f64();
        format!(
            "Measured: record once {:.1} ms + {} replays {:.1} ms, versus an\n\
             estimated {:.1} ms for {} re-interpretations (scaled from {} timed\n\
             runs): {:.1}x faster\n",
            self.record.as_secs_f64() * 1e3,
            self.replays,
            self.replay.as_secs_f64() * 1e3,
            self.reinterp_est * 1e3,
            self.replays,
            self.reinterps,
            self.reinterp_est / new.max(1e-9),
        )
    }
}

fn arcs(p: &test_tracer::Profile) -> u64 {
    p.stl.values().map(|t| t.arcs_t1 + t.arcs_lt).sum()
}

/// Sweep of the heap store-timestamp FIFO capacity (§5.3: the paper
/// statically partitions the five 2 kB speculation buffers, giving 192
/// lines of history). Smaller histories lose dependencies relative to
/// the exact software oracle.
pub fn fifo_sweep(size: DataSize) -> String {
    let mut s = String::new();
    s.push_str("Ablation A - store-timestamp FIFO history vs dependencies found\n");
    s.push_str(&format!(
        "{:<14}{:>12}{:>10}{:>10}{:>10}{:>10}{:>10}\n",
        "Benchmark", "oracle arcs", "8 lines", "32", "64", "192", "1024"
    ));
    let mut clock = SweepClock::default();
    for name in ["Huffman", "compress", "db", "MipsSimulator"] {
        let bench = benchsuite::by_name(name).expect("benchmark exists");
        let program = (bench.build)(size);
        let cands = cfgir::extract_candidates(&program);
        let ann = annotate(&program, &cands, &AnnotateOptions::profiling()).expect("annotate");

        // one interpretation captures the whole event stream …
        let t = Instant::now();
        let (_run, batches) = record_batches(&ann, DEFAULT_BATCH_CAPACITY).expect("record run");
        clock.record += t.elapsed();

        // … which then feeds the oracle and every FIFO variant
        let mut sw = SoftwareTracer::with_masks(cands.tracked_masks());
        clock.replay_into(&batches, &mut sw);
        let oracle = arcs(&sw.into_profile());

        let mut row = format!("{name:<14}{oracle:>12}");
        for lines in [8usize, 32, 64, 192, 1024] {
            let cfg = TracerConfig {
                store_ts_lines: lines,
                ..TracerConfig::default()
            };
            let mut hw = TestTracer::with_masks(cfg, cands.tracked_masks());
            clock.replay_into(&batches, &mut hw);
            let found = arcs(&hw.into_profile());
            row.push_str(&format!(
                "{:>9.0}%",
                100.0 * found as f64 / oracle.max(1) as f64
            ));
        }
        row.push('\n');
        s.push_str(&row);
        clock.baseline(&ann, cands.tracked_masks(), 6);
    }
    s.push_str("(arcs recovered relative to the exact oracle; heap deps only decay)\n");
    s.push_str(&clock.summary());
    s
}

/// Sweep of the comparator bank count (§5.2: eight banks; deep nests
/// go untraced when banks run out).
pub fn bank_sweep(size: DataSize) -> String {
    let mut s = String::new();
    s.push_str("Ablation B - comparator banks vs untraced loop entries\n");
    s.push_str(&format!(
        "{:<14}{:>7}{:>14}{:>14}{:>14}\n",
        "Benchmark", "depth", "1 bank", "2 banks", "8 banks"
    ));
    let mut clock = SweepClock::default();
    for name in ["decJpeg", "jess", "Assignment", "mp3"] {
        let bench = benchsuite::by_name(name).expect("benchmark exists");
        let program = (bench.build)(size);
        let cands = cfgir::extract_candidates(&program);
        let ann = annotate(&program, &cands, &AnnotateOptions::profiling()).expect("annotate");

        let t = Instant::now();
        let (_run, batches) = record_batches(&ann, DEFAULT_BATCH_CAPACITY).expect("record run");
        clock.record += t.elapsed();

        let mut row = String::new();
        let mut depth = 0;
        for (i, n_banks) in [1usize, 2, 8].into_iter().enumerate() {
            let cfg = TracerConfig {
                n_banks,
                ..TracerConfig::default()
            };
            let mut hw = TestTracer::with_masks(cfg, cands.tracked_masks());
            clock.replay_into(&batches, &mut hw);
            let p = hw.into_profile();
            if i == 0 {
                depth = p.max_dynamic_depth;
            }
            let untraced: u64 = p.stl.values().map(|t| t.untraced_entries).sum();
            let total: u64 = p.stl.values().map(|t| t.entries + t.untraced_entries).sum();
            row.push_str(&format!(
                "{:>13.0}%",
                100.0 * untraced as f64 / total.max(1) as f64
            ));
        }
        s.push_str(&format!("{name:<14}{depth:>7}{row}\n"));
        clock.baseline(&ann, cands.tracked_masks(), 3);
    }
    s.push_str("(fraction of loop entries left untraced)\n");
    s.push_str(&clock.summary());
    s
}

/// Post-violation synchronization on/off in the Hydra TLS model: the
/// gap between Equation 1's stall-style prediction and raw
/// restart-style execution (paper §3.2 / §6.2 / §6.3).
pub fn sync_sweep(size: DataSize) -> String {
    let mut s = String::new();
    s.push_str("Ablation C - post-violation synchronization in the TLS model\n");
    s.push_str(&format!(
        "{:<14}{:>10}{:>14}{:>16}{:>12}{:>12}\n",
        "Benchmark", "predicted", "actual (sync)", "actual (naive)", "viol(sync)", "viol(naive)"
    ));
    for name in ["MipsSimulator", "Huffman", "compress", "h263dec", "shallow"] {
        let bench = benchsuite::by_name(name).expect("benchmark exists");
        let program = (bench.build)(size);
        let with_sync = PipelineConfig::default();
        let naive = PipelineConfig {
            tls: TlsConfig {
                sync_after_violation: false,
                ..TlsConfig::default()
            },
            ..PipelineConfig::default()
        };
        let a = run_pipeline(&program, &with_sync).expect("pipeline runs");
        let b = run_pipeline(&program, &naive).expect("pipeline runs");
        let viol = |r: &jrpm::pipeline::PipelineReport| -> u64 {
            r.actual.per_loop.values().map(|l| l.violations).sum()
        };
        s.push_str(&format!(
            "{:<14}{:>10.2}{:>14.2}{:>16.2}{:>12}{:>12}\n",
            name,
            a.predicted_normalized(),
            a.actual_normalized(),
            b.actual_normalized(),
            viol(&a),
            viol(&b)
        ));
    }
    s.push_str(
        "(normalized execution time; synchronization closes the gap between\n\
         Equation 1's stall model and restart-style recovery)\n",
    );
    s
}

/// CI smoke: one benchmark, one configuration.  Records the annotated
/// Huffman once, replays the recording into a default tracer, checks
/// the replayed profile bit-identical against a direct run, and prints
/// the timings.  Fast enough for a pull-request gate.
pub fn quick(size: DataSize) -> String {
    let bench = benchsuite::by_name("Huffman").expect("benchmark exists");
    let program = (bench.build)(size);
    let cands = cfgir::extract_candidates(&program);
    let ann = annotate(&program, &cands, &AnnotateOptions::profiling()).expect("annotate");

    let t = Instant::now();
    let (run, batches) = record_batches(&ann, DEFAULT_BATCH_CAPACITY).expect("record run");
    let t_record = t.elapsed();

    let mut replayed = TestTracer::with_masks(TracerConfig::default(), cands.tracked_masks());
    let t = Instant::now();
    for b in &batches {
        b.replay_into(&mut replayed);
    }
    let t_replay = t.elapsed();
    let replayed = replayed.into_profile();

    let mut direct = TestTracer::with_masks(TracerConfig::default(), cands.tracked_masks());
    let t = Instant::now();
    Interp::run(&ann, &mut direct).expect("direct run");
    let t_direct = t.elapsed();
    let direct = direct.into_profile();

    let events: u64 = batches.iter().map(|b| b.len() as u64).sum();
    let identical = replayed == direct;
    let mut s = String::new();
    s.push_str("Ablation smoke - record-once/replay-many on Huffman (1 config)\n");
    s.push_str(&format!(
        "  events {} in {} batches; cycles {}; record {:.1} ms, replay {:.1} ms,\n\
         \x20 direct re-interpretation {:.1} ms (replay {:.1}x faster)\n",
        events,
        batches.len(),
        run.cycles,
        t_record.as_secs_f64() * 1e3,
        t_replay.as_secs_f64() * 1e3,
        t_direct.as_secs_f64() * 1e3,
        t_direct.as_secs_f64() / t_replay.as_secs_f64().max(1e-9),
    ));
    s.push_str(&format!(
        "  replayed profile identical to direct run: {}\n",
        if identical { "PASS" } else { "FAIL" }
    ));
    assert!(identical, "replayed profile diverged from the direct run");
    s
}

/// All three sweeps.
pub fn all(size: DataSize) -> String {
    format!(
        "{}\n{}\n{}",
        fifo_sweep(size),
        bank_sweep(size),
        sync_sweep(size)
    )
}
