//! Per-benchmark diagnostic: dumps every profiled loop's statistics,
//! Equation 1 estimate, selection decision and actual TLS outcome.
//!
//! ```text
//! cargo run --release -p jrpm-bench --bin explain -- moldyn --small
//! ```

use benchsuite::DataSize;
use jrpm::pipeline::{run_pipeline, PipelineConfig};

fn main() {
    let mut size = DataSize::Default;
    let mut name = None;
    let mut disasm = false;
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--small" => size = DataSize::Small,
            "--large" => size = DataSize::Large,
            "--disasm" => disasm = true,
            other => name = Some(other.to_string()),
        }
    }
    let name = name.expect("usage: explain <benchmark> [--small|--large]");
    let bench = benchsuite::by_name(&name)
        .unwrap_or_else(|| panic!("unknown benchmark {name:?}; see `benchsuite::all()`"));
    let program = (bench.build)(size);
    let r = run_pipeline(&program, &PipelineConfig::default()).expect("pipeline runs");

    println!(
        "{name}: seq={} profiled={} slowdown={:.3}",
        r.seq_cycles,
        r.profile_cycles,
        r.profiling_slowdown()
    );
    println!(
        "static loops={} rejected={} max dynamic depth={}",
        r.candidates.total_loops(),
        r.candidates.rejected.len(),
        r.profile.max_dynamic_depth
    );
    for rej in &r.candidates.rejected {
        println!(
            "  rejected: func {} loop {} ({})",
            rej.func.0, rej.loop_idx, rej.reason
        );
    }
    println!();
    println!(
        "{:<5}{:>8}{:>10}{:>12}{:>9}{:>6}{:>8}{:>8}{:>8}{:>8}{:>7}{:>9}{:>8}",
        "loop",
        "entries",
        "threads",
        "cycles",
        "size",
        "cv",
        "f(t-1)",
        "d(t-1)",
        "f(<t1)",
        "d(<t1)",
        "ovf",
        "est-spd",
        "parent"
    );
    for (l, s) in &r.profile.stl {
        let e = &r.selection.estimates[l];
        let parent = r
            .profile
            .dominant_parent(*l)
            .map_or("-".to_string(), |p| p.to_string());
        println!(
            "{:<5}{:>8}{:>10}{:>12}{:>9.0}{:>6.2}{:>8.2}{:>8.0}{:>8.2}{:>8.0}{:>7.2}{:>9.2}{:>8}",
            l.to_string(),
            s.entries,
            s.threads,
            s.cycles,
            s.avg_thread_size(),
            s.thread_size_cv(),
            s.arc_freq_t1(),
            s.avg_arc_len_t1(),
            s.arc_freq_lt(),
            s.avg_arc_len_lt(),
            s.overflow_freq(),
            e.speedup,
            parent
        );
    }
    println!();
    // PCs refer to the *annotated* code; rebuild it for disassembly
    // (on the rescued program when the rescue stage transformed it,
    // since the pipeline's candidates live there)
    let annotated = jrpm::annotate(
        r.rescue.program_for(&program),
        &r.candidates,
        &jrpm::AnnotateOptions::profiling(),
    )
    .expect("annotate");
    println!("hot dependency sites (extended TEST, section 6.3):");
    for l in r.profile.stl.keys() {
        for (pc, bin) in r.profile.pc_bins.hottest(*l).into_iter().take(3) {
            let place = annotated
                .functions
                .get(pc.func.0 as usize)
                .and_then(|f| f.code.get(pc.idx as usize).map(|i| (f.name.clone(), i)))
                .map(|(name, i)| format!("{name}: {}", tvm::disasm::instr(i)))
                .unwrap_or_else(|| "?".into());
            println!(
                "  {} at {} ({place}) count={} avg_len={:.0} min={}",
                l,
                pc,
                bin.count,
                bin.avg_len(),
                bin.min_len
            );
        }
    }
    println!();
    println!(
        "selection: predicted {:.3} normalized",
        r.predicted_normalized()
    );
    for c in &r.selection.chosen {
        println!(
            "  chose {} coverage {:.1}% est speedup {:.2}",
            c.loop_id,
            c.coverage * 100.0,
            c.estimate.speedup
        );
    }
    if disasm {
        println!();
        println!("=== annotated program ===");
        print!("{}", tvm::disasm::program(&annotated));
    }

    println!();
    println!("actual TLS: {:.3} normalized", r.actual_normalized());
    for (l, t) in &r.actual.per_loop {
        println!(
            "  {} seq={} tls={} speedup {:.2} violations={} overflows={} threads={}",
            l,
            t.seq_cycles,
            t.tls_cycles,
            t.seq_cycles as f64 / t.tls_cycles.max(1) as f64,
            t.violations,
            t.overflows,
            t.threads
        );
    }
}
