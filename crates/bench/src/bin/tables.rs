//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p jrpm-bench --bin tables -- all
//! cargo run --release -p jrpm-bench --bin tables -- table6 fig11
//! cargo run --release -p jrpm-bench --bin tables -- --small all
//! cargo run --release -p jrpm-bench --bin tables -- --small quick --obs-json obs.json
//! cargo run --release -p jrpm-bench --bin tables -- --small obs --trace-out trace.json
//! ```
//!
//! `--trace-out FILE` writes a Chrome trace-event JSON (open it in
//! Perfetto or `chrome://tracing`) and switches the pipeline runs to
//! span tracing. `--metrics-json FILE` dumps every run's raw metrics
//! registry.

use benchsuite::DataSize;
use jrpm::pipeline::PipelineConfig;
use jrpm_bench::runner::{run_benchmark_with, BenchResult};
use jrpm_bench::tables;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut obs_json_path: Option<String> = None;
    let mut trace_out_path: Option<String> = None;
    let mut metrics_json_path: Option<String> = None;
    let mut agreement_json_path: Option<String> = None;
    let mut prescreen_json_path: Option<String> = None;
    let mut rescue_json_path: Option<String> = None;
    let mut tier_json_path: Option<String> = None;
    let mut scev_json_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        if i + 1 < args.len() && args[i] == "--obs-json" {
            args.remove(i);
            obs_json_path = Some(args.remove(i));
        } else if i + 1 < args.len() && args[i] == "--trace-out" {
            args.remove(i);
            trace_out_path = Some(args.remove(i));
        } else if i + 1 < args.len() && args[i] == "--metrics-json" {
            args.remove(i);
            metrics_json_path = Some(args.remove(i));
        } else if i + 1 < args.len() && args[i] == "--agreement-json" {
            args.remove(i);
            agreement_json_path = Some(args.remove(i));
        } else if i + 1 < args.len() && args[i] == "--prescreen-json" {
            args.remove(i);
            prescreen_json_path = Some(args.remove(i));
        } else if i + 1 < args.len() && args[i] == "--rescue-json" {
            args.remove(i);
            rescue_json_path = Some(args.remove(i));
        } else if i + 1 < args.len() && args[i] == "--tier-json" {
            args.remove(i);
            tier_json_path = Some(args.remove(i));
        } else if i + 1 < args.len() && args[i] == "--scev-json" {
            args.remove(i);
            scev_json_path = Some(args.remove(i));
        } else {
            i += 1;
        }
    }
    let mut size = DataSize::Default;
    args.retain(|a| match a.as_str() {
        "--small" => {
            size = DataSize::Small;
            false
        }
        "--large" => {
            size = DataSize::Large;
            false
        }
        _ => true,
    });
    // a bare export flag (CI smoke) should not drag in every table
    if args.is_empty()
        && agreement_json_path.is_none()
        && prescreen_json_path.is_none()
        && rescue_json_path.is_none()
        && tier_json_path.is_none()
        && scev_json_path.is_none()
    {
        args.push("all".into());
    }
    let want = |name: &str| -> bool { args.iter().any(|a| a == name || a == "all") };

    println!("{}", tables::banner());

    if want("table1") {
        println!("{}", tables::table1());
    }
    if want("table2") {
        println!("{}", tables::table2());
    }
    if want("table4") {
        println!("{}", tables::table4());
    }
    if want("table5") {
        println!("{}", tables::table5());
    }
    if want("table3") {
        println!("{}", tables::table3(size));
    }
    if want("fig9") {
        println!("{}", tables::fig9());
    }
    if want("softslow") {
        println!("{}", tables::softslow(size));
    }
    if want("ablation") {
        println!("{}", jrpm_bench::ablation::all(size));
    }
    // "quick" is a CI smoke artifact, deliberately not part of "all"
    if args.iter().any(|a| a == "quick") {
        println!("{}", jrpm_bench::ablation::quick(size));
    }
    if want("methods") {
        println!("{}", tables::methods(size));
    }
    if want("prescreen") {
        println!("{}", tables::prescreen(size));
    }
    if let Some(path) = &prescreen_json_path {
        let rows = tables::prescreen_rows(size);
        std::fs::write(path, tables::prescreen_json(&rows)).expect("write pre-screen JSON");
        eprintln!("wrote {path}");
    }
    if want("rescue") {
        println!("{}", tables::rescue(size));
    }
    if let Some(path) = &rescue_json_path {
        let rows = tables::rescue_rows(size);
        std::fs::write(path, tables::rescue_json(&rows)).expect("write rescue JSON");
        eprintln!("wrote {path}");
    }
    if want("tier") {
        println!("{}", tables::tier(size));
    }
    if want("scev") {
        println!("{}", tables::scev_table(size));
    }
    if let Some(path) = &scev_json_path {
        let rows = tables::scev_rows(size);
        std::fs::write(path, tables::scev_json(&rows)).expect("write scev JSON");
        eprintln!("wrote {path}");
    }
    if let Some(path) = &tier_json_path {
        let rows = tables::tier_rows(size);
        std::fs::write(path, tables::tier_json(&rows)).expect("write tier JSON");
        eprintln!("wrote {path}");
    }
    // The agreement report force-annotates every candidate and replays
    // each benchmark's trace, so it runs on demand: the full suite for
    // the `agreement` table, or just the quick-smoke set when only the
    // JSON artifact was requested. A soundness violation (a statically
    // disjoint pair that aliased dynamically) fails the process.
    if want("agreement") || agreement_json_path.is_some() {
        let quick_only = !want("agreement");
        let names: &[&str] = if quick_only { &["Huffman"] } else { &[] };
        let results = tables::agreement_results(names, size);
        if want("agreement") {
            println!("{}", tables::agreement(&results));
        }
        if let Some(path) = &agreement_json_path {
            std::fs::write(path, tables::agreement_json(&results)).expect("write agreement JSON");
            eprintln!("wrote {path}");
        }
        let unsound: Vec<&str> = results
            .iter()
            .filter(|(_, r)| !r.sound())
            .map(|(n, _)| *n)
            .collect();
        if !unsound.is_empty() {
            eprintln!(
                "agreement: SOUNDNESS VIOLATION — statically-disjoint pairs aliased \
                 dynamically in: {}",
                unsound.join(", ")
            );
            std::process::exit(1);
        }
    }

    let needs_full_suite = ["table6", "fig6", "fig10", "fig11", "scorecard", "obs"]
        .iter()
        .any(|n| want(n));
    let needs_any_run =
        obs_json_path.is_some() || trace_out_path.is_some() || metrics_json_path.is_some();
    if needs_full_suite || needs_any_run {
        let suite = if needs_full_suite {
            benchsuite::all()
        } else {
            // an export flag without a suite artifact: a one-benchmark
            // smoke run is enough to produce the file
            vec![benchsuite::by_name("Huffman").expect("suite has Huffman")]
        };
        // span tracing costs a little time and memory, so it is only
        // switched on when someone asked for the trace file
        let cfg = PipelineConfig {
            obs: jrpm::pipeline::ObsConfig {
                trace: trace_out_path.is_some(),
                ..Default::default()
            },
            ..Default::default()
        };
        let mut results: Vec<BenchResult> = Vec::new();
        for b in &suite {
            eprint!("running {:<14}... ", b.name);
            match run_benchmark_with(b, size, &cfg) {
                Ok(r) => {
                    eprintln!(
                        "ok ({} loops, {} selected, pred {:.2}, act {:.2})",
                        r.report.candidates.total_loops(),
                        r.report.selection.chosen.len(),
                        r.report.predicted_normalized(),
                        r.report.actual_normalized()
                    );
                    results.push(r);
                }
                Err(e) => eprintln!("FAILED: {e}"),
            }
        }
        if want("table6") {
            println!("{}", tables::table6(&results));
        }
        if want("fig6") {
            println!("{}", tables::fig6(&results));
        }
        if want("fig10") {
            println!("{}", tables::fig10(&results));
        }
        if want("fig11") {
            println!("{}", tables::fig11(&results));
        }
        if want("scorecard") {
            println!("{}", tables::scorecard(&results));
        }
        if want("obs") {
            println!("{}", tables::obs(&results));
        }
        if let Some(path) = &obs_json_path {
            std::fs::write(path, tables::obs_json(&results)).expect("write observability JSON");
            eprintln!("wrote {path}");
        }
        if let Some(path) = &trace_out_path {
            std::fs::write(path, tables::chrome_trace(&results)).expect("write Chrome trace");
            eprintln!("wrote {path} (open in Perfetto or chrome://tracing)");
        }
        if let Some(path) = &metrics_json_path {
            std::fs::write(path, tables::metrics_json(&results)).expect("write metrics JSON");
            eprintln!("wrote {path}");
        }
    }
}
