//! Service-scale throughput benchmark for the profiling server.
//!
//! ```text
//! cargo run --release -p jrpm-bench --bin throughput -- [--out FILE]
//!     [--workers N] [--clients N] [--rounds N]
//! ```
//!
//! Records the whole benchmark suite once, then drives the `serve`
//! worker pool three ways and writes one JSON document (default
//! `BENCH_throughput.json`):
//!
//! 1. **direct** — single-threaded owned replay into a fresh tracer,
//!    the machine-speed calibration every other number is normalized
//!    against;
//! 2. **replay** — concurrent clients hammering the zero-copy
//!    `ReplayMapped` endpoint; sustained events/sec, events/sec per
//!    worker core, and p50/p99 request latency;
//! 3. **pipeline** — concurrent clients submitting full pipeline
//!    requests; p50/p99 end-to-end request latency.
//!
//! The headline `scaling_efficiency` — server events/sec per
//! *effective* core (`min(workers, available_parallelism)`) over
//! direct single-core events/sec — is classic parallel efficiency:
//! dimensionless and machine-speed independent, which is what
//! `throughput-gate` pins. Raw events/sec are reported for trajectory
//! plots but not gated.
//!
//! A fourth phase measures live-telemetry cost: the same replay
//! workload with the flight recorder and tail sampler disabled
//! (`ring_capacity: 0`) vs enabled, best of two runs each. The
//! benchmark fails if the enabled run is more than 5% slower — the
//! recorder is designed to be cheap enough to leave on in production.

use std::process::ExitCode;
use std::time::Instant;

use benchsuite::{all, DataSize};
use jrpm::pipeline::PipelineConfig;
use obs::metrics::Histogram;
use serve::{ProfileRequest, ProfileResponse, Server, ServerConfig};
use test_tracer::{TestTracer, TracerConfig};
use tvm::record::{MappedRecording, Recording, RecordingSink};
use tvm::trace::TraceSink;
use tvm::Interp;

/// Telemetry overhead above this fraction fails the benchmark.
const MAX_RECORDER_OVERHEAD: f64 = 0.05;

struct Args {
    out: String,
    workers: usize,
    clients: usize,
    rounds: usize,
}

fn usage() -> ! {
    eprintln!("usage: throughput [--out FILE] [--workers N] [--clients N] [--rounds N]");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut out = Args {
        out: "BENCH_throughput.json".to_string(),
        workers: 4,
        clients: 4,
        rounds: 3,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut next = || it.next().unwrap_or_else(|| usage());
        match a.as_str() {
            "--out" => out.out = next(),
            "--workers" => out.workers = next().parse().unwrap_or_else(|_| usage()),
            "--clients" => out.clients = next().parse().unwrap_or_else(|_| usage()),
            "--rounds" => out.rounds = next().parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
    }
    if out.workers == 0 || out.clients == 0 || out.rounds == 0 {
        usage();
    }
    out
}

/// Guarded ratio: `0.0` instead of NaN/inf on an empty denominator, so
/// the JSON document never carries a non-finite number.
fn ratio(num: f64, den: f64) -> f64 {
    if den > 0.0 && num.is_finite() {
        num / den
    } else {
        0.0
    }
}

struct Phase {
    requests: u64,
    events: u64,
    wall_nanos: u64,
    p50_nanos: u64,
    p99_nanos: u64,
}

impl Phase {
    fn from_latencies(lat: Vec<u64>, events: u64, wall_nanos: u64) -> Phase {
        // the same log₂-bucket histogram + interpolated quantile
        // estimator the server's tail sampler thresholds with
        // (obs::metrics::HistogramSnapshot::quantile)
        let hist = Histogram::default();
        for &v in &lat {
            hist.record(v);
        }
        let snap = hist.snapshot();
        Phase {
            requests: lat.len() as u64,
            events,
            wall_nanos,
            p50_nanos: snap.quantile(0.50),
            p99_nanos: snap.quantile(0.99),
        }
    }

    fn events_per_sec(&self) -> f64 {
        ratio(self.events as f64 * 1e9, self.wall_nanos as f64)
    }
}

/// Drives `clients` concurrent clients, each submitting every request
/// `make` yields for it, and merges the per-request latencies.
fn drive(
    server: &Server,
    clients: usize,
    make: impl Fn(usize) -> Vec<ProfileRequest> + Sync,
) -> Phase {
    let started = Instant::now();
    let (lat, events) = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for client in 0..clients {
            let make = &make;
            handles.push(scope.spawn(move || {
                let mut lat = Vec::new();
                let mut events = 0u64;
                for req in make(client) {
                    let t = Instant::now();
                    let resp = server
                        .profile(req)
                        .unwrap_or_else(|e| panic!("client {client}: request failed: {e}"));
                    lat.push(t.elapsed().as_nanos() as u64);
                    if let ProfileResponse::Profile { events: n, .. } = &resp {
                        events += n;
                    }
                }
                (lat, events)
            }));
        }
        let mut lat = Vec::new();
        let mut events = 0u64;
        for h in handles {
            let (l, n) = h.join().expect("client thread");
            lat.extend(l);
            events += n;
        }
        (lat, events)
    });
    Phase::from_latencies(lat, events, started.elapsed().as_nanos() as u64)
}

fn phase_json(name: &str, p: &Phase) -> String {
    format!(
        "  \"{name}\": {{\n    \"requests\": {},\n    \"events\": {},\n    \
         \"wall_nanos\": {},\n    \"events_per_sec\": {:.1},\n    \
         \"latency_p50_nanos\": {},\n    \"latency_p99_nanos\": {}\n  }}",
        p.requests,
        p.events,
        p.wall_nanos,
        p.events_per_sec(),
        p.p50_nanos,
        p.p99_nanos,
    )
}

fn main() -> ExitCode {
    let args = parse_args();
    let suite = all();

    // -- record the suite once; replay-many from here on --------------
    let dir = std::env::temp_dir().join(format!("jrpm-throughput-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir for recordings");
    let mut recordings: Vec<(&str, Recording, std::path::PathBuf)> = Vec::new();
    for bench in &suite {
        let program = (bench.build)(DataSize::Small);
        let mut sink = RecordingSink::new();
        Interp::run(&program, &mut sink)
            .unwrap_or_else(|e| panic!("{}: recording run failed: {e:?}", bench.name));
        let rec = sink.into_recording();
        let path = dir.join(format!("{}.tvmr", bench.name));
        rec.save(&path)
            .unwrap_or_else(|e| panic!("{}: save failed: {e}", bench.name));
        recordings.push((bench.name, rec, path));
    }

    // -- calibration: single-core zero-copy mapped replay, exactly the
    // work one server worker does per request minus the queue ----------
    let started = Instant::now();
    let mut direct_events = 0u64;
    for (name, _, path) in &recordings {
        let mapped =
            MappedRecording::open(path).unwrap_or_else(|e| panic!("{name}: mmap open failed: {e}"));
        let view = mapped
            .view()
            .unwrap_or_else(|e| panic!("{name}: view failed: {e}"));
        let mut tracer = TestTracer::new(TracerConfig::default());
        direct_events += view
            .stream_batches(serve::DEFAULT_REPLAY_BATCH, |b| tracer.consume_batch(b))
            .unwrap_or_else(|e| panic!("{name}: stream failed: {e}"));
        let _ = tracer.into_profile();
    }
    let direct = Phase {
        requests: recordings.len() as u64,
        events: direct_events,
        wall_nanos: started.elapsed().as_nanos() as u64,
        p50_nanos: 0,
        p99_nanos: 0,
    };

    let server = Server::start(ServerConfig {
        workers: args.workers,
        queue_depth: args.workers * 2,
        ..ServerConfig::default()
    });
    let alert_baseline = server.registry().snapshot();

    // -- warmup: touch every mapping once ------------------------------
    for (name, _, path) in &recordings {
        server
            .profile(ProfileRequest::ReplayMapped {
                path: path.clone(),
                tracer: TracerConfig::default(),
                batch_capacity: serve::DEFAULT_REPLAY_BATCH,
            })
            .unwrap_or_else(|e| panic!("{name}: warmup failed: {e}"));
    }

    // -- measured: zero-copy replay under concurrent load --------------
    let make_replay = |client: usize| {
        let mut reqs = Vec::new();
        for round in 0..args.rounds {
            for i in 0..recordings.len() {
                // stagger start offsets so clients do not convoy
                let i = (i + client + round) % recordings.len();
                reqs.push(ProfileRequest::ReplayMapped {
                    path: recordings[i].2.clone(),
                    tracer: TracerConfig::default(),
                    batch_capacity: serve::DEFAULT_REPLAY_BATCH,
                });
            }
        }
        reqs
    };
    let replay = drive(&server, args.clients, make_replay);

    // -- measured: full pipeline requests -------------------------------
    let cfg = PipelineConfig::default();
    let pipeline = drive(&server, args.clients, |client| {
        suite
            .iter()
            .cycle()
            .skip(client)
            .take(suite.len())
            .map(|b| ProfileRequest::Pipeline {
                program: (b.build)(DataSize::Small),
                cfg,
            })
            .collect()
    });

    // `workers` is a flag (stable across runs, shape-gated); the cores
    // actually backing them are a machine property, so the per-core
    // normalization uses whichever is smaller. On a 1-core box 4
    // workers time-slice one core and the per-core number would
    // otherwise undercount 4x.
    let effective_cores = args
        .workers
        .min(std::thread::available_parallelism().map_or(1, usize::from));

    let registry = server.shutdown();
    let snap = registry.snapshot();
    // the default rule set tolerates a saturated queue (closed-loop
    // clients saturate it by design) but zero drops, zero panics, and
    // no starved shard — a healthy bench run must fire nothing
    let alerts =
        obs::live::evaluate_alerts(&alert_baseline, &snap, &obs::live::AlertConfig::default());
    let dropped: u64 = (0..args.workers)
        .map(|i| snap.counter(&format!("serve.worker.{i}.dropped_batches")))
        .sum();
    let panics: u64 = (0..args.workers)
        .map(|i| snap.counter(&format!("serve.worker.{i}.panics")))
        .sum();

    // -- telemetry overhead: identical replay workload, recorder and
    // tail sampler off (ring_capacity 0) vs on; best of two runs each
    // to shave scheduler noise off the comparison ----------------------
    let overhead_run = |ring_capacity: usize| {
        let s = Server::start(ServerConfig {
            workers: args.workers,
            queue_depth: args.workers * 2,
            ring_capacity,
            ..ServerConfig::default()
        });
        for (name, _, path) in &recordings {
            s.profile(ProfileRequest::ReplayMapped {
                path: path.clone(),
                tracer: TracerConfig::default(),
                batch_capacity: serve::DEFAULT_REPLAY_BATCH,
            })
            .unwrap_or_else(|e| panic!("{name}: overhead warmup failed: {e}"));
        }
        let mut best: Option<Phase> = None;
        for _ in 0..2 {
            let p = drive(&s, args.clients, make_replay);
            if best
                .as_ref()
                .is_none_or(|b| p.events_per_sec() > b.events_per_sec())
            {
                best = Some(p);
            }
        }
        s.shutdown();
        best.expect("two overhead runs happened")
    };
    let recorder_off = overhead_run(0);
    let recorder_on = overhead_run(ServerConfig::default().ring_capacity);
    let overhead_frac = ratio(
        (recorder_off.events_per_sec() - recorder_on.events_per_sec()).max(0.0),
        recorder_off.events_per_sec(),
    );

    let _ = std::fs::remove_dir_all(&dir);

    let per_core = ratio(replay.events_per_sec(), effective_cores as f64);
    let efficiency = ratio(per_core, direct.events_per_sec());
    let doc = format!(
        "{{\n  \"config\": {{\n    \"benchmarks\": {},\n    \"workers\": {},\n    \
         \"clients\": {},\n    \"rounds\": {},\n    \"effective_cores\": {effective_cores}\n  \
         }},\n{},\n{},\n{},\n{},\n{},\n  \
         \"headline\": {{\n    \"events_per_sec_per_core\": {per_core:.1},\n    \
         \"scaling_efficiency\": {efficiency:.4},\n    \
         \"recorder_overhead_frac\": {overhead_frac:.4},\n    \
         \"dropped_batches\": {dropped},\n    \
         \"contained_panics\": {panics}\n  }}\n}}\n",
        suite.len(),
        args.workers,
        args.clients,
        args.rounds,
        phase_json("direct", &direct),
        phase_json("replay", &replay),
        phase_json("pipeline", &pipeline),
        phase_json("recorder_off", &recorder_off),
        phase_json("recorder_on", &recorder_on),
    );
    std::fs::write(&args.out, &doc)
        .unwrap_or_else(|e| panic!("throughput: cannot write {}: {e}", args.out));
    eprintln!(
        "throughput: {} requests served, {:.0} events/sec sustained ({:.0} per core, \
         {:.2}x single-core efficiency), replay p50 {}us p99 {}us, recorder overhead \
         {:.1}% -> {}",
        replay.requests + pipeline.requests,
        replay.events_per_sec(),
        per_core,
        efficiency,
        replay.p50_nanos / 1_000,
        replay.p99_nanos / 1_000,
        overhead_frac * 100.0,
        args.out
    );
    if panics > 0 || dropped > 0 {
        eprintln!("throughput: FAILED — {panics} contained panics, {dropped} dropped batches");
        return ExitCode::FAILURE;
    }
    if !alerts.is_empty() {
        eprintln!(
            "throughput: FAILED — {} alert(s) fired on a healthy run: {}",
            alerts.len(),
            obs::live::alerts_json(&alerts)
        );
        return ExitCode::FAILURE;
    }
    if overhead_frac > MAX_RECORDER_OVERHEAD {
        eprintln!(
            "throughput: FAILED — flight recorder + tail sampling cost {:.1}% events/sec \
             (limit {:.0}%)",
            overhead_frac * 100.0,
            MAX_RECORDER_OVERHEAD * 100.0
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
