//! Observability snapshot regression gate.
//!
//! ```text
//! cargo run --release -p jrpm-bench --bin obs-gate -- <baseline.json> <current.json>
//! cargo run --release -p jrpm-bench --bin obs-gate -- <baseline.json> <current.json> --update
//! ```
//!
//! Diffs two `tables --obs-json` documents and exits non-zero when the
//! current run drifted from the committed baseline:
//!
//! - event counts (recorded events, per-kind totals, per-sink events,
//!   batches, interpreter passes) may drift at most 20 % relative;
//! - each stage's share of pipeline wall time may drift at most
//!   0.20 absolute (shares, not raw nanoseconds, so the gate is
//!   machine-speed independent);
//! - benchmarks or stages appearing/disappearing always fail.
//!
//! `--update` rewrites the baseline from the current file instead of
//! comparing, for intentional changes.

use obs::json::{parse, Value};
use std::collections::BTreeMap;
use std::process::ExitCode;

/// Maximum relative drift for event counts.
const MAX_COUNT_DRIFT: f64 = 0.20;
/// Maximum absolute drift for a stage's share of pipeline wall time.
const MAX_SHARE_DRIFT: f64 = 0.20;

fn load(path: &str) -> Value {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("obs-gate: cannot read {path}: {e}"));
    parse(&text).unwrap_or_else(|e| panic!("obs-gate: {path} is not valid JSON: {e}"))
}

/// `name -> benchmark object` for one document.
fn benchmarks(doc: &Value) -> BTreeMap<String, &Value> {
    let mut out = BTreeMap::new();
    let arr = doc
        .get("benchmarks")
        .and_then(Value::as_arr)
        .expect("document has a benchmarks array");
    for b in arr {
        let name = b
            .get("name")
            .and_then(Value::as_str)
            .expect("benchmark has a name");
        out.insert(name.to_string(), b);
    }
    out
}

/// Every gated count in one benchmark object, flattened to
/// `metric name -> value`.
fn counts(bench: &Value) -> BTreeMap<String, u64> {
    let mut out = BTreeMap::new();
    for key in ["interpreter_passes", "recorded_events", "batches"] {
        if let Some(v) = bench.get(key).and_then(Value::as_u64) {
            out.insert(key.to_string(), v);
        }
    }
    if let Some(Value::Obj(kinds)) = bench.get("events_by_kind") {
        for (kind, v) in kinds {
            if let Some(n) = v.as_u64() {
                out.insert(format!("events_by_kind.{kind}"), n);
            }
        }
    }
    if let Some(sinks) = bench.get("sinks").and_then(Value::as_arr) {
        for (i, sink) in sinks.iter().enumerate() {
            for key in ["events", "batches"] {
                if let Some(v) = sink.get(key).and_then(Value::as_u64) {
                    out.insert(format!("sinks[{i}].{key}"), v);
                }
            }
        }
    }
    out
}

/// `stage name -> share of total pipeline wall time` for one benchmark.
fn stage_shares(bench: &Value) -> BTreeMap<String, f64> {
    let mut nanos = BTreeMap::new();
    let mut total = 0.0f64;
    if let Some(stages) = bench.get("stages").and_then(Value::as_arr) {
        for st in stages {
            let name = st.get("stage").and_then(Value::as_str).unwrap_or("?");
            let n = st.get("nanos").and_then(Value::as_f64).unwrap_or(0.0);
            nanos.insert(name.to_string(), n);
            total += n;
        }
    }
    if total > 0.0 {
        for v in nanos.values_mut() {
            *v /= total;
        }
    }
    nanos
}

fn relative_drift(base: u64, cur: u64) -> f64 {
    if base == cur {
        return 0.0;
    }
    if base == 0 {
        return f64::INFINITY;
    }
    (cur as f64 - base as f64).abs() / base as f64
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let update = args.iter().any(|a| a == "--update");
    let paths: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let [baseline_path, current_path] = paths[..] else {
        eprintln!("usage: obs-gate <baseline.json> <current.json> [--update]");
        return ExitCode::FAILURE;
    };

    if update {
        let current = std::fs::read_to_string(current_path)
            .unwrap_or_else(|e| panic!("obs-gate: cannot read {current_path}: {e}"));
        parse(&current).unwrap_or_else(|e| panic!("obs-gate: {current_path} invalid: {e}"));
        std::fs::write(baseline_path, current)
            .unwrap_or_else(|e| panic!("obs-gate: cannot write {baseline_path}: {e}"));
        eprintln!("obs-gate: baseline {baseline_path} updated from {current_path}");
        return ExitCode::SUCCESS;
    }

    let baseline = load(baseline_path);
    let current = load(current_path);
    let base_benches = benchmarks(&baseline);
    let cur_benches = benchmarks(&current);

    let mut failures: Vec<String> = Vec::new();
    for name in base_benches.keys() {
        if !cur_benches.contains_key(name) {
            failures.push(format!("benchmark {name} disappeared from the current run"));
        }
    }
    for (name, cur) in &cur_benches {
        let Some(base) = base_benches.get(name) else {
            failures.push(format!(
                "benchmark {name} is new — regenerate the baseline with --update"
            ));
            continue;
        };
        let base_counts = counts(base);
        let cur_counts = counts(cur);
        for (metric, &bv) in &base_counts {
            // a metric the current run does not emit at all is its own
            // failure mode — never a phantom zero folded into drift
            let Some(&cv) = cur_counts.get(metric) else {
                failures.push(format!(
                    "{name}: {metric} missing from the current run (baseline {bv})"
                ));
                continue;
            };
            let drift = relative_drift(bv, cv);
            if drift > MAX_COUNT_DRIFT {
                failures.push(format!(
                    "{name}: {metric} drifted {:.0}% (baseline {bv}, current {cv})",
                    drift * 100.0
                ));
            }
        }
        for metric in cur_counts.keys() {
            if !base_counts.contains_key(metric) && cur_counts[metric] > 0 {
                failures.push(format!(
                    "{name}: {metric} = {} appeared (baseline has none)",
                    cur_counts[metric]
                ));
            }
        }
        let base_shares = stage_shares(base);
        let cur_shares = stage_shares(cur);
        for (stage, &bs) in &base_shares {
            let Some(&cs) = cur_shares.get(stage) else {
                failures.push(format!("{name}: stage {stage} disappeared"));
                continue;
            };
            let drift = (cs - bs).abs();
            if drift > MAX_SHARE_DRIFT {
                failures.push(format!(
                    "{name}: stage {stage} wall-time share drifted {drift:.2} \
                     (baseline {bs:.2}, current {cs:.2})"
                ));
            }
        }
        for stage in cur_shares.keys() {
            if !base_shares.contains_key(stage) {
                failures.push(format!("{name}: stage {stage} appeared"));
            }
        }
    }

    if failures.is_empty() {
        eprintln!(
            "obs-gate: OK — {} benchmark(s) within tolerance ({:.0}% counts, {:.2} share)",
            cur_benches.len(),
            MAX_COUNT_DRIFT * 100.0,
            MAX_SHARE_DRIFT
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("obs-gate: FAILED — {} violation(s):", failures.len());
        for f in &failures {
            eprintln!("  {f}");
        }
        eprintln!("(intentional change? refresh with: obs-gate <baseline> <current> --update)");
        ExitCode::FAILURE
    }
}
