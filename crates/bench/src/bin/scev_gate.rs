//! Scalar-evolution sharpening and value-agreement regression gate.
//!
//! ```text
//! cargo run --release -p jrpm-bench --bin scev-gate -- <baseline.json> <prescreen_baseline.json>
//! cargo run --release -p jrpm-bench --bin scev-gate -- <baseline.json> <prescreen_baseline.json> --update
//! ```
//!
//! Recomputes the scalar-evolution snapshot (`tables::scev_rows` at the
//! small data size) and compares it against the committed baseline:
//!
//! - any numeric difference per benchmark fails (the snapshot is the
//!   PR's record of exactly which distance vectors and slices the
//!   analysis certifies);
//! - the monotone-improvement invariant against the *pre-screen*
//!   baseline must hold per benchmark: the pair universe is identical
//!   (`pairs` equal) and scev may only *add* independence proofs
//!   (`disjoint >= prescreen disjoint`);
//! - at least one suite loop must gain a `DistanceAtLeast` verdict the
//!   pre-screen had to leave may-alias;
//! - the dynamic value-agreement replay must be sound on every
//!   benchmark, with zero slice-prediction or distance-claim
//!   violations.
//!
//! `--update` rewrites the scev baseline from the fresh computation,
//! for intentional analysis changes. The pre-screen baseline is never
//! written — it belongs to `prescreen-gate`.

use benchsuite::DataSize;
use jrpm_bench::tables::{scev_json, scev_rows};
use obs::json::{parse, Value};
use std::collections::BTreeMap;
use std::process::ExitCode;

/// Flattens one benchmark object into `field -> value`.
fn fields(bench: &Value, keys: &[&str]) -> BTreeMap<String, u64> {
    let mut out = BTreeMap::new();
    for key in keys {
        if let Some(v) = bench.get(key).and_then(Value::as_u64) {
            out.insert((*key).to_string(), v);
        }
    }
    out
}

fn benchmarks(doc: &Value, keys: &[&str]) -> BTreeMap<String, BTreeMap<String, u64>> {
    let mut out = BTreeMap::new();
    let arr = doc
        .get("benchmarks")
        .and_then(Value::as_arr)
        .expect("document has a benchmarks array");
    for b in arr {
        let name = b
            .get("name")
            .and_then(Value::as_str)
            .expect("benchmark has a name");
        out.insert(name.to_string(), fields(b, keys));
    }
    out
}

const SCEV_KEYS: &[&str] = &[
    "pairs",
    "prescreen_disjoint",
    "disjoint",
    "distance_pairs",
    "floored_loops",
    "closed_forms",
    "slices",
    "slices_rejected",
    "slice_checks",
    "slice_violations",
    "distance_checks",
    "distance_violations",
    "sound",
];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let update = args.iter().any(|a| a == "--update");
    let paths: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let [baseline_path, prescreen_path] = paths[..] else {
        eprintln!("usage: scev-gate <baseline.json> <prescreen_baseline.json> [--update]");
        return ExitCode::FAILURE;
    };

    let rows = scev_rows(DataSize::Small);
    let current_json = scev_json(&rows);

    // Invariants on the fresh computation itself — checked before any
    // baseline diff so --update can never enshrine a violation.
    let mut failures: Vec<String> = Vec::new();
    for r in &rows {
        if r.disjoint < r.prescreen_disjoint {
            failures.push(format!(
                "{}: scev sharpening lost proofs (disjoint {} < pre-screen {})",
                r.name, r.disjoint, r.prescreen_disjoint
            ));
        }
        if !r.sound || r.slice_violations > 0 || r.distance_violations > 0 {
            failures.push(format!(
                "{}: value agreement unsound ({} slice violation(s), {} distance violation(s))",
                r.name, r.slice_violations, r.distance_violations
            ));
        }
    }
    let total_distance: usize = rows.iter().map(|r| r.distance_pairs).sum();
    if total_distance == 0 {
        failures.push(
            "suite-wide distance_pairs is 0: no loop gained a DistanceAtLeast verdict \
             beyond the pre-screen"
                .into(),
        );
    }

    // Monotone improvement against the pre-screen snapshot: same pair
    // universe, never fewer disjointness proofs.
    let prescreen_text = std::fs::read_to_string(prescreen_path)
        .unwrap_or_else(|e| panic!("scev-gate: cannot read {prescreen_path}: {e}"));
    let prescreen = parse(&prescreen_text)
        .unwrap_or_else(|e| panic!("scev-gate: {prescreen_path} is not valid JSON: {e}"));
    let prescreen_benches = benchmarks(&prescreen, &["pairs", "disjoint"]);
    for r in &rows {
        let Some(base) = prescreen_benches.get(r.name) else {
            failures.push(format!(
                "{}: missing from the pre-screen baseline {prescreen_path}",
                r.name
            ));
            continue;
        };
        if base.get("pairs").copied() != Some(r.pairs as u64) {
            failures.push(format!(
                "{}: pair universe diverged from the pre-screen baseline \
                 (pre-screen {:?}, scev {})",
                r.name,
                base.get("pairs"),
                r.pairs
            ));
        }
        if let Some(&pd) = base.get("disjoint") {
            if (r.disjoint as u64) < pd {
                failures.push(format!(
                    "{}: monotone improvement violated (scev disjoint {} < \
                     pre-screen baseline {pd})",
                    r.name, r.disjoint
                ));
            }
        }
    }

    if update {
        if !failures.is_empty() {
            eprintln!("scev-gate: refusing to update a baseline that violates invariants:");
            for f in &failures {
                eprintln!("  {f}");
            }
            return ExitCode::FAILURE;
        }
        std::fs::write(baseline_path, &current_json)
            .unwrap_or_else(|e| panic!("scev-gate: cannot write {baseline_path}: {e}"));
        eprintln!(
            "scev-gate: baseline {baseline_path} updated ({} benchmarks)",
            rows.len()
        );
        return ExitCode::SUCCESS;
    }

    let baseline_text = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| panic!("scev-gate: cannot read {baseline_path}: {e}"));
    let baseline = parse(&baseline_text)
        .unwrap_or_else(|e| panic!("scev-gate: {baseline_path} is not valid JSON: {e}"));
    let current = parse(&current_json).expect("fresh snapshot is valid JSON");
    let base_benches = benchmarks(&baseline, SCEV_KEYS);
    let cur_benches = benchmarks(&current, SCEV_KEYS);

    for name in base_benches.keys() {
        if !cur_benches.contains_key(name) {
            failures.push(format!("benchmark {name} disappeared"));
        }
    }
    for (name, cur) in &cur_benches {
        let Some(base) = base_benches.get(name) else {
            failures.push(format!(
                "benchmark {name} is new — regenerate the baseline with --update"
            ));
            continue;
        };
        for (field, cv) in cur {
            let bv = base.get(field).copied();
            if bv != Some(*cv) {
                failures.push(format!(
                    "{name}: {field} changed (baseline {}, current {cv})",
                    bv.map_or("absent".into(), |v| v.to_string())
                ));
            }
        }
    }

    if failures.is_empty() {
        let total_slices: usize = rows.iter().map(|r| r.slices).sum();
        let total_checks: u64 = rows
            .iter()
            .map(|r| r.slice_checks + r.distance_checks)
            .sum();
        eprintln!(
            "scev-gate: OK — {} benchmark(s) match the baseline ({total_distance} distance \
             vector(s), {total_slices} certified slice(s), {total_checks} dynamic check(s), \
             all sound)",
            rows.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("scev-gate: FAILED — {} violation(s):", failures.len());
        for f in &failures {
            eprintln!("  {f}");
        }
        eprintln!("(intentional change? refresh with: scev-gate <baseline> <prescreen> --update)");
        ExitCode::FAILURE
    }
}
