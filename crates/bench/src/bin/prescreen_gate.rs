//! Pre-screen sharpening regression gate.
//!
//! ```text
//! cargo run --release -p jrpm-bench --bin prescreen-gate -- <baseline.json>
//! cargo run --release -p jrpm-bench --bin prescreen-gate -- <baseline.json> --update
//! ```
//!
//! Recomputes the static pre-screen snapshot (`tables::prescreen_rows`
//! at the small data size — pure static analysis, so byte-exact
//! deterministic) and compares it against the committed baseline:
//!
//! - any numeric difference per benchmark fails (the snapshot is the
//!   PR's record of exactly which verdicts the analysis produces);
//! - the monotonicity invariant `disjoint >= baseline_disjoint` must
//!   hold for every benchmark — points-to sharpening may only *add*
//!   independence proofs;
//! - the suite-wide `via_pointsto` total must be positive: the
//!   sharpened pre-screen has to prove strictly more access pairs
//!   independent than the structural rules alone.
//!
//! `--update` rewrites the baseline from the fresh computation, for
//! intentional analysis changes.

use benchsuite::DataSize;
use jrpm_bench::tables::{prescreen_json, prescreen_rows};
use obs::json::{parse, Value};
use std::collections::BTreeMap;
use std::process::ExitCode;

/// Flattens one benchmark object into `field -> value`.
fn fields(bench: &Value) -> BTreeMap<String, u64> {
    let mut out = BTreeMap::new();
    for key in [
        "loops",
        "candidates",
        "demoted",
        "pairs",
        "baseline_disjoint",
        "disjoint",
        "via_pointsto",
        "abstract_objects",
    ] {
        if let Some(v) = bench.get(key).and_then(Value::as_u64) {
            out.insert(key.to_string(), v);
        }
    }
    out
}

fn benchmarks(doc: &Value) -> BTreeMap<String, BTreeMap<String, u64>> {
    let mut out = BTreeMap::new();
    let arr = doc
        .get("benchmarks")
        .and_then(Value::as_arr)
        .expect("document has a benchmarks array");
    for b in arr {
        let name = b
            .get("name")
            .and_then(Value::as_str)
            .expect("benchmark has a name");
        out.insert(name.to_string(), fields(b));
    }
    out
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let update = args.iter().any(|a| a == "--update");
    let paths: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let [baseline_path] = paths[..] else {
        eprintln!("usage: prescreen-gate <baseline.json> [--update]");
        return ExitCode::FAILURE;
    };

    let rows = prescreen_rows(DataSize::Small);
    let current_json = prescreen_json(&rows);

    let mut failures: Vec<String> = Vec::new();
    for r in &rows {
        if r.disjoint < r.baseline_disjoint {
            failures.push(format!(
                "{}: sharpening lost proofs (disjoint {} < baseline {})",
                r.name, r.disjoint, r.baseline_disjoint
            ));
        }
    }
    let total_via_pt: usize = rows.iter().map(|r| r.via_pointsto).sum();
    if total_via_pt == 0 {
        failures.push(
            "suite-wide via_pointsto is 0: the points-to pre-screen proves nothing \
             beyond the structural rules"
                .into(),
        );
    }

    if update {
        if !failures.is_empty() {
            eprintln!("prescreen-gate: refusing to update a baseline that violates invariants:");
            for f in &failures {
                eprintln!("  {f}");
            }
            return ExitCode::FAILURE;
        }
        std::fs::write(baseline_path, &current_json)
            .unwrap_or_else(|e| panic!("prescreen-gate: cannot write {baseline_path}: {e}"));
        eprintln!(
            "prescreen-gate: baseline {baseline_path} updated ({} benchmarks)",
            rows.len()
        );
        return ExitCode::SUCCESS;
    }

    let baseline_text = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| panic!("prescreen-gate: cannot read {baseline_path}: {e}"));
    let baseline = parse(&baseline_text)
        .unwrap_or_else(|e| panic!("prescreen-gate: {baseline_path} is not valid JSON: {e}"));
    let current = parse(&current_json).expect("fresh snapshot is valid JSON");
    let base_benches = benchmarks(&baseline);
    let cur_benches = benchmarks(&current);

    for name in base_benches.keys() {
        if !cur_benches.contains_key(name) {
            failures.push(format!("benchmark {name} disappeared"));
        }
    }
    for (name, cur) in &cur_benches {
        let Some(base) = base_benches.get(name) else {
            failures.push(format!(
                "benchmark {name} is new — regenerate the baseline with --update"
            ));
            continue;
        };
        for (field, cv) in cur {
            let bv = base.get(field).copied();
            if bv != Some(*cv) {
                failures.push(format!(
                    "{name}: {field} changed (baseline {}, current {cv})",
                    bv.map_or("absent".into(), |v| v.to_string())
                ));
            }
        }
    }

    if failures.is_empty() {
        let total_demoted: usize = rows.iter().map(|r| r.demoted).sum();
        eprintln!(
            "prescreen-gate: OK — {} benchmark(s) match the baseline \
             ({total_demoted} demoted, {total_via_pt} pairs proven only by points-to)",
            rows.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("prescreen-gate: FAILED — {} violation(s):", failures.len());
        for f in &failures {
            eprintln!("  {f}");
        }
        eprintln!("(intentional change? refresh with: prescreen-gate <baseline> --update)");
        ExitCode::FAILURE
    }
}
