//! `jrpm-lint` — static-analysis diagnostics over the benchmark suite.
//!
//! Runs the structural verifier, the abstract kind checker and the
//! memory-dependence pre-screen on every benchmark, before and after
//! annotation rewriting, and emits one JSON document on stdout:
//!
//! ```text
//! cargo run --release -p jrpm-bench --bin jrpm-lint
//! cargo run --release -p jrpm-bench --bin jrpm-lint -- --small Huffman
//! ```
//!
//! Exit status is nonzero if any program fails verification.

use benchsuite::DataSize;
use cfgir::StaticVerdict;
use jrpm::{annotate, AnnotateOptions};

/// Escapes a string for embedding in a JSON literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn check(r: Result<(), tvm::VmError>) -> (String, bool) {
    match r {
        Ok(()) => ("\"ok\"".into(), true),
        Err(e) => (format!("\"{}\"", esc(&e.to_string())), false),
    }
}

fn main() {
    let mut size = DataSize::Small;
    let mut names: Vec<String> = Vec::new();
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--small" => size = DataSize::Small,
            "--default" => size = DataSize::Default,
            "--large" => size = DataSize::Large,
            other => names.push(other.to_string()),
        }
    }
    let suite: Vec<_> = benchsuite::all()
        .into_iter()
        .filter(|b| names.is_empty() || names.iter().any(|n| n == b.name))
        .collect();
    if suite.is_empty() {
        eprintln!("no benchmarks matched {names:?}; see `benchsuite::all()`");
        std::process::exit(2);
    }

    let mut all_ok = true;
    let mut total_demoted = 0usize;
    let mut rows: Vec<String> = Vec::new();

    for b in &suite {
        let program = (b.build)(size);
        let fname = |f: tvm::isa::FuncId| {
            program
                .functions
                .get(f.0 as usize)
                .map_or_else(|| format!("f{}", f.0), |func| esc(&func.name))
        };

        let (verify, v_ok) = check(tvm::verify::verify(&program));
        let (kinds, k_ok) = check(tvm::verify::verify_kinds(&program));

        let cands = cfgir::extract_candidates(&program);

        // the kind checker must also accept the rewritten program
        let (post, p_ok) = match annotate(&program, &cands, &AnnotateOptions::profiling()) {
            Ok(ann) => check(tvm::verify::verify_kinds(&ann)),
            Err(e) => (format!("\"{}\"", esc(&e.to_string())), false),
        };
        all_ok &= v_ok && k_ok && p_ok;

        let mut loops: Vec<String> = Vec::new();
        for c in &cands.candidates {
            let (verdict, reason) = match &c.static_verdict {
                StaticVerdict::Clean => ("clean", String::new()),
                StaticVerdict::Demoted { reason } => ("demoted", reason.clone()),
            };
            loops.push(format!(
                "{{\"id\":{},\"func\":\"{}\",\"depth\":{},\"verdict\":\"{}\"{}}}",
                c.id.0,
                fname(c.func),
                c.depth,
                verdict,
                if reason.is_empty() {
                    String::new()
                } else {
                    format!(",\"reason\":\"{}\"", esc(&reason))
                }
            ));
        }
        for r in &cands.rejected {
            loops.push(format!(
                "{{\"func\":\"{}\",\"loop\":{},\"verdict\":\"rejected\",\"reason\":\"{}\"}}",
                fname(r.func),
                r.loop_idx,
                esc(&r.reason)
            ));
        }
        let demoted = cands.demoted_count();
        total_demoted += demoted;

        rows.push(format!(
            "{{\"name\":\"{}\",\"verify\":{},\"kinds\":{},\"post_annotation_kinds\":{},\
             \"loops\":{},\"candidates\":{},\"rejected\":{},\"demoted\":{},\"loop_detail\":[{}]}}",
            esc(b.name),
            verify,
            kinds,
            post,
            cands.total_loops(),
            cands.candidates.len(),
            cands.rejected.len(),
            demoted,
            loops.join(",")
        ));
    }

    println!(
        "{{\"size\":\"{:?}\",\"ok\":{},\"total_demoted\":{},\"benchmarks\":[{}]}}",
        size,
        all_ok,
        total_demoted,
        rows.join(",")
    );
    if !all_ok {
        std::process::exit(1);
    }
}
