//! `jrpm-lint` — static-analysis diagnostics over the benchmark suite.
//!
//! Runs the structural verifier, the abstract kind checker, the
//! memory-dependence pre-screen and the points-to analysis on every
//! benchmark, before and after annotation rewriting, and emits one
//! JSON document on stdout:
//!
//! ```text
//! cargo run --release -p jrpm-bench --bin jrpm-lint
//! cargo run --release -p jrpm-bench --bin jrpm-lint -- --small Huffman
//! cargo run --release -p jrpm-bench --bin jrpm-lint -- --explain PT001
//! ```
//!
//! Each loop row carries alias/escape, loop-rescue, and
//! scalar-evolution diagnostics with stable codes (`PT001`, `PT002`,
//! `TR001`, `TR002`, `SV001`, `SL001`), and each benchmark row carries
//! the online tier controller's runtime diagnostics (`TI001`,
//! `TI002`); `--explain <code>` prints what a code means. The codes
//! and their explanations live in [`jrpm_bench::diag`], whose tests
//! pin that every emittable code has an entry.
//! Exit status is nonzero if any program fails verification.

use benchsuite::DataSize;
use cfgir::{
    classify_loop_pairs, classify_loop_pairs_evo, extract_slices, scev, Dominators, PairVerdict,
    PointsTo, StaticVerdict,
};
use jrpm::tier::{run_tiered, TierConfig};
use jrpm::{annotate, AnnotateOptions, PipelineConfig};
use jrpm_bench::diag::{explain, EXPLANATIONS};

/// Escapes a string for embedding in a JSON literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn check(r: Result<(), tvm::VmError>) -> (String, bool) {
    match r {
        Ok(()) => ("\"ok\"".into(), true),
        Err(e) => (format!("\"{}\"", esc(&e.to_string())), false),
    }
}

fn main() {
    let mut size = DataSize::Small;
    let mut names: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--small" => size = DataSize::Small,
            "--default" => size = DataSize::Default,
            "--large" => size = DataSize::Large,
            "--explain" => {
                let Some(code) = args.next() else {
                    eprintln!("usage: jrpm-lint --explain <code>");
                    std::process::exit(2);
                };
                let code = code.to_uppercase();
                match explain(&code) {
                    Some(text) => {
                        println!("{code}: {text}");
                        return;
                    }
                    None => {
                        eprintln!(
                            "unknown diagnostic code {code}; known codes: {}",
                            EXPLANATIONS
                                .iter()
                                .map(|(c, _)| *c)
                                .collect::<Vec<_>>()
                                .join(", ")
                        );
                        std::process::exit(2);
                    }
                }
            }
            other => names.push(other.to_string()),
        }
    }
    let suite: Vec<_> = benchsuite::all()
        .into_iter()
        .filter(|b| names.is_empty() || names.iter().any(|n| n == b.name))
        .collect();
    if suite.is_empty() {
        eprintln!("no benchmarks matched {names:?}; see `benchsuite::all()`");
        std::process::exit(2);
    }

    let mut all_ok = true;
    let mut total_demoted = 0usize;
    let mut total_rescued = 0usize;
    let mut rows: Vec<String> = Vec::new();

    for b in &suite {
        let program = (b.build)(size);
        let fname = |f: tvm::isa::FuncId| {
            program
                .functions
                .get(f.0 as usize)
                .map_or_else(|| format!("f{}", f.0), |func| esc(&func.name))
        };

        let (verify, v_ok) = check(tvm::verify::verify(&program));
        let (kinds, k_ok) = check(tvm::verify::verify_kinds(&program));

        let cands = cfgir::extract_candidates(&program);
        let pt = PointsTo::analyze(&program);
        let rescue = cfgir::rescue_program(&program);

        // TI001/TI002: drive the online tier controller to a terminal
        // state and surface its runtime diagnostics next to the static
        // ones (equivalence with the offline batch is tested elsewhere)
        let tiers = run_tiered(&program, &PipelineConfig::default(), &TierConfig::default())
            .map(|o| o.tiers)
            .ok();

        // the kind checker must also accept the rewritten program
        let (post, p_ok) = match annotate(&program, &cands, &AnnotateOptions::profiling()) {
            Ok(ann) => check(tvm::verify::verify_kinds(&ann)),
            Err(e) => (format!("\"{}\"", esc(&e.to_string())), false),
        };
        all_ok &= v_ok && k_ok && p_ok;

        let mut loops: Vec<String> = Vec::new();
        for c in &cands.candidates {
            let (verdict, reason) = match &c.static_verdict {
                StaticVerdict::Clean => ("clean", String::new()),
                StaticVerdict::Demoted { reason } => ("demoted", reason.clone()),
            };
            // PT001: pairs this loop's pre-screen proved disjoint only
            // thanks to points-to (the structural rules alone could not)
            let fa = &cands.functions[c.func.0 as usize];
            let f = &program.functions[c.func.0 as usize];
            let dom = Dominators::compute(&fa.cfg);
            let lp = &fa.forest.loops[c.loop_idx];
            let view = pt.view(c.func);
            let sharp = classify_loop_pairs(&program, f, &fa.cfg, &dom, lp, Some(&view));
            let via_pt = sharp.iter().filter(|p| p.via_pointsto).count();
            let disjoint = sharp
                .iter()
                .filter(|p| p.verdict == PairVerdict::Disjoint)
                .count();
            let mut diags: Vec<String> = Vec::new();
            if via_pt > 0 {
                diags.push(format!(
                    "{{\"code\":\"PT001\",\"count\":{via_pt},\"disjoint\":{disjoint},\
                     \"pairs\":{}}}",
                    sharp.len()
                ));
            }
            // SV001/SL001: what scalar evolution adds on top — distance
            // vectors for affine pairs and certified slices for
            // closed-form loop-carried scalars
            let evo = scev::analyze_loop(&program, f, &fa.cfg, lp);
            let evo_pairs =
                classify_loop_pairs_evo(&program, f, &fa.cfg, &dom, lp, Some(&view), &evo);
            let distances: Vec<u32> = evo_pairs
                .iter()
                .filter_map(|p| match p.verdict {
                    PairVerdict::DistanceAtLeast(d) => Some(d),
                    _ => None,
                })
                .collect();
            let scev_disjoint = evo_pairs
                .iter()
                .filter(|p| p.via_scev && p.verdict == PairVerdict::Disjoint)
                .count();
            if !distances.is_empty() || scev_disjoint > 0 {
                let ds: Vec<String> = distances.iter().map(u32::to_string).collect();
                diags.push(format!(
                    "{{\"code\":\"SV001\",\"distances\":[{}],\"scev_disjoint\":{scev_disjoint},\
                     \"closed_forms\":{}}}",
                    ds.join(","),
                    evo.closed_form_count()
                ));
            }
            let slices = extract_slices(&program, f, &fa.cfg, &fa.forest, c.loop_idx, &evo);
            if !slices.slices.is_empty() || slices.rejected > 0 {
                let scalars: Vec<String> = slices
                    .slices
                    .iter()
                    .map(|s| format!("\"{}\"", esc(&s.scalar.to_string())))
                    .collect();
                let cost: u32 = slices.slices.iter().map(|s| s.cert.cost).sum();
                diags.push(format!(
                    "{{\"code\":\"SL001\",\"slices\":{},\"rejected\":{},\"cost\":{cost},\
                     \"scalars\":[{}]}}",
                    slices.slices.len(),
                    slices.rejected,
                    scalars.join(",")
                ));
            }
            // TR001/TR002: what the loop-rescue pass did to this loop,
            // correlated by function + original header-block pc range
            let hb = &fa.cfg.blocks[lp.header.0 as usize];
            let in_header = |pc: u32| pc >= hb.start && pc < hb.end;
            for r in rescue
                .rescued
                .iter()
                .filter(|r| r.func == c.func && in_header(r.orig_header_pc))
            {
                diags.push(format!(
                    "{{\"code\":\"TR001\",\"transform\":\"{}\",\"target\":\"{}\",\
                     \"removed\":\"{}\"}}",
                    r.proof.transform.name(),
                    esc(&r.proof.transform.target()),
                    esc(&r.removed)
                ));
            }
            for r in rescue
                .rejected
                .iter()
                .filter(|r| r.func == c.func && in_header(r.orig_header_pc))
            {
                let witness = r.witness.as_ref().map_or(String::new(), |w| {
                    format!(",\"witness\":\"{}\"", esc(&w.to_string()))
                });
                diags.push(format!(
                    "{{\"code\":\"TR002\",\"transform\":\"{}\",\"reason\":\"{}\"{witness}}}",
                    r.transform,
                    esc(&r.reason)
                ));
            }
            let mut tier_field = String::new();
            if let Some(t) = &tiers {
                for d in t.diagnostics.iter().filter(|d| d.loop_id == c.id) {
                    let witness: Vec<String> = d
                        .witness
                        .iter()
                        .map(|w| format!("\"{}\"", esc(w)))
                        .collect();
                    diags.push(format!(
                        "{{\"code\":\"{}\",\"message\":\"{}\",\"witness\":[{}]}}",
                        d.code,
                        esc(&d.message),
                        witness.join(",")
                    ));
                }
                if let Some(tier) = t.tier_of(c.id) {
                    tier_field = format!(",\"tier\":\"{}\"", tier.name());
                }
            }
            loops.push(format!(
                "{{\"id\":{},\"func\":\"{}\",\"depth\":{},\"verdict\":\"{}\"{}{},\"diags\":[{}]}}",
                c.id.0,
                fname(c.func),
                c.depth,
                verdict,
                if reason.is_empty() {
                    String::new()
                } else {
                    format!(",\"reason\":\"{}\"", esc(&reason))
                },
                tier_field,
                diags.join(",")
            ));
        }
        // PT002: allocation sites reachable from a static variable —
        // opaque calls may touch them, so the escape analysis cannot
        // localise their stores
        let escapes: Vec<String> = pt
            .sites()
            .iter()
            .filter(|s| pt.escapes_via_static(s.id))
            .map(|s| {
                format!(
                    "{{\"code\":\"PT002\",\"site\":\"{}\",\"func\":\"{}\",\"pc\":{}}}",
                    s.id,
                    fname(s.pc.func),
                    s.pc.idx
                )
            })
            .collect();
        for r in &cands.rejected {
            loops.push(format!(
                "{{\"func\":\"{}\",\"loop\":{},\"verdict\":\"rejected\",\"reason\":\"{}\"}}",
                fname(r.func),
                r.loop_idx,
                esc(&r.reason)
            ));
        }
        let demoted = cands.demoted_count();
        total_demoted += demoted;
        total_rescued += rescue.rescued.len();

        let (tier_epochs, tier_terminal, tier_diags) = tiers.as_ref().map_or((0, false, 0), |t| {
            (t.epochs, t.all_terminal(), t.diagnostics.len())
        });
        rows.push(format!(
            "{{\"name\":\"{}\",\"verify\":{},\"kinds\":{},\"post_annotation_kinds\":{},\
             \"loops\":{},\"candidates\":{},\"rejected\":{},\"demoted\":{},\
             \"rescued\":{},\"rescue_rejected\":{},\
             \"tier_epochs\":{},\"tier_terminal\":{},\"tier_diags\":{},\
             \"loop_detail\":[{}],\"escape_diags\":[{}]}}",
            esc(b.name),
            verify,
            kinds,
            post,
            cands.total_loops(),
            cands.candidates.len(),
            cands.rejected.len(),
            demoted,
            rescue.rescued.len(),
            rescue.rejected.len(),
            tier_epochs,
            tier_terminal,
            tier_diags,
            loops.join(","),
            escapes.join(",")
        ));
    }

    println!(
        "{{\"size\":\"{:?}\",\"ok\":{},\"total_demoted\":{},\"total_rescued\":{},\
         \"benchmarks\":[{}]}}",
        size,
        all_ok,
        total_demoted,
        total_rescued,
        rows.join(",")
    );
    if !all_ok {
        std::process::exit(1);
    }
}
