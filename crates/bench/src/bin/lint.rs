//! `jrpm-lint` — static-analysis diagnostics over the benchmark suite.
//!
//! Runs the structural verifier, the abstract kind checker, the
//! memory-dependence pre-screen and the points-to analysis on every
//! benchmark, before and after annotation rewriting, and emits one
//! JSON document on stdout:
//!
//! ```text
//! cargo run --release -p jrpm-bench --bin jrpm-lint
//! cargo run --release -p jrpm-bench --bin jrpm-lint -- --small Huffman
//! cargo run --release -p jrpm-bench --bin jrpm-lint -- --explain PT001
//! ```
//!
//! Each loop row carries alias/escape and loop-rescue diagnostics with
//! stable codes (`PT001`, `PT002`, `TR001`, `TR002`), and each
//! benchmark row carries the online tier controller's runtime
//! diagnostics (`TI001`, `TI002`); `--explain <code>` prints what a
//! code means.
//! Exit status is nonzero if any program fails verification.

use benchsuite::DataSize;
use cfgir::{classify_loop_pairs, Dominators, PairVerdict, PointsTo, StaticVerdict};
use jrpm::tier::{run_tiered, TierConfig};
use jrpm::{annotate, AnnotateOptions, PipelineConfig};

/// Stable diagnostic codes with one-paragraph explanations, shown by
/// `--explain`. Codes are append-only: tools key on them.
const EXPLANATIONS: &[(&str, &str)] = &[
    (
        "PT001",
        "provably-disjoint access pairs: in this loop, N load/store pairs that the \
         structural memory-dependence rules (PR 1) had to treat as may-alias were \
         proven to touch disjoint abstract objects by the Andersen points-to \
         analysis. These pairs no longer mask speculative-thread candidates, so a \
         loop carrying PT001 is analysed more precisely, never less. The count is \
         the `via_pointsto` figure from `cfgir::classify_loop_pairs`.",
    ),
    (
        "TR001",
        "loop rescued: a demoted loop was rewritten by the loop-rescue pass (PR 6) \
         into a provably parallelizable variant — a reduction delta-rewrite, a \
         scalar privatization, or a loop distribution. The diagnostic names the \
         transform and the recurrence it removed; the attached legality proof was \
         re-checked by the independent verifier (`cfgir::rescue::verify`) before \
         the variant replaced the loop, so downstream profiling and selection run \
         on the transformed code.",
    ),
    (
        "TR002",
        "rescue rejected: a loop-rescue transform matched this loop's shape but \
         could not prove the rewrite legal, so the loop stays as written. The \
         diagnostic carries the rejecting transform, the reason, and — when the \
         rejection is dependence-shaped — the violating dependence witness \
         (source/destination pcs and the overlap kind from the memory-dependence \
         pre-screen). Restructuring the loop to break that dependence is what \
         would let the rescue pass lift it.",
    ),
    (
        "TI001",
        "loop stuck in Tracing past its budget: the online tier controller (PR 7) \
         promoted and patched this loop, but across more epochs than the configured \
         trace budget every one of its entries found the TEST comparator banks \
         already held by enclosing loops, so it never produced a banked profile \
         entry. The controller demotes it dynamically. The witness lists, per \
         epoch, the untraced-entry count and the bank capacity; more comparator \
         banks (TracerConfig::n_banks) or demoting the enclosing loop are what \
         would let it trace.",
    ),
    (
        "TI002",
        "selection verdict flapped: windowed Equation 2 re-selection committed \
         opposite verdicts for this loop more times than the flap limit, even \
         through the hysteresis filter. This typically means two decompositions of \
         the same nest predict near-identical speedups, so epoch-level noise (or a \
         promotion wave re-annotating the nest) keeps flipping the winner. The \
         witness quotes each committed flip with its windowed estimate; raising \
         the hysteresis or window size stabilises the choice, and the final \
         full-image selection is authoritative either way.",
    ),
    (
        "PT002",
        "allocation site escapes via a static variable: an object or array \
         allocated in this loop's function is reachable from a static (global) \
         variable, so every opaque call in the program may read or write it. \
         Stores through such a site cannot be localised by the points-to escape \
         analysis; keeping the value out of statics (or threading it through \
         parameters) lets the pre-screen shrink call summaries around it.",
    ),
];

/// Escapes a string for embedding in a JSON literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn check(r: Result<(), tvm::VmError>) -> (String, bool) {
    match r {
        Ok(()) => ("\"ok\"".into(), true),
        Err(e) => (format!("\"{}\"", esc(&e.to_string())), false),
    }
}

fn main() {
    let mut size = DataSize::Small;
    let mut names: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--small" => size = DataSize::Small,
            "--default" => size = DataSize::Default,
            "--large" => size = DataSize::Large,
            "--explain" => {
                let Some(code) = args.next() else {
                    eprintln!("usage: jrpm-lint --explain <code>");
                    std::process::exit(2);
                };
                let code = code.to_uppercase();
                match EXPLANATIONS.iter().find(|(c, _)| *c == code) {
                    Some((c, text)) => {
                        println!("{c}: {text}");
                        return;
                    }
                    None => {
                        eprintln!(
                            "unknown diagnostic code {code}; known codes: {}",
                            EXPLANATIONS
                                .iter()
                                .map(|(c, _)| *c)
                                .collect::<Vec<_>>()
                                .join(", ")
                        );
                        std::process::exit(2);
                    }
                }
            }
            other => names.push(other.to_string()),
        }
    }
    let suite: Vec<_> = benchsuite::all()
        .into_iter()
        .filter(|b| names.is_empty() || names.iter().any(|n| n == b.name))
        .collect();
    if suite.is_empty() {
        eprintln!("no benchmarks matched {names:?}; see `benchsuite::all()`");
        std::process::exit(2);
    }

    let mut all_ok = true;
    let mut total_demoted = 0usize;
    let mut total_rescued = 0usize;
    let mut rows: Vec<String> = Vec::new();

    for b in &suite {
        let program = (b.build)(size);
        let fname = |f: tvm::isa::FuncId| {
            program
                .functions
                .get(f.0 as usize)
                .map_or_else(|| format!("f{}", f.0), |func| esc(&func.name))
        };

        let (verify, v_ok) = check(tvm::verify::verify(&program));
        let (kinds, k_ok) = check(tvm::verify::verify_kinds(&program));

        let cands = cfgir::extract_candidates(&program);
        let pt = PointsTo::analyze(&program);
        let rescue = cfgir::rescue_program(&program);

        // TI001/TI002: drive the online tier controller to a terminal
        // state and surface its runtime diagnostics next to the static
        // ones (equivalence with the offline batch is tested elsewhere)
        let tiers = run_tiered(&program, &PipelineConfig::default(), &TierConfig::default())
            .map(|o| o.tiers)
            .ok();

        // the kind checker must also accept the rewritten program
        let (post, p_ok) = match annotate(&program, &cands, &AnnotateOptions::profiling()) {
            Ok(ann) => check(tvm::verify::verify_kinds(&ann)),
            Err(e) => (format!("\"{}\"", esc(&e.to_string())), false),
        };
        all_ok &= v_ok && k_ok && p_ok;

        let mut loops: Vec<String> = Vec::new();
        for c in &cands.candidates {
            let (verdict, reason) = match &c.static_verdict {
                StaticVerdict::Clean => ("clean", String::new()),
                StaticVerdict::Demoted { reason } => ("demoted", reason.clone()),
            };
            // PT001: pairs this loop's pre-screen proved disjoint only
            // thanks to points-to (the structural rules alone could not)
            let fa = &cands.functions[c.func.0 as usize];
            let f = &program.functions[c.func.0 as usize];
            let dom = Dominators::compute(&fa.cfg);
            let lp = &fa.forest.loops[c.loop_idx];
            let view = pt.view(c.func);
            let sharp = classify_loop_pairs(&program, f, &fa.cfg, &dom, lp, Some(&view));
            let via_pt = sharp.iter().filter(|p| p.via_pointsto).count();
            let disjoint = sharp
                .iter()
                .filter(|p| p.verdict == PairVerdict::Disjoint)
                .count();
            let mut diags: Vec<String> = Vec::new();
            if via_pt > 0 {
                diags.push(format!(
                    "{{\"code\":\"PT001\",\"count\":{via_pt},\"disjoint\":{disjoint},\
                     \"pairs\":{}}}",
                    sharp.len()
                ));
            }
            // TR001/TR002: what the loop-rescue pass did to this loop,
            // correlated by function + original header-block pc range
            let hb = &fa.cfg.blocks[lp.header.0 as usize];
            let in_header = |pc: u32| pc >= hb.start && pc < hb.end;
            for r in rescue
                .rescued
                .iter()
                .filter(|r| r.func == c.func && in_header(r.orig_header_pc))
            {
                diags.push(format!(
                    "{{\"code\":\"TR001\",\"transform\":\"{}\",\"target\":\"{}\",\
                     \"removed\":\"{}\"}}",
                    r.proof.transform.name(),
                    esc(&r.proof.transform.target()),
                    esc(&r.removed)
                ));
            }
            for r in rescue
                .rejected
                .iter()
                .filter(|r| r.func == c.func && in_header(r.orig_header_pc))
            {
                let witness = r.witness.as_ref().map_or(String::new(), |w| {
                    format!(",\"witness\":\"{}\"", esc(&w.to_string()))
                });
                diags.push(format!(
                    "{{\"code\":\"TR002\",\"transform\":\"{}\",\"reason\":\"{}\"{witness}}}",
                    r.transform,
                    esc(&r.reason)
                ));
            }
            let mut tier_field = String::new();
            if let Some(t) = &tiers {
                for d in t.diagnostics.iter().filter(|d| d.loop_id == c.id) {
                    let witness: Vec<String> = d
                        .witness
                        .iter()
                        .map(|w| format!("\"{}\"", esc(w)))
                        .collect();
                    diags.push(format!(
                        "{{\"code\":\"{}\",\"message\":\"{}\",\"witness\":[{}]}}",
                        d.code,
                        esc(&d.message),
                        witness.join(",")
                    ));
                }
                if let Some(tier) = t.tier_of(c.id) {
                    tier_field = format!(",\"tier\":\"{}\"", tier.name());
                }
            }
            loops.push(format!(
                "{{\"id\":{},\"func\":\"{}\",\"depth\":{},\"verdict\":\"{}\"{}{},\"diags\":[{}]}}",
                c.id.0,
                fname(c.func),
                c.depth,
                verdict,
                if reason.is_empty() {
                    String::new()
                } else {
                    format!(",\"reason\":\"{}\"", esc(&reason))
                },
                tier_field,
                diags.join(",")
            ));
        }
        // PT002: allocation sites reachable from a static variable —
        // opaque calls may touch them, so the escape analysis cannot
        // localise their stores
        let escapes: Vec<String> = pt
            .sites()
            .iter()
            .filter(|s| pt.escapes_via_static(s.id))
            .map(|s| {
                format!(
                    "{{\"code\":\"PT002\",\"site\":\"{}\",\"func\":\"{}\",\"pc\":{}}}",
                    s.id,
                    fname(s.pc.func),
                    s.pc.idx
                )
            })
            .collect();
        for r in &cands.rejected {
            loops.push(format!(
                "{{\"func\":\"{}\",\"loop\":{},\"verdict\":\"rejected\",\"reason\":\"{}\"}}",
                fname(r.func),
                r.loop_idx,
                esc(&r.reason)
            ));
        }
        let demoted = cands.demoted_count();
        total_demoted += demoted;
        total_rescued += rescue.rescued.len();

        let (tier_epochs, tier_terminal, tier_diags) = tiers.as_ref().map_or((0, false, 0), |t| {
            (t.epochs, t.all_terminal(), t.diagnostics.len())
        });
        rows.push(format!(
            "{{\"name\":\"{}\",\"verify\":{},\"kinds\":{},\"post_annotation_kinds\":{},\
             \"loops\":{},\"candidates\":{},\"rejected\":{},\"demoted\":{},\
             \"rescued\":{},\"rescue_rejected\":{},\
             \"tier_epochs\":{},\"tier_terminal\":{},\"tier_diags\":{},\
             \"loop_detail\":[{}],\"escape_diags\":[{}]}}",
            esc(b.name),
            verify,
            kinds,
            post,
            cands.total_loops(),
            cands.candidates.len(),
            cands.rejected.len(),
            demoted,
            rescue.rescued.len(),
            rescue.rejected.len(),
            tier_epochs,
            tier_terminal,
            tier_diags,
            loops.join(","),
            escapes.join(",")
        ));
    }

    println!(
        "{{\"size\":\"{:?}\",\"ok\":{},\"total_demoted\":{},\"total_rescued\":{},\
         \"benchmarks\":[{}]}}",
        size,
        all_ok,
        total_demoted,
        total_rescued,
        rows.join(",")
    );
    if !all_ok {
        std::process::exit(1);
    }
}
