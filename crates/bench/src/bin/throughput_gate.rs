//! Throughput regression gate.
//!
//! ```text
//! cargo run --release -p jrpm-bench --bin throughput-gate -- <baseline.json> <current.json>
//! cargo run --release -p jrpm-bench --bin throughput-gate -- <baseline.json> <current.json> --update
//! ```
//!
//! Diffs two `throughput` documents and exits non-zero when the server
//! regressed against the committed baseline:
//!
//! - `headline.scaling_efficiency` (server events/sec per core over
//!   direct single-core events/sec — dimensionless, so the gate is
//!   machine-speed independent) may regress at most 15 % relative;
//!   improvements always pass;
//! - per-event server cost relative to the pipeline request cost
//!   (replay p50 over pipeline p50) may grow at most 50 % — a tail
//!   check that catches the queue serializing;
//! - structural drift always fails: benchmark count, request counts,
//!   zero-event runs, dropped batches, contained panics.
//!
//! Raw events/sec are intentionally *not* gated — they track machine
//! speed, not code quality — but both documents' values are echoed so
//! the CI log carries the trajectory.
//!
//! `--update` rewrites the baseline from the current file instead of
//! comparing, for intentional changes.

use obs::json::{parse, Value};
use std::process::ExitCode;

/// Maximum relative downward drift for the scaling-efficiency headline.
const MAX_EFFICIENCY_DROP: f64 = 0.15;
/// Maximum relative upward drift of replay-p50 over pipeline-p50.
const MAX_TAIL_GROWTH: f64 = 0.50;
/// Maximum fraction of events/sec the flight recorder + tail sampler
/// may cost relative to a telemetry-off run (mirrors the bench's own
/// bound so a stale binary cannot quietly weaken the check).
const MAX_RECORDER_OVERHEAD: f64 = 0.05;

fn load(path: &str) -> Value {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("throughput-gate: cannot read {path}: {e}"));
    parse(&text).unwrap_or_else(|e| panic!("throughput-gate: {path} is not valid JSON: {e}"))
}

fn num(doc: &Value, section: &str, key: &str) -> f64 {
    doc.get(section)
        .and_then(|s| s.get(key))
        .and_then(Value::as_f64)
        .unwrap_or_else(|| panic!("throughput-gate: document is missing {section}.{key}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let update = args.iter().any(|a| a == "--update");
    let paths: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let [baseline_path, current_path] = paths[..] else {
        eprintln!("usage: throughput-gate <baseline.json> <current.json> [--update]");
        return ExitCode::FAILURE;
    };

    if update {
        let current = std::fs::read_to_string(current_path)
            .unwrap_or_else(|e| panic!("throughput-gate: cannot read {current_path}: {e}"));
        parse(&current).unwrap_or_else(|e| panic!("throughput-gate: {current_path} invalid: {e}"));
        std::fs::write(baseline_path, current)
            .unwrap_or_else(|e| panic!("throughput-gate: cannot write {baseline_path}: {e}"));
        eprintln!("throughput-gate: baseline {baseline_path} updated from {current_path}");
        return ExitCode::SUCCESS;
    }

    let baseline = load(baseline_path);
    let current = load(current_path);
    let mut failures: Vec<String> = Vec::new();

    // -- structural drift ------------------------------------------------
    for (section, key) in [
        ("config", "benchmarks"),
        ("config", "workers"),
        ("config", "clients"),
        ("config", "rounds"),
        ("replay", "requests"),
        ("pipeline", "requests"),
    ] {
        let b = num(&baseline, section, key);
        let c = num(&current, section, key);
        if b != c {
            failures.push(format!(
                "{section}.{key} changed shape: baseline {b}, current {c} — \
                 regenerate the baseline with --update"
            ));
        }
    }
    for (section, key, what) in [
        ("replay", "events", "the replay phase traced no events"),
        (
            "direct",
            "events",
            "the calibration replay traced no events",
        ),
    ] {
        if num(&current, section, key) <= 0.0 {
            failures.push(format!("{section}.{key} is zero: {what}"));
        }
    }
    for key in ["dropped_batches", "contained_panics"] {
        let c = num(&current, "headline", key);
        if c > 0.0 {
            failures.push(format!("headline.{key} = {c} — the server lost work"));
        }
    }

    // -- recorder overhead: telemetry must stay out of the hot path ------
    let c_overhead = num(&current, "headline", "recorder_overhead_frac");
    if c_overhead > MAX_RECORDER_OVERHEAD {
        failures.push(format!(
            "recorder_overhead_frac {:.1}% exceeds the {:.0}% budget — the flight \
             recorder or tail sampler got expensive",
            c_overhead * 100.0,
            MAX_RECORDER_OVERHEAD * 100.0
        ));
    }

    // -- the gated headline: normalized per-core throughput --------------
    let b_eff = num(&baseline, "headline", "scaling_efficiency");
    let c_eff = num(&current, "headline", "scaling_efficiency");
    if !b_eff.is_finite() || b_eff <= 0.0 {
        failures.push(format!(
            "baseline scaling_efficiency {b_eff} is not positive — refresh it with --update"
        ));
    } else if c_eff < b_eff * (1.0 - MAX_EFFICIENCY_DROP) {
        failures.push(format!(
            "scaling_efficiency regressed {:.0}% (baseline {b_eff:.3}, current {c_eff:.3}, \
             tolerance {:.0}%)",
            (b_eff - c_eff) / b_eff * 100.0,
            MAX_EFFICIENCY_DROP * 100.0
        ));
    }

    // -- tail check: replay latency relative to pipeline latency ---------
    let rel = |doc: &Value| {
        let replay = num(doc, "replay", "latency_p50_nanos");
        let pipe = num(doc, "pipeline", "latency_p50_nanos");
        if pipe > 0.0 {
            replay / pipe
        } else {
            0.0
        }
    };
    let (b_rel, c_rel) = (rel(&baseline), rel(&current));
    if b_rel > 0.0 && c_rel > b_rel * (1.0 + MAX_TAIL_GROWTH) {
        failures.push(format!(
            "replay/pipeline p50 latency ratio grew {:.0}% (baseline {b_rel:.3}, \
             current {c_rel:.3}, tolerance {:.0}%)",
            (c_rel - b_rel) / b_rel * 100.0,
            MAX_TAIL_GROWTH * 100.0
        ));
    }

    eprintln!(
        "throughput-gate: events/sec per core {:.0} -> {:.0} (informational), \
         scaling efficiency {b_eff:.3} -> {c_eff:.3} (gated at -{:.0}%)",
        num(&baseline, "headline", "events_per_sec_per_core"),
        num(&current, "headline", "events_per_sec_per_core"),
        MAX_EFFICIENCY_DROP * 100.0
    );
    if failures.is_empty() {
        eprintln!("throughput-gate: OK");
        ExitCode::SUCCESS
    } else {
        eprintln!("throughput-gate: FAILED — {} violation(s):", failures.len());
        for f in &failures {
            eprintln!("  {f}");
        }
        eprintln!(
            "(intentional change? refresh with: throughput-gate <baseline> <current> --update)"
        );
        ExitCode::FAILURE
    }
}
