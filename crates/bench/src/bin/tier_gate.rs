//! Online tier-runtime regression gate.
//!
//! ```text
//! cargo run --release -p jrpm-bench --bin tier-gate -- <baseline.json>
//! cargo run --release -p jrpm-bench --bin tier-gate -- <baseline.json> --update
//! ```
//!
//! Recomputes the per-benchmark tier-controller snapshot
//! (`tables::tier_rows` at the small data size — interpretation is
//! deterministic, so the snapshot is byte-exact) and compares it
//! against the committed baseline:
//!
//! - any numeric difference per benchmark fails (the snapshot is the
//!   PR's record of exactly how the per-loop state machines converge:
//!   epochs, generations, demotions, revisions, flips);
//! - per benchmark, every loop must reach a terminal tier within the
//!   epoch budget (`terminal`) and the online Selected set must equal
//!   the offline batch selection (`matches_offline`) — the online
//!   schedule is a refactoring, not a re-modelling;
//! - the counting tier must stay cheap: the wall-clock overhead of a
//!   hot-location-hooked interpretation over a plain one, min-of-3
//!   trials on representative benchmarks, must stay under 2.0x.
//!
//! `--update` rewrites the baseline from the fresh computation, for
//! intentional controller or benchmark changes. The overhead check is
//! a live measurement, never part of the committed baseline.

use benchsuite::DataSize;
use jrpm_bench::tables::{tier_json, tier_rows};
use obs::json::{parse, Value};
use std::collections::BTreeMap;
use std::process::ExitCode;
use std::time::Instant;
use tvm::{CostModel, HotLocations, Interp, NullSink};

/// Pinned bound on the counting-tier interpretation overhead: a
/// hooked epoch may cost at most this multiple of a plain run.
const OVERHEAD_BOUND: f64 = 2.0;

/// Smallest wall-clock nanos over `trials` runs of `f`.
fn min_nanos(trials: u32, mut f: impl FnMut() -> u64) -> u64 {
    (0..trials).map(|_| f()).min().unwrap_or(u64::MAX)
}

/// Worst hooked-vs-plain interpretation slowdown over a few
/// representative benchmarks, each min-of-3 wall-clock trials.
fn counting_overhead() -> f64 {
    let mut worst = 0.0f64;
    for name in ["Huffman", "LuFactor", "compress"] {
        let bench = benchsuite::by_name(name).expect("benchmark exists");
        let program = (bench.build)(DataSize::Small);
        let cands = cfgir::extract_candidates(&program);
        let plain = min_nanos(3, || {
            let t = Instant::now();
            Interp::run_to_state(
                &program,
                &mut NullSink,
                CostModel::default(),
                Interp::DEFAULT_FUEL,
            )
            .expect("plain run");
            t.elapsed().as_nanos() as u64
        });
        let hooked = min_nanos(3, || {
            // same hook population the controller's counting tier uses:
            // every candidate loop header is a registered location
            let mut hot = HotLocations::for_program(&program);
            for c in &cands.candidates {
                let fa = &cands.functions[c.func.0 as usize];
                let lp = &fa.forest.loops[c.loop_idx];
                hot.register(c.func.0, fa.cfg.blocks[lp.header.0 as usize].start);
            }
            let t = Instant::now();
            Interp::run_to_state_hooked(
                &program,
                &mut NullSink,
                CostModel::default(),
                Interp::DEFAULT_FUEL,
                &mut hot,
            )
            .expect("hooked run");
            t.elapsed().as_nanos() as u64
        });
        worst = worst.max(hooked as f64 / plain.max(1) as f64);
    }
    worst
}

/// Flattens one benchmark object into `field -> value`.
fn fields(bench: &Value) -> BTreeMap<String, u64> {
    let mut out = BTreeMap::new();
    for key in [
        "candidates",
        "epochs",
        "counting_epochs",
        "generations",
        "selected",
        "demoted_static",
        "demoted_dynamic",
        "revisions",
        "flips",
        "diags",
        "terminal",
        "matches_offline",
    ] {
        if let Some(v) = bench.get(key).and_then(Value::as_u64) {
            out.insert(key.to_string(), v);
        }
    }
    out
}

fn benchmarks(doc: &Value) -> BTreeMap<String, BTreeMap<String, u64>> {
    let mut out = BTreeMap::new();
    let arr = doc
        .get("benchmarks")
        .and_then(Value::as_arr)
        .expect("document has a benchmarks array");
    for b in arr {
        let name = b
            .get("name")
            .and_then(Value::as_str)
            .expect("benchmark has a name");
        out.insert(name.to_string(), fields(b));
    }
    out
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let update = args.iter().any(|a| a == "--update");
    let paths: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let [baseline_path] = paths[..] else {
        eprintln!("usage: tier-gate <baseline.json> [--update]");
        return ExitCode::FAILURE;
    };

    let rows = tier_rows(DataSize::Small);
    let current_json = tier_json(&rows);

    let mut failures: Vec<String> = Vec::new();
    for r in &rows {
        if !r.terminal {
            failures.push(format!(
                "{}: a loop never reached a terminal tier within {} epochs",
                r.name, r.epochs
            ));
        }
        if !r.matches_offline {
            failures.push(format!(
                "{}: online Selected set diverges from the offline batch selection",
                r.name
            ));
        }
        if r.selected + r.demoted_static + r.demoted_dynamic != r.candidates {
            failures.push(format!(
                "{}: terminal tiers ({} + {} + {}) do not partition the {} candidates",
                r.name, r.selected, r.demoted_static, r.demoted_dynamic, r.candidates
            ));
        }
    }
    let overhead = counting_overhead();
    if overhead >= OVERHEAD_BOUND {
        failures.push(format!(
            "counting-tier overhead {overhead:.2}x breaches the {OVERHEAD_BOUND:.1}x bound"
        ));
    }

    if update {
        if !failures.is_empty() {
            eprintln!("tier-gate: refusing to update a baseline that violates invariants:");
            for f in &failures {
                eprintln!("  {f}");
            }
            return ExitCode::FAILURE;
        }
        std::fs::write(baseline_path, &current_json)
            .unwrap_or_else(|e| panic!("tier-gate: cannot write {baseline_path}: {e}"));
        eprintln!(
            "tier-gate: baseline {baseline_path} updated ({} benchmarks, \
             counting overhead {overhead:.2}x)",
            rows.len()
        );
        return ExitCode::SUCCESS;
    }

    let baseline_text = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| panic!("tier-gate: cannot read {baseline_path}: {e}"));
    let baseline = parse(&baseline_text)
        .unwrap_or_else(|e| panic!("tier-gate: {baseline_path} is not valid JSON: {e}"));
    let current = parse(&current_json).expect("fresh snapshot is valid JSON");
    let base_benches = benchmarks(&baseline);
    let cur_benches = benchmarks(&current);

    for name in base_benches.keys() {
        if !cur_benches.contains_key(name) {
            failures.push(format!("benchmark {name} disappeared"));
        }
    }
    for (name, cur) in &cur_benches {
        let Some(base) = base_benches.get(name) else {
            failures.push(format!(
                "benchmark {name} is new — regenerate the baseline with --update"
            ));
            continue;
        };
        for (field, cv) in cur {
            let bv = base.get(field).copied();
            if bv != Some(*cv) {
                failures.push(format!(
                    "{name}: {field} changed (baseline {}, current {cv})",
                    bv.map_or("absent".into(), |v| v.to_string())
                ));
            }
        }
        // a field the current run stopped emitting is its own failure
        // mode, not a silent pass
        for (field, bv) in base {
            if !cur.contains_key(field) {
                failures.push(format!(
                    "{name}: {field} missing from the current run (baseline {bv})"
                ));
            }
        }
    }

    if failures.is_empty() {
        eprintln!(
            "tier-gate: OK — {} benchmark(s) match the baseline \
             (counting overhead {overhead:.2}x, bound {OVERHEAD_BOUND:.1}x)",
            rows.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("tier-gate: FAILED — {} violation(s):", failures.len());
        for f in &failures {
            eprintln!("  {f}");
        }
        eprintln!("(intentional change? refresh with: tier-gate <baseline> --update)");
        ExitCode::FAILURE
    }
}
