//! Loop-rescue regression gate.
//!
//! ```text
//! cargo run --release -p jrpm-bench --bin rescue-gate -- <baseline.json>
//! cargo run --release -p jrpm-bench --bin rescue-gate -- <baseline.json> --update
//! ```
//!
//! Recomputes the per-benchmark loop-rescue snapshot
//! (`tables::rescue_rows` at the small data size — the transform and
//! verifier passes are pure static analysis, and the selection runs
//! are deterministic interpretation, so the snapshot is byte-exact)
//! and compares it against the committed baseline:
//!
//! - any numeric difference per benchmark fails (the snapshot is the
//!   PR's record of exactly which loops the transforms rescue and
//!   which rescues pay off at selection);
//! - per benchmark, `demoted_after <= demoted_before` must hold —
//!   rescue may only shrink the demoted set — and the per-transform
//!   counts must partition the rescued total;
//! - suite-wide, at least one loop must be rescued and at least one
//!   previously-demoted loop must clear dynamic selection: the rescue
//!   pass has to earn its place in the pipeline.
//!
//! `--update` rewrites the baseline from the fresh computation, for
//! intentional transform or benchmark changes.

use benchsuite::DataSize;
use jrpm_bench::tables::{rescue_json, rescue_rows};
use obs::json::{parse, Value};
use std::collections::BTreeMap;
use std::process::ExitCode;

/// Flattens one benchmark object into `field -> value`.
fn fields(bench: &Value) -> BTreeMap<String, u64> {
    let mut out = BTreeMap::new();
    for key in [
        "demoted_before",
        "demoted_after",
        "rescued",
        "reductions",
        "privatizations",
        "distributions",
        "rejected",
        "selected_gain",
    ] {
        if let Some(v) = bench.get(key).and_then(Value::as_u64) {
            out.insert(key.to_string(), v);
        }
    }
    out
}

fn benchmarks(doc: &Value) -> BTreeMap<String, BTreeMap<String, u64>> {
    let mut out = BTreeMap::new();
    let arr = doc
        .get("benchmarks")
        .and_then(Value::as_arr)
        .expect("document has a benchmarks array");
    for b in arr {
        let name = b
            .get("name")
            .and_then(Value::as_str)
            .expect("benchmark has a name");
        out.insert(name.to_string(), fields(b));
    }
    out
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let update = args.iter().any(|a| a == "--update");
    let paths: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let [baseline_path] = paths[..] else {
        eprintln!("usage: rescue-gate <baseline.json> [--update]");
        return ExitCode::FAILURE;
    };

    let rows = rescue_rows(DataSize::Small);
    let current_json = rescue_json(&rows);

    let mut failures: Vec<String> = Vec::new();
    for r in &rows {
        if r.demoted_after > r.demoted_before {
            failures.push(format!(
                "{}: rescue grew the demoted set ({} -> {})",
                r.name, r.demoted_before, r.demoted_after
            ));
        }
        if r.rescued != r.reductions + r.privatizations + r.distributions {
            failures.push(format!(
                "{}: transform counts ({} + {} + {}) do not partition the rescued \
                 total {}",
                r.name, r.reductions, r.privatizations, r.distributions, r.rescued
            ));
        }
    }
    let total_rescued: usize = rows.iter().map(|r| r.rescued).sum();
    if total_rescued == 0 {
        failures.push("suite-wide rescued is 0: the transforms lift nothing".into());
    }
    let total_gain: usize = rows.iter().map(|r| r.selected_gain).sum();
    if total_gain == 0 {
        failures
            .push("suite-wide selected_gain is 0: no rescued loop clears dynamic selection".into());
    }

    if update {
        if !failures.is_empty() {
            eprintln!("rescue-gate: refusing to update a baseline that violates invariants:");
            for f in &failures {
                eprintln!("  {f}");
            }
            return ExitCode::FAILURE;
        }
        std::fs::write(baseline_path, &current_json)
            .unwrap_or_else(|e| panic!("rescue-gate: cannot write {baseline_path}: {e}"));
        eprintln!(
            "rescue-gate: baseline {baseline_path} updated ({} benchmarks)",
            rows.len()
        );
        return ExitCode::SUCCESS;
    }

    let baseline_text = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| panic!("rescue-gate: cannot read {baseline_path}: {e}"));
    let baseline = parse(&baseline_text)
        .unwrap_or_else(|e| panic!("rescue-gate: {baseline_path} is not valid JSON: {e}"));
    let current = parse(&current_json).expect("fresh snapshot is valid JSON");
    let base_benches = benchmarks(&baseline);
    let cur_benches = benchmarks(&current);

    for name in base_benches.keys() {
        if !cur_benches.contains_key(name) {
            failures.push(format!("benchmark {name} disappeared"));
        }
    }
    for (name, cur) in &cur_benches {
        let Some(base) = base_benches.get(name) else {
            failures.push(format!(
                "benchmark {name} is new — regenerate the baseline with --update"
            ));
            continue;
        };
        for (field, cv) in cur {
            let bv = base.get(field).copied();
            if bv != Some(*cv) {
                failures.push(format!(
                    "{name}: {field} changed (baseline {}, current {cv})",
                    bv.map_or("absent".into(), |v| v.to_string())
                ));
            }
        }
    }

    if failures.is_empty() {
        eprintln!(
            "rescue-gate: OK — {} benchmark(s) match the baseline \
             ({total_rescued} rescued, {total_gain} newly selected)",
            rows.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("rescue-gate: FAILED — {} violation(s):", failures.len());
        for f in &failures {
            eprintln!("  {f}");
        }
        eprintln!("(intentional change? refresh with: rescue-gate <baseline> --update)");
        ExitCode::FAILURE
    }
}
