//! Live-telemetry CI gate.
//!
//! ```text
//! cargo run --release -p jrpm-bench --bin live-gate
//! ```
//!
//! Exercises the serving stack's telemetry end to end and exits
//! non-zero on any violation:
//!
//! 1. **Healthy window** — a multi-shard server serves a mixed
//!    replay + pipeline workload; the `/metrics` scrape must parse and
//!    agree sample-for-sample with `Registry::snapshot()`, `/healthz`
//!    must report every shard alive, and [`obs::live::evaluate_alerts`]
//!    over the window must fire **nothing**.
//! 2. **Fault window** — a forced worker panic (a tracer table size
//!    that is not a power of two) must contain, attach a
//!    [`FlightDump`] that round-trips through its JSON form, leave the
//!    same dump on disk, and make the alert evaluator fire the
//!    `panics` rule. A rule set that never fires cannot pass: this
//!    half is the negative control for the healthy half.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::process::ExitCode;

use benchsuite::{all, DataSize};
use jrpm::pipeline::PipelineConfig;
use obs::expo;
use obs::live::{alerts_json, evaluate_alerts, AlertConfig};
use obs::FlightDump;
use serve::{ProfileRequest, ServeError, Server, ServerConfig};
use test_tracer::TracerConfig;
use tvm::record::Recording;

/// Requests driven through the healthy server — enough that the
/// starvation rule is live (it needs `starvation_min_requests`) and
/// every shard claims work.
const HEALTHY_REQUESTS: usize = 64;

/// One blocking HTTP/1.0 GET; returns `(status_line, body)`.
fn get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("endpoint accepts");
    stream
        .write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes())
        .expect("request writes");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("response reads");
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .expect("response has a head/body split");
    (
        head.lines().next().unwrap_or("").to_string(),
        body.to_string(),
    )
}

fn healthy_window(failures: &mut Vec<String>) {
    let server = Server::start(ServerConfig {
        workers: 2,
        queue_depth: 8,
        ..ServerConfig::default()
    });
    let baseline = server.registry().snapshot();

    // mixed workload: cheap replays to spread across shards, plus one
    // real pipeline request so stage traces flow into the sampler
    let bench = &all()[0];
    server
        .profile(ProfileRequest::Pipeline {
            program: (bench.build)(DataSize::Small),
            cfg: PipelineConfig::default(),
        })
        .map(|_| ())
        .unwrap_or_else(|e| failures.push(format!("pipeline request failed: {e}")));
    let tickets: Vec<_> = (0..HEALTHY_REQUESTS)
        .map(|_| {
            server
                .submit(ProfileRequest::Replay {
                    recording: Recording { events: Vec::new() },
                    tracer: TracerConfig::default(),
                })
                .expect("queue is open")
        })
        .collect();
    for t in tickets {
        if let Err(e) = t.wait() {
            failures.push(format!("healthy replay failed: {e}"));
        }
    }

    // scrape endpoints against the quiesced registry
    let endpoint = server.serve_http("127.0.0.1:0").expect("endpoint binds");
    let (status, body) = get(endpoint.addr(), "/metrics");
    if !status.contains("200") {
        failures.push(format!("/metrics answered {status}"));
    }
    match expo::parse_exposition(&body) {
        Ok(parsed) => {
            for d in expo::diff_against_snapshot(&parsed, &server.registry().snapshot()) {
                failures.push(format!("/metrics disagrees with the registry: {d}"));
            }
        }
        Err(e) => failures.push(format!("/metrics does not parse: {e}")),
    }
    let (status, body) = get(endpoint.addr(), "/healthz");
    if !status.contains("200") || !body.contains("\"status\": \"ok\"") {
        failures.push(format!("/healthz unhealthy: {status} {body}"));
    }
    endpoint.stop();

    // the window itself: a healthy run fires no alert
    let alerts = evaluate_alerts(
        &baseline,
        &server.registry().snapshot(),
        &AlertConfig::default(),
    );
    if !alerts.is_empty() {
        failures.push(format!(
            "healthy window fired {} alert(s): {}",
            alerts.len(),
            alerts_json(&alerts)
        ));
    }
    server.shutdown();
}

fn fault_window(failures: &mut Vec<String>) {
    let dir = std::env::temp_dir().join(format!("jrpm-live-gate-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let server = Server::start(ServerConfig {
        workers: 1,
        queue_depth: 4,
        dump_dir: Some(dir.clone()),
        ..ServerConfig::default()
    });
    let baseline = server.registry().snapshot();

    // a warm-up request so the flight dump has history to carry
    let _ = server.profile(ProfileRequest::Replay {
        recording: Recording { events: Vec::new() },
        tracer: TracerConfig::default(),
    });
    let result = server.profile(ProfileRequest::Replay {
        recording: Recording { events: Vec::new() },
        tracer: TracerConfig {
            ld_table_entries: 3, // not a power of two: panics in the tracer
            ..TracerConfig::default()
        },
    });
    match result {
        Err(ServeError::WorkerPanicked {
            dump: Some(dump), ..
        }) => {
            match FlightDump::parse(&dump.to_json()) {
                Ok(parsed) if parsed == *dump => {}
                Ok(_) => failures.push("flight dump JSON round-trip lost data".to_string()),
                Err(e) => failures.push(format!("flight dump JSON does not parse: {e}")),
            }
            let on_disk = dir.join(format!(
                "flightdump-w{}-r{}.json",
                dump.worker, dump.request_id
            ));
            match std::fs::read_to_string(&on_disk) {
                Ok(text) => match FlightDump::parse(&text) {
                    Ok(parsed) if parsed == *dump => {}
                    _ => failures.push(format!(
                        "{} does not parse back to the attached dump",
                        on_disk.display()
                    )),
                },
                Err(e) => failures.push(format!("{} unreadable: {e}", on_disk.display())),
            }
        }
        Err(ServeError::WorkerPanicked { dump: None, .. }) => {
            failures.push("worker panic carried no flight dump".to_string());
        }
        other => failures.push(format!(
            "forced panic was not contained as WorkerPanicked: {other:?}"
        )),
    }

    // negative control: the evaluator must notice the panic
    let alerts = evaluate_alerts(
        &baseline,
        &server.registry().snapshot(),
        &AlertConfig::default(),
    );
    if !alerts.iter().any(|a| a.rule == "panics") {
        failures.push(format!(
            "fault window did not fire the panics rule (fired: {})",
            alerts_json(&alerts)
        ));
    }
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

fn main() -> ExitCode {
    let mut failures: Vec<String> = Vec::new();
    healthy_window(&mut failures);
    fault_window(&mut failures);
    if failures.is_empty() {
        eprintln!(
            "live-gate: OK — healthy window fired no alerts, scrape agreed with the \
             registry, and the forced panic left a parseable flight dump"
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("live-gate: FAILED — {} violation(s):", failures.len());
        for f in &failures {
            eprintln!("  {f}");
        }
        ExitCode::FAILURE
    }
}
