//! Criterion micro-benchmarks of the analysis layer: event throughput
//! of the hardware tracer model against the software oracle, and
//! interpreter throughput with and without annotations.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use test_tracer::{SoftwareTracer, TestTracer, TracerConfig};
use tvm::isa::{FuncId, LoopId, Pc};
use tvm::trace::TraceSink;
use tvm::{Interp, NullSink};

/// A synthetic event stream: a loop of `iters` iterations, each with
/// `per_iter` heap accesses over a 256-line working set plus one
/// local-variable update.
fn drive(sink: &mut dyn TraceSink, iters: u64, per_iter: u64) {
    let pc = Pc {
        func: FuncId(0),
        idx: 0,
    };
    let l = LoopId(0);
    let mut now = 0u64;
    sink.loop_enter(l, 2, 1, now);
    for i in 0..iters {
        for k in 0..per_iter {
            now += 3;
            let addr = 0x4000 + (((i * 7 + k * 13) % 1024) * 8) as u32;
            if k % 3 == 0 {
                sink.heap_store(addr, now, pc);
            } else {
                sink.heap_load(addr, now, pc);
            }
        }
        now += 2;
        sink.local_store(0, 1, now, pc);
        sink.local_load(0, 1, now + 1, pc);
        now += 2;
        sink.loop_iter(l, now);
    }
    sink.loop_exit(l, now + 1);
}

fn bench_event_throughput(c: &mut Criterion) {
    let iters = 2_000u64;
    let per_iter = 16u64;
    let events = iters * (per_iter + 3);
    let mut g = c.benchmark_group("event_throughput");
    g.throughput(Throughput::Elements(events));
    g.bench_function("test_tracer_hw_model", |b| {
        b.iter(|| {
            let mut t = TestTracer::new(TracerConfig::default());
            drive(&mut t, iters, per_iter);
            black_box(t.into_profile().events)
        })
    });
    g.bench_function("software_oracle", |b| {
        b.iter(|| {
            let mut t = SoftwareTracer::new();
            drive(&mut t, iters, per_iter);
            black_box(t.into_profile().events)
        })
    });
    g.finish();
}

fn bench_replay_real_stream(c: &mut Criterion) {
    // replay Huffman's real event stream straight into the tracer,
    // isolating analysis cost from interpretation cost
    let bench = benchsuite::by_name("Huffman").unwrap();
    let program = (bench.build)(benchsuite::DataSize::Small);
    let cands = cfgir::extract_candidates(&program);
    let annotated = jrpm::annotate(&program, &cands, &jrpm::AnnotateOptions::profiling()).unwrap();
    let mut rec = tvm::record::RecordingSink::new();
    Interp::run(&annotated, &mut rec).unwrap();
    let recording = rec.into_recording();

    let mut g = c.benchmark_group("replay_huffman_stream");
    g.throughput(Throughput::Elements(recording.len() as u64));
    g.bench_function("into_test_tracer", |b| {
        b.iter(|| {
            let mut t = TestTracer::new(TracerConfig::default());
            t.set_local_masks(cands.tracked_masks());
            recording.replay(&mut t);
            black_box(t.into_profile().events)
        })
    });
    g.finish();
}

fn bench_interpreter(c: &mut Criterion) {
    let bench = benchsuite::by_name("Huffman").unwrap();
    let program = (bench.build)(benchsuite::DataSize::Small);
    let cands = cfgir::extract_candidates(&program);
    let annotated = jrpm::annotate(&program, &cands, &jrpm::AnnotateOptions::profiling()).unwrap();

    let mut g = c.benchmark_group("interpreter");
    g.bench_function("plain_sequential", |b| {
        b.iter(|| {
            let r = Interp::run(black_box(&program), &mut NullSink).unwrap();
            black_box(r.cycles)
        })
    });
    g.bench_function("annotated_with_tracer", |b| {
        b.iter(|| {
            let mut tracer = TestTracer::new(TracerConfig::default());
            tracer.set_local_masks(cands.tracked_masks());
            let r = Interp::run(black_box(&annotated), &mut tracer).unwrap();
            black_box(r.cycles)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_event_throughput,
    bench_replay_real_stream,
    bench_interpreter
);
criterion_main!(benches);
