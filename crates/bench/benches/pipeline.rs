//! Criterion benchmarks of the Jrpm pipeline stages on representative
//! Table 6 workloads.

use benchsuite::DataSize;
use criterion::{criterion_group, criterion_main, Criterion};
use hydra_sim::{simulate_all, TlsConfig, TlsTraceCollector};
use jrpm::pipeline::{run_pipeline, PipelineConfig};
use std::hint::black_box;
use test_tracer::{select, EstimatorParams, TestTracer, TracerConfig};
use tvm::Interp;

fn bench_stages(c: &mut Criterion) {
    let bench = benchsuite::by_name("Huffman").unwrap();
    let program = (bench.build)(DataSize::Small);
    let cands = cfgir::extract_candidates(&program);
    let annotated = jrpm::annotate(&program, &cands, &jrpm::AnnotateOptions::profiling()).unwrap();

    let mut g = c.benchmark_group("stages");
    g.bench_function("extract_candidates", |b| {
        b.iter(|| black_box(cfgir::extract_candidates(black_box(&program))).total_loops())
    });
    g.bench_function("annotate", |b| {
        b.iter(|| {
            black_box(jrpm::annotate(
                black_box(&program),
                &cands,
                &jrpm::AnnotateOptions::profiling(),
            ))
            .unwrap()
            .instruction_count()
        })
    });
    g.bench_function("profile_run", |b| {
        b.iter(|| {
            let mut tracer = TestTracer::new(TracerConfig::default());
            tracer.set_local_masks(cands.tracked_masks());
            let r = Interp::run(&annotated, &mut tracer).unwrap();
            black_box((r.cycles, tracer.into_profile().events))
        })
    });
    // selection on a pre-computed profile
    let mut tracer = TestTracer::new(TracerConfig::default());
    tracer.set_local_masks(cands.tracked_masks());
    let prof_run = Interp::run(&annotated, &mut tracer).unwrap();
    let profile = tracer.into_profile();
    g.bench_function("select_eq2", |b| {
        b.iter(|| {
            black_box(select(
                black_box(&profile),
                &EstimatorParams::default(),
                prof_run.cycles,
            ))
            .chosen
            .len()
        })
    });
    // TLS simulation on collected traces
    let chosen: Vec<_> = select(&profile, &EstimatorParams::default(), prof_run.cycles)
        .chosen
        .iter()
        .map(|x| x.loop_id)
        .collect();
    let spec = jrpm::annotate(
        &program,
        &cands,
        &jrpm::AnnotateOptions::only(chosen.clone()),
    )
    .unwrap();
    let mut collector = TlsTraceCollector::new(chosen);
    collector.set_local_masks(cands.tracked_masks());
    Interp::run(&spec, &mut collector).unwrap();
    g.bench_function("hydra_simulate", |b| {
        b.iter(|| black_box(simulate_all(&collector.entries, &TlsConfig::default())).tls_cycles)
    });
    g.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline_end_to_end");
    g.sample_size(10);
    for name in ["Huffman", "LuFactor", "decJpeg"] {
        let bench = benchsuite::by_name(name).unwrap();
        let program = (bench.build)(DataSize::Small);
        g.bench_function(name, |b| {
            b.iter(|| {
                black_box(run_pipeline(&program, &PipelineConfig::default()).unwrap())
                    .selection
                    .chosen
                    .len()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_stages, bench_end_to_end);
criterion_main!(benches);
