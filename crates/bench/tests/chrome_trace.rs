//! Acceptance test for the unified observability layer: a traced
//! quick-smoke run must export valid Chrome trace-event JSON with
//! properly nested pipeline-stage spans, per-sink counter tracks, and
//! per-candidate tracer series whose analyzer-cycle attribution sums
//! to the pipeline total.

use benchsuite::DataSize;
use jrpm::pipeline::{ObsConfig, PipelineConfig};
use jrpm_bench::runner::run_benchmark_with;
use jrpm_bench::tables;
use obs::json::{parse, Value};
use std::collections::BTreeMap;

#[test]
fn traced_quick_smoke_exports_wellformed_chrome_json() {
    let bench = benchsuite::by_name("Huffman").expect("suite has Huffman");
    let cfg = PipelineConfig {
        obs: ObsConfig {
            trace: true,
            sample_every: 256,
        },
        ..PipelineConfig::default()
    };
    let r = run_benchmark_with(&bench, DataSize::Small, &cfg).expect("benchmark runs");
    let total_events = r.report.profile.events;
    let recorded_events = r.report.obs.recorded_events;
    // the bus carries every event kind; the analyzer ticks only on the
    // kinds it handles (call markers pass it by), so bus ≥ analyzer
    assert!(recorded_events >= total_events);
    assert!(total_events > 0);

    let results = vec![r];
    let doc = tables::chrome_trace(&results);
    let parsed = parse(&doc).expect("trace output is valid JSON");
    let events = parsed
        .get("traceEvents")
        .and_then(Value::as_arr)
        .expect("traceEvents array");
    assert!(!events.is_empty(), "traced run produced no events");

    // Walk every event once: check B/E nesting per (pid, tid) like
    // balanced parentheses, collect thread names, and keep the final
    // value of every counter series.
    let mut stacks: BTreeMap<(u64, u64), Vec<String>> = BTreeMap::new();
    let mut begins: BTreeMap<(u64, u64), Vec<String>> = BTreeMap::new();
    let mut thread_names: BTreeMap<(u64, u64), String> = BTreeMap::new();
    let mut final_counters: BTreeMap<(u64, u64, String), u64> = BTreeMap::new();
    let mut last_ts: BTreeMap<(u64, u64), f64> = BTreeMap::new();
    for e in events {
        let ph = e.get("ph").and_then(Value::as_str).expect("ph");
        let pid = e.get("pid").and_then(Value::as_u64).expect("pid");
        let tid = e.get("tid").and_then(Value::as_u64).expect("tid");
        let name = e
            .get("name")
            .and_then(Value::as_str)
            .expect("name")
            .to_string();
        if ph == "M" {
            if name == "thread_name" {
                let n = e
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Value::as_str)
                    .expect("thread_name args.name");
                thread_names.insert((pid, tid), n.to_string());
            }
            continue;
        }
        let ts = e.get("ts").and_then(Value::as_f64).expect("ts");
        let prev = last_ts.entry((pid, tid)).or_insert(0.0);
        assert!(*prev <= ts, "timestamps monotone within a track");
        *prev = ts;
        match ph {
            "B" => {
                stacks.entry((pid, tid)).or_default().push(name.clone());
                begins.entry((pid, tid)).or_default().push(name);
            }
            "E" => {
                let top = stacks.get_mut(&(pid, tid)).and_then(Vec::pop);
                assert_eq!(
                    top.as_deref(),
                    Some(name.as_str()),
                    "every E closes the innermost open B"
                );
            }
            "C" => {
                let v = e
                    .get("args")
                    .and_then(|a| a.get("value"))
                    .and_then(Value::as_u64)
                    .expect("counter value");
                final_counters.insert((pid, tid, name), v);
            }
            "i" => {}
            other => panic!("unexpected phase {other:?}"),
        }
    }
    for (k, stack) in &stacks {
        assert!(stack.is_empty(), "unclosed span on track {k:?}: {stack:?}");
    }

    // the pipeline's wall track (pid 1 = first process, wall domain)
    // wraps every stage span in one "run" span
    let pipeline = thread_names
        .iter()
        .find(|(_, n)| n.as_str() == "pipeline")
        .map(|(k, _)| *k)
        .expect("a pipeline track");
    assert_eq!(pipeline.0, 1, "pipeline spans live in the wall pid");
    let stage_begins = &begins[&pipeline];
    assert_eq!(stage_begins[0], "run");
    for want in ["extract", "annotate", "record", "select"] {
        assert!(
            stage_begins.iter().any(|s| s == want),
            "missing stage span {want} in {stage_begins:?}"
        );
    }

    // per-sink counter track with cumulative event totals
    let sink = thread_names
        .iter()
        .find(|(_, n)| n.as_str() == "sink:test-tracer")
        .map(|(k, _)| *k)
        .expect("a sink:test-tracer track");
    assert_eq!(
        final_counters.get(&(sink.0, sink.1, "events".to_string())),
        Some(&recorded_events),
        "sink counter track ends at the recorded-event total"
    );

    // the tracer self-profiling track lives in the cycles pid and its
    // per-candidate analyzer series sum to the pipeline total
    let tracer = thread_names
        .iter()
        .find(|(_, n)| n.as_str() == "tracer")
        .map(|(k, _)| *k)
        .expect("a tracer track");
    assert_eq!(tracer.0, 2, "tracer series live in the cycles pid");
    let attributed: u64 = final_counters
        .iter()
        .filter(|((pid, tid, series), _)| (*pid, *tid) == tracer && series.starts_with("analyzer."))
        .map(|(_, &v)| v)
        .sum();
    assert_eq!(
        attributed, total_events,
        "per-candidate analyzer-cycle attribution sums to the pipeline total"
    );
    assert!(
        final_counters.contains_key(&(tracer.0, tracer.1, "fifo_depth".to_string())),
        "tracer FIFO depth series present"
    );
}

#[test]
fn untraced_results_export_an_empty_event_list() {
    let bench = benchsuite::by_name("Huffman").expect("suite has Huffman");
    let r = run_benchmark_with(&bench, DataSize::Small, &PipelineConfig::default())
        .expect("benchmark runs");
    let doc = tables::chrome_trace(&[r]);
    let parsed = parse(&doc).expect("valid JSON");
    assert_eq!(
        parsed
            .get("traceEvents")
            .and_then(Value::as_arr)
            .map(<[Value]>::len),
        Some(0),
        "no spans are recorded unless tracing was requested"
    );
}
