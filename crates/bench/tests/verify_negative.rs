//! Negative verifier tests: take real, valid benchsuite bytecode and
//! break it in targeted ways — the structural verifier and the kind
//! checker must each reject the mutation with the right error.

use benchsuite::DataSize;
use tvm::isa::Instr;
use tvm::program::Program;
use tvm::verify::{verify, verify_kinds};
use tvm::VmError;

fn build(name: &str) -> Program {
    let bench = benchsuite::by_name(name).expect("suite benchmark exists");
    (bench.build)(DataSize::Small)
}

/// Every suite program is valid as built: both verifiers accept it.
#[test]
fn suite_is_valid_before_mutation() {
    for b in benchsuite::all() {
        let p = (b.build)(DataSize::Small);
        verify(&p).unwrap_or_else(|e| panic!("{}: {e}", b.name));
        verify_kinds(&p).unwrap_or_else(|e| panic!("{}: {e}", b.name));
    }
}

/// Redirecting a branch past the end of its function must be caught as
/// a bad branch target.
#[test]
fn branch_target_out_of_range_is_rejected() {
    let mut p = build("Huffman");
    let (fid, at) = p
        .functions
        .iter()
        .enumerate()
        .find_map(|(fi, f)| {
            f.code
                .iter()
                .position(|i| i.branch_target().is_some())
                .map(|at| (fi, at))
        })
        .expect("suite code has a branch");
    let bad = p.functions[fid].code.len() as u32 + 7;
    p.functions[fid].code[at] = match p.functions[fid].code[at] {
        Instr::Goto(_) => Instr::Goto(bad),
        Instr::If(c, _) => Instr::If(c, bad),
        Instr::IfICmp(c, _) => Instr::IfICmp(c, bad),
        Instr::IfFCmp(c, _) => Instr::IfFCmp(c, bad),
        other => panic!("unexpected branch instruction {other:?}"),
    };
    match verify(&p) {
        Err(VmError::BadBranchTarget { target, .. }) => assert_eq!(target, bad),
        other => panic!("expected BadBranchTarget, got {other:?}"),
    }
}

/// Overwriting the first instruction of a function with a binary op
/// makes the entry stack underflow; the structural verifier rejects it.
#[test]
fn stack_underflow_is_rejected() {
    let mut p = build("NumHeapSort");
    // main's body starts with an empty stack; IAdd needs two values
    let entry = p.entry.0 as usize;
    p.functions[entry].code[0] = Instr::IAdd;
    match verify(&p) {
        Err(VmError::Verify { at: 0, .. }) => {}
        other => panic!("expected Verify at 0, got {other:?}"),
    }
}

/// Replacing an integer constant feeding an integer multiply with a
/// float constant is well-formed stack-wise but ill-kinded; only the
/// kind checker catches it.
#[test]
fn float_into_int_multiply_is_rejected_by_kind_checker() {
    let mut p = build("IDEA");
    let (fid, at) = p
        .functions
        .iter()
        .enumerate()
        .find_map(|(fi, f)| {
            f.code
                .windows(2)
                .position(|w| matches!(w, [Instr::IConst(_), Instr::IMul]))
                .map(|at| (fi, at))
        })
        .expect("suite code has IConst directly feeding IMul");
    p.functions[fid].code[at] = Instr::FConst(1.5);

    // stack depths are unchanged, so the structural verifier still
    // accepts the program...
    verify(&p).expect("mutation preserves stack discipline");
    // ...but the kinds are wrong at the multiply
    match verify_kinds(&p) {
        Err(VmError::KindMismatch {
            func,
            at: err_at,
            expected,
            found,
        }) => {
            assert_eq!(func, fid as u16);
            assert_eq!(err_at as usize, at + 1);
            assert_eq!(expected, "int");
            assert_eq!(found, "float");
        }
        other => panic!("expected KindMismatch, got {other:?}"),
    }
}
