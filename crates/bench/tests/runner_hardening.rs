//! Negative tests for the report helpers on request-shaped inputs: a
//! selection entry whose loop id is foreign to the candidate table or
//! profile (possible once results cross a server boundary) must degrade
//! the derived averages gracefully — never panic, never emit NaN/inf.

use benchsuite::DataSize;
use jrpm_bench::runner::run_benchmark;
use test_tracer::estimate::Estimate;
use test_tracer::select::ChosenStl;
use tvm::isa::LoopId;

#[test]
fn foreign_selection_ids_do_not_panic_report_helpers() {
    let bench = benchsuite::by_name("FourierTest").expect("suite benchmark exists");
    let mut result = run_benchmark(&bench, DataSize::Small).expect("benchmark runs");
    // an id no extraction of this program ever produced, with enough
    // cycles to clear the 0.5% coverage threshold
    result.report.selection.chosen.push(ChosenStl {
        loop_id: LoopId(9999),
        estimate: Estimate {
            speedup: 1.0,
            est_tls_cycles: 0,
            base_speedup: 1.0,
            overflow_freq: 0.0,
        },
        cycles: result.report.seq_cycles,
        coverage: 1.0,
    });
    let height = result.avg_selected_height();
    let threads = result.avg_threads_per_entry();
    let size = result.avg_thread_size();
    for v in [height, threads, size] {
        assert!(v.is_finite(), "helper emitted a non-finite value: {v}");
    }
    let _ = result.selected_above_half_percent();
}
