//! Suite-wide online/offline equivalence: the tier controller, driven
//! until every loop reaches a terminal tier, must reproduce the
//! offline batch **bit for bit** on all 26 benchmarks — same selected
//! STL set, same derived sequential baseline, same profile, same
//! predicted and actual TLS numbers, same demotion set.
//!
//! This is the contract that makes the online runtime a refactoring
//! rather than a re-modelling: every table and figure of the
//! evaluation keeps its numbers no matter which schedule produced
//! them. (Observability counters and points-to wall time are
//! intentionally excluded — they measure the run, not the program.)

use benchsuite::{all, DataSize};
use jrpm::pipeline::PipelineConfig;
use jrpm::tier::{run_tiered, TierConfig};

#[test]
fn online_tier_controller_matches_offline_batch_on_every_benchmark() {
    let cfg = PipelineConfig::default();
    for bench in all() {
        let program = (bench.build)(DataSize::Small);
        let offline = run_tiered(&program, &cfg, &TierConfig::immediate())
            .unwrap_or_else(|e| panic!("{}: offline run failed: {e:?}", bench.name));
        let online = run_tiered(&program, &cfg, &TierConfig::default())
            .unwrap_or_else(|e| panic!("{}: online run failed: {e:?}", bench.name));
        let name = bench.name;

        assert!(
            online.tiers.all_terminal(),
            "{name}: controller stopped with a non-terminal loop tier"
        );
        let (a, b) = (&offline.report, &online.report);
        assert_eq!(
            a.seq_cycles, b.seq_cycles,
            "{name}: derived baseline differs"
        );
        assert_eq!(
            a.profile_cycles, b.profile_cycles,
            "{name}: profiling-run cycles differ"
        );
        assert_eq!(
            a.annotation, b.annotation,
            "{name}: annotation overhead differs"
        );
        assert_eq!(a.profile, b.profile, "{name}: TEST profile differs");
        assert_eq!(
            a.selection.chosen, b.selection.chosen,
            "{name}: selected STL set differs"
        );
        assert_eq!(
            a.selection.predicted_cycles, b.selection.predicted_cycles,
            "{name}: Equation 2 prediction differs"
        );
        assert_eq!(
            a.selection.total_cycles, b.selection.total_cycles,
            "{name}: selection baseline differs"
        );
        assert_eq!(
            a.actual.baseline_cycles, b.actual.baseline_cycles,
            "{name}: actual-TLS baseline differs"
        );
        assert_eq!(
            a.actual.tls_cycles, b.actual.tls_cycles,
            "{name}: actual-TLS cycles differ"
        );
        assert_eq!(
            a.actual.per_loop, b.actual.per_loop,
            "{name}: per-loop TLS differs"
        );
        assert_eq!(
            a.candidates.demoted_ids(),
            b.candidates.demoted_ids(),
            "{name}: completed deferred pre-screen disagrees with the eager one"
        );
        assert_eq!(
            a.rescue.rescued.len(),
            b.rescue.rescued.len(),
            "{name}: rescue outcomes differ"
        );
        assert_eq!(
            online.tiers.selected_ids(),
            b.selection.chosen.iter().map(|c| c.loop_id).collect(),
            "{name}: terminal Selected tiers disagree with the final selection"
        );
    }
}
