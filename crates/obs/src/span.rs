//! Nested span tracing over named tracks.
//!
//! A [`Trace`] owns a set of *tracks*. Each track is a timeline in one
//! of two time domains: wall-clock microseconds (measured from the
//! trace's construction instant) or *simulated cycles* (timestamps
//! supplied by the caller — the analyzer's own notion of time). Spans
//! on a track must nest properly; [`Trace::end`] panics on a
//! mismatched or missing open span, so misuse is caught in tests
//! rather than producing silently corrupt traces.
//!
//! Everything is behind a mutex: events are recorded at pipeline-stage
//! granularity (and sampled inside hot loops), so contention is not a
//! concern, and a single lock keeps cross-thread event order coherent
//! per track.

use std::sync::Mutex;
use std::time::Instant;

/// Which clock a track's timestamps come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeDomain {
    /// Wall-clock microseconds since the trace epoch.
    Wall,
    /// Simulated cycles supplied by the caller via the `*_at` methods.
    Cycles,
}

/// Handle to a track within a [`Trace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrackId(usize);

/// One recorded event on a track.
#[derive(Debug, Clone, PartialEq)]
pub struct TrackEvent {
    /// Microseconds (wall tracks) or cycles (cycle tracks).
    pub ts: u64,
    /// What happened.
    pub kind: TrackEventKind,
}

/// The payload of a [`TrackEvent`].
#[derive(Debug, Clone, PartialEq)]
pub enum TrackEventKind {
    /// A span opened.
    Begin(String),
    /// The innermost open span (with this name) closed.
    End(String),
    /// A counter series sample: `(series name, value)`.
    Counter(String, u64),
    /// A point-in-time marker.
    Instant(String),
}

/// A track's name, domain, and recorded events, as exported by
/// [`Trace::tracks`].
#[derive(Debug, Clone)]
pub struct Track {
    /// Display name.
    pub name: String,
    /// Time domain of `events[..].ts`.
    pub domain: TimeDomain,
    /// Events in recording order (timestamps are non-decreasing per
    /// producer).
    pub events: Vec<TrackEvent>,
    /// Names of spans still open when the snapshot was taken.
    pub open: Vec<String>,
}

#[derive(Debug)]
struct TrackData {
    name: String,
    domain: TimeDomain,
    events: Vec<TrackEvent>,
    open: Vec<String>,
}

/// A collection of span/counter tracks, safe to share across threads.
#[derive(Debug)]
pub struct Trace {
    epoch: Instant,
    inner: Mutex<Vec<TrackData>>,
}

impl Default for Trace {
    fn default() -> Self {
        Self::new()
    }
}

impl Trace {
    /// An empty trace whose wall epoch is "now".
    pub fn new() -> Self {
        Trace {
            epoch: Instant::now(),
            inner: Mutex::new(Vec::new()),
        }
    }

    /// Microseconds elapsed since the trace epoch.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Gets or creates a wall-clock track.
    pub fn track(&self, name: &str) -> TrackId {
        self.track_in(name, TimeDomain::Wall)
    }

    /// Gets or creates a simulated-cycles track.
    pub fn cycle_track(&self, name: &str) -> TrackId {
        self.track_in(name, TimeDomain::Cycles)
    }

    fn track_in(&self, name: &str, domain: TimeDomain) -> TrackId {
        let mut inner = self.inner.lock().unwrap();
        if let Some(i) = inner
            .iter()
            .position(|t| t.name == name && t.domain == domain)
        {
            return TrackId(i);
        }
        inner.push(TrackData {
            name: name.to_string(),
            domain,
            events: Vec::new(),
            open: Vec::new(),
        });
        TrackId(inner.len() - 1)
    }

    /// Opens a span at the current wall time.
    pub fn begin(&self, track: TrackId, name: &str) {
        self.begin_at(track, name, self.now_us());
    }

    /// Opens a span at an explicit timestamp (cycles, or wall µs).
    pub fn begin_at(&self, track: TrackId, name: &str, ts: u64) {
        let mut inner = self.inner.lock().unwrap();
        let t = &mut inner[track.0];
        t.open.push(name.to_string());
        t.events.push(TrackEvent {
            ts,
            kind: TrackEventKind::Begin(name.to_string()),
        });
    }

    /// Closes the innermost open span at the current wall time.
    ///
    /// # Panics
    ///
    /// If no span is open on the track, or the innermost open span has
    /// a different name — spans must nest.
    pub fn end(&self, track: TrackId, name: &str) {
        self.end_at(track, name, self.now_us());
    }

    /// Closes the innermost open span at an explicit timestamp.
    ///
    /// # Panics
    ///
    /// Same misnesting conditions as [`Trace::end`].
    pub fn end_at(&self, track: TrackId, name: &str, ts: u64) {
        let mut inner = self.inner.lock().unwrap();
        let t = &mut inner[track.0];
        match t.open.pop() {
            Some(top) if top == name => {}
            Some(top) => panic!(
                "misnested span on track '{}': end('{}') while '{}' is innermost",
                t.name, name, top
            ),
            None => panic!(
                "misnested span on track '{}': end('{}') with no span open",
                t.name, name
            ),
        }
        t.events.push(TrackEvent {
            ts,
            kind: TrackEventKind::End(name.to_string()),
        });
    }

    /// Opens a span and returns a guard that closes it on drop.
    pub fn span<'a>(&'a self, track: TrackId, name: &str) -> SpanGuard<'a> {
        self.begin(track, name);
        SpanGuard {
            trace: self,
            track,
            name: name.to_string(),
        }
    }

    /// Records a counter sample at the current wall time.
    pub fn counter(&self, track: TrackId, series: &str, value: u64) {
        self.counter_at(track, series, self.now_us(), value);
    }

    /// Records a counter sample at an explicit timestamp.
    pub fn counter_at(&self, track: TrackId, series: &str, ts: u64, value: u64) {
        let mut inner = self.inner.lock().unwrap();
        inner[track.0].events.push(TrackEvent {
            ts,
            kind: TrackEventKind::Counter(series.to_string(), value),
        });
    }

    /// Records an instant marker at the current wall time.
    pub fn instant(&self, track: TrackId, name: &str) {
        self.instant_at(track, name, self.now_us());
    }

    /// Records an instant marker at an explicit timestamp.
    pub fn instant_at(&self, track: TrackId, name: &str, ts: u64) {
        let mut inner = self.inner.lock().unwrap();
        inner[track.0].events.push(TrackEvent {
            ts,
            kind: TrackEventKind::Instant(name.to_string()),
        });
    }

    /// Snapshot of every track and its events, in creation order.
    pub fn tracks(&self) -> Vec<Track> {
        let inner = self.inner.lock().unwrap();
        inner
            .iter()
            .map(|t| Track {
                name: t.name.clone(),
                domain: t.domain,
                events: t.events.clone(),
                open: t.open.clone(),
            })
            .collect()
    }

    /// Total number of recorded events across all tracks.
    pub fn event_count(&self) -> usize {
        let inner = self.inner.lock().unwrap();
        inner.iter().map(|t| t.events.len()).sum()
    }
}

/// RAII guard that ends its span when dropped.
#[must_use = "dropping the guard immediately ends the span"]
pub struct SpanGuard<'a> {
    trace: &'a Trace,
    track: TrackId,
    name: String,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.trace.end(self.track, &self.name);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_close_in_order() {
        let tr = Trace::new();
        let t = tr.track("pipeline");
        tr.begin(t, "outer");
        tr.begin(t, "inner");
        tr.end(t, "inner");
        tr.end(t, "outer");
        let tracks = tr.tracks();
        assert_eq!(tracks.len(), 1);
        assert!(tracks[0].open.is_empty());
        let kinds: Vec<_> = tracks[0].events.iter().map(|e| &e.kind).collect();
        assert!(matches!(kinds[0], TrackEventKind::Begin(n) if n == "outer"));
        assert!(matches!(kinds[1], TrackEventKind::Begin(n) if n == "inner"));
        assert!(matches!(kinds[2], TrackEventKind::End(n) if n == "inner"));
        assert!(matches!(kinds[3], TrackEventKind::End(n) if n == "outer"));
        // wall timestamps are monotone
        for w in tracks[0].events.windows(2) {
            assert!(w[0].ts <= w[1].ts);
        }
    }

    #[test]
    #[should_panic(expected = "misnested span")]
    fn ending_the_outer_span_first_panics() {
        let tr = Trace::new();
        let t = tr.track("pipeline");
        tr.begin(t, "outer");
        tr.begin(t, "inner");
        tr.end(t, "outer");
    }

    #[test]
    #[should_panic(expected = "no span open")]
    fn ending_with_nothing_open_panics() {
        let tr = Trace::new();
        let t = tr.track("pipeline");
        tr.end(t, "ghost");
    }

    #[test]
    fn guard_closes_on_drop() {
        let tr = Trace::new();
        let t = tr.track("pipeline");
        {
            let _g = tr.span(t, "scoped");
            assert_eq!(tr.tracks()[0].open, vec!["scoped".to_string()]);
        }
        assert!(tr.tracks()[0].open.is_empty());
    }

    #[test]
    fn wall_and_cycle_tracks_with_the_same_name_are_distinct() {
        let tr = Trace::new();
        let w = tr.track("tracer");
        let c = tr.cycle_track("tracer");
        assert_ne!(w, c);
        tr.counter_at(c, "fifo_depth", 100, 7);
        tr.counter(w, "events", 1);
        let tracks = tr.tracks();
        assert_eq!(tracks.len(), 2);
        assert_eq!(tracks[0].domain, TimeDomain::Wall);
        assert_eq!(tracks[1].domain, TimeDomain::Cycles);
        assert_eq!(tracks[1].events[0].ts, 100);
    }

    #[test]
    fn cycle_timestamps_are_taken_verbatim() {
        let tr = Trace::new();
        let c = tr.cycle_track("sim");
        tr.begin_at(c, "loop", 10);
        tr.instant_at(c, "overflow", 42);
        tr.end_at(c, "loop", 90);
        let ev = &tr.tracks()[0].events;
        assert_eq!(ev[0].ts, 10);
        assert_eq!(ev[1].ts, 42);
        assert_eq!(ev[2].ts, 90);
    }
}
