//! Live telemetry: the flight recorder's thread-local wiring, crash
//! dumps, tail-based request sampling, and alert rules.
//!
//! Four pieces (DESIGN.md §16):
//!
//! * **Recorder installation** — [`install`] binds a
//!   [`FlightRing`] to the current thread; [`emit`] appends to it from
//!   anywhere downstream (the tier controller, batch streaming) with
//!   no plumbing and no cost when nothing is installed. One ring per
//!   worker thread, owned by that worker.
//! * **[`FlightDump`]** — the forensic artifact drained from a
//!   panicking worker's ring: the last N events plus request identity
//!   and the panic message, serialized through [`crate::json`] so the
//!   dump round-trips (`to_json` / `parse`).
//! * **[`TailSampler`]** — per-kind latency histograms plus a bounded
//!   store of full request traces, retained only for requests that
//!   error or land at/above a configured latency quantile. Steady
//!   state keeps nothing; the interesting traces survive.
//! * **Alert rules** — [`evaluate_alerts`] diffs two registry
//!   snapshots and emits structured [`AlertNote`]s for drop-rate,
//!   contained panics, queue-depth high-water, and per-shard
//!   starvation. A healthy run produces an empty vector (pinned by
//!   the `live-gate` CI binary).

use std::cell::RefCell;
use std::collections::VecDeque;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use crate::json::{self, quote, Value};
use crate::metrics::{Histogram, Snapshot};
use crate::ring::{FlightRing, LiveEvent, LiveEventKind};

thread_local! {
    static RECORDER: RefCell<Option<Arc<FlightRing>>> = const { RefCell::new(None) };
}

/// Binds `ring` as the current thread's flight recorder. Subsequent
/// [`emit`] calls on this thread append to it. Returns the previously
/// installed ring, if any.
pub fn install(ring: Arc<FlightRing>) -> Option<Arc<FlightRing>> {
    RECORDER.with(|r| r.borrow_mut().replace(ring))
}

/// Removes and returns the current thread's recorder.
pub fn uninstall() -> Option<Arc<FlightRing>> {
    RECORDER.with(|r| r.borrow_mut().take())
}

/// True when this thread has a recorder installed.
pub fn installed() -> bool {
    RECORDER.with(|r| r.borrow().is_some())
}

/// Appends one event to this thread's recorder; a no-op (one
/// thread-local read) when none is installed.
#[inline]
pub fn emit(kind: LiveEventKind, a: u64, b: u64, c: u64) {
    RECORDER.with(|r| {
        if let Some(ring) = r.borrow().as_ref() {
            ring.emit(kind, a, b, c);
        }
    });
}

/// Drains this thread's recorder (without uninstalling it) — the
/// post-`catch_unwind` read a panicking worker performs on its own
/// ring.
pub fn drain() -> Option<Vec<LiveEvent>> {
    RECORDER.with(|r| r.borrow().as_ref().map(|ring| ring.snapshot()))
}

/// The forensic record of a contained worker panic: identity of the
/// request that blew up plus the worker's recent event tail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightDump {
    /// Index of the worker (shard) that panicked.
    pub worker: u64,
    /// Id of the request being served when the panic fired.
    pub request_id: u64,
    /// Request kind label (`pipeline`, `tiered`, `replay`, ...).
    pub request_kind: String,
    /// The panic payload, stringified.
    pub panic_message: String,
    /// Total events the ring ever recorded (events lost to wrap-around
    /// = `events_written - events.len()`).
    pub events_written: u64,
    /// The surviving tail of the worker's ring, oldest first.
    pub events: Vec<LiveEvent>,
}

impl FlightDump {
    /// Serializes the dump as a JSON document (via [`crate::json`]).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        s.push_str("\"version\": 1, ");
        s.push_str(&format!("\"worker\": {}, ", self.worker));
        s.push_str(&format!("\"request_id\": {}, ", self.request_id));
        s.push_str(&format!(
            "\"request_kind\": {}, ",
            quote(&self.request_kind)
        ));
        s.push_str(&format!(
            "\"panic_message\": {}, ",
            quote(&self.panic_message)
        ));
        s.push_str(&format!("\"events_written\": {}, ", self.events_written));
        s.push_str("\"events\": [");
        for (i, ev) in self.events.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!(
                "{{\"seq\": {}, \"ts_us\": {}, \"kind\": {}, \"a\": {}, \"b\": {}, \"c\": {}}}",
                ev.seq,
                ev.ts_us,
                quote(ev.kind.name()),
                ev.a,
                ev.b,
                ev.c
            ));
        }
        s.push_str("]}");
        s
    }

    /// Parses a dump back from its JSON form.
    ///
    /// # Errors
    ///
    /// [`json::ParseError`] on malformed JSON or a document missing
    /// required fields.
    pub fn parse(text: &str) -> Result<FlightDump, json::ParseError> {
        let doc = json::parse(text)?;
        let missing = |field: &str| json::ParseError {
            msg: format!("flight dump missing or mistyped field '{field}'"),
            at: 0,
        };
        let num = |field: &str| {
            doc.get(field)
                .and_then(Value::as_u64)
                .ok_or_else(|| missing(field))
        };
        let text_field = |field: &str| {
            doc.get(field)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| missing(field))
        };
        let mut events = Vec::new();
        for (i, ev) in doc
            .get("events")
            .and_then(Value::as_arr)
            .ok_or_else(|| missing("events"))?
            .iter()
            .enumerate()
        {
            let evnum = |field: &str| {
                ev.get(field)
                    .and_then(Value::as_u64)
                    .ok_or_else(|| json::ParseError {
                        msg: format!("flight dump event {i} missing field '{field}'"),
                        at: 0,
                    })
            };
            let kind_name = ev
                .get("kind")
                .and_then(Value::as_str)
                .ok_or_else(|| missing("events[].kind"))?;
            let kind = LiveEventKind::from_name(kind_name).ok_or_else(|| json::ParseError {
                msg: format!("flight dump event {i} has unknown kind '{kind_name}'"),
                at: 0,
            })?;
            events.push(LiveEvent {
                seq: evnum("seq")?,
                ts_us: evnum("ts_us")?,
                kind,
                a: evnum("a")?,
                b: evnum("b")?,
                c: evnum("c")?,
            });
        }
        Ok(FlightDump {
            worker: num("worker")?,
            request_id: num("request_id")?,
            request_kind: text_field("request_kind")?,
            panic_message: text_field("panic_message")?,
            events_written: num("events_written")?,
            events,
        })
    }

    /// Writes the dump into `dir` as
    /// `flightdump-w<worker>-r<request_id>.json` and returns the path.
    ///
    /// # Errors
    ///
    /// Any I/O failure creating the directory or writing the file.
    pub fn write_to(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!(
            "flightdump-w{}-r{}.json",
            self.worker, self.request_id
        ));
        let mut f = std::fs::File::create(&path)?;
        f.write_all(self.to_json().as_bytes())?;
        Ok(path)
    }
}

/// Tail-sampling policy.
#[derive(Debug, Clone, Copy)]
pub struct TailConfig {
    /// Latency quantile at/above which a request's trace is retained
    /// (per request kind).
    pub quantile: f64,
    /// Observations of a kind required before its quantile threshold
    /// is trusted; below this only erroring requests are retained.
    pub warmup: u64,
    /// Maximum retained traces (oldest evicted first).
    pub keep: usize,
}

impl Default for TailConfig {
    fn default() -> TailConfig {
        TailConfig {
            quantile: 0.99,
            warmup: 32,
            keep: 64,
        }
    }
}

/// One retained request trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestTrace {
    /// Request id.
    pub id: u64,
    /// Request kind label.
    pub kind: String,
    /// End-to-end worker latency in nanoseconds.
    pub latency_nanos: u64,
    /// The error answer, if the request failed.
    pub error: Option<String>,
    /// Pipeline stage spans `(stage, nanos)` captured for the request
    /// (empty for request shapes without stage observability).
    pub stages: Vec<(String, u64)>,
}

impl RequestTrace {
    /// The trace as a JSON object.
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"id\": {}, \"kind\": {}, \"latency_nanos\": {}, \"error\": ",
            self.id,
            quote(&self.kind),
            self.latency_nanos
        );
        match &self.error {
            Some(e) => s.push_str(&quote(e)),
            None => s.push_str("null"),
        }
        s.push_str(", \"stages\": [");
        for (i, (stage, nanos)) in self.stages.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!(
                "{{\"stage\": {}, \"nanos\": {nanos}}}",
                quote(stage)
            ));
        }
        s.push_str("]}");
        s
    }
}

/// The smallest latency the sampler retains, given the distribution so
/// far: the first value *above* the log₂ bucket holding the
/// `q`-quantile estimate. Bucket-resolved on purpose — with log₂
/// buckets an in-bucket threshold would retain the whole mode bucket
/// whenever latencies concentrate, which is exactly the steady state
/// tail sampling must keep cheap.
fn tail_threshold(snap: &crate::metrics::HistogramSnapshot, q: f64) -> u64 {
    let bucket = crate::metrics::bucket_index(snap.quantile(q));
    crate::metrics::bucket_bounds(bucket).1.saturating_add(1)
}

#[derive(Debug, Default)]
struct TailState {
    hists: std::collections::BTreeMap<String, Histogram>,
    kept: VecDeque<RequestTrace>,
    observed: u64,
    retained: u64,
}

/// Tail-based request sampler: shared across a server's workers,
/// records every latency, keeps only the interesting traces.
#[derive(Debug)]
pub struct TailSampler {
    cfg: TailConfig,
    state: Mutex<TailState>,
}

impl TailSampler {
    /// Creates a sampler with `cfg`.
    pub fn new(cfg: TailConfig) -> TailSampler {
        TailSampler {
            cfg,
            state: Mutex::new(TailState::default()),
        }
    }

    /// The policy in force.
    pub fn config(&self) -> TailConfig {
        self.cfg
    }

    /// Records one finished request and decides retention. Returns
    /// true when the trace was kept (erroring request, or latency at
    /// or above the kind's warm quantile threshold).
    pub fn observe(&self, trace: RequestTrace) -> bool {
        let mut st = self.state.lock().expect("tail sampler poisoned");
        st.observed += 1;
        let hist = st.hists.entry(trace.kind.clone()).or_default();
        // threshold from observations *before* this one, so a lone
        // slow request cannot raise the bar on itself
        let snap = hist.snapshot();
        hist.record(trace.latency_nanos);
        let threshold = if snap.count >= self.cfg.warmup {
            Some(tail_threshold(&snap, self.cfg.quantile))
        } else {
            None
        };
        let keep = trace.error.is_some() || threshold.is_some_and(|t| trace.latency_nanos >= t);
        if keep {
            st.retained += 1;
            st.kept.push_back(trace);
            while st.kept.len() > self.cfg.keep.max(1) {
                st.kept.pop_front();
            }
        }
        keep
    }

    /// The currently retained traces, oldest first.
    pub fn traces(&self) -> Vec<RequestTrace> {
        let st = self.state.lock().expect("tail sampler poisoned");
        st.kept.iter().cloned().collect()
    }

    /// `(observed, retained)` request totals.
    pub fn totals(&self) -> (u64, u64) {
        let st = self.state.lock().expect("tail sampler poisoned");
        (st.observed, st.retained)
    }

    /// The warm retention threshold for `kind` (smallest latency that
    /// would be retained), if enough observations have accumulated.
    pub fn threshold(&self, kind: &str) -> Option<u64> {
        let st = self.state.lock().expect("tail sampler poisoned");
        let snap = st.hists.get(kind)?.snapshot();
        if snap.count >= self.cfg.warmup {
            Some(tail_threshold(&snap, self.cfg.quantile))
        } else {
            None
        }
    }

    /// The retained traces as a JSON array.
    pub fn traces_json(&self) -> String {
        let traces = self.traces();
        let mut s = String::from("[");
        for (i, t) in traces.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&t.to_json());
        }
        s.push(']');
        s
    }
}

/// Alert thresholds evaluated over registry snapshot deltas.
#[derive(Debug, Clone, Copy)]
pub struct AlertConfig {
    /// Maximum tolerated `dropped_batches / batches` over the window.
    pub max_drop_rate: f64,
    /// Maximum tolerated contained panics over the window.
    pub max_panics: u64,
    /// Queue-depth high-water mark at/above which the queue counts as
    /// saturated (`u64::MAX` disables the rule — a closed-loop
    /// benchmark saturates its queue by design).
    pub max_queue_high_water: u64,
    /// Minimum total request delta before per-shard starvation is
    /// judged (avoids flagging idle servers).
    pub starvation_min_requests: u64,
}

impl Default for AlertConfig {
    fn default() -> AlertConfig {
        AlertConfig {
            max_drop_rate: 0.0,
            max_panics: 0,
            max_queue_high_water: u64::MAX,
            starvation_min_requests: 8,
        }
    }
}

/// One fired alert rule.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertNote {
    /// Rule identifier (`drop_rate`, `panics`, `queue_saturated`,
    /// `shard_starved`).
    pub rule: String,
    /// `warn` or `crit`.
    pub severity: String,
    /// Human-readable description.
    pub message: String,
    /// The observed value.
    pub value: f64,
    /// The threshold it breached.
    pub threshold: f64,
}

impl AlertNote {
    /// The note as a JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"rule\": {}, \"severity\": {}, \"message\": {}, \"value\": {}, \
             \"threshold\": {}}}",
            quote(&self.rule),
            quote(&self.severity),
            quote(&self.message),
            fmt_f64(self.value),
            fmt_f64(self.threshold)
        )
    }
}

/// Finite JSON rendering of a threshold (`u64::MAX as f64` and
/// friends stay representable; NaN/inf clamp to 0/max).
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        format!("{}", f64::MAX)
    }
}

/// Renders fired alerts as a JSON array.
pub fn alerts_json(alerts: &[AlertNote]) -> String {
    let mut s = String::from("[");
    for (i, a) in alerts.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&a.to_json());
    }
    s.push(']');
    s
}

/// Sum of the deltas of every counter whose name ends with `suffix`.
fn delta_sum(prev: &Snapshot, cur: &Snapshot, suffix: &str) -> u64 {
    cur.counters
        .iter()
        .filter(|(name, _)| name.ends_with(suffix))
        .map(|(name, &v)| v.saturating_sub(prev.counter(name)))
        .sum()
}

/// Evaluates the alert rules over the delta from `prev` to `cur`.
/// Returns the fired alerts; empty on a healthy window.
pub fn evaluate_alerts(prev: &Snapshot, cur: &Snapshot, cfg: &AlertConfig) -> Vec<AlertNote> {
    let mut out = Vec::new();

    // -- drop rate: lost batches over delivered batches ----------------
    // `.batches` also matches `bus.batches` / `bus.sink.<i>.batches`;
    // `dropped_batches`/`lagged_batches` end in `_batches` and don't
    let dropped = delta_sum(prev, cur, ".dropped_batches");
    let batches = delta_sum(prev, cur, ".batches");
    let drop_rate = if batches > 0 {
        dropped as f64 / batches as f64
    } else if dropped > 0 {
        1.0
    } else {
        0.0
    };
    if dropped > 0 && drop_rate > cfg.max_drop_rate {
        out.push(AlertNote {
            rule: "drop_rate".to_string(),
            severity: "crit".to_string(),
            message: format!("{dropped} batches dropped over the window ({batches} delivered)"),
            value: drop_rate,
            threshold: cfg.max_drop_rate,
        });
    }

    // -- contained panics ----------------------------------------------
    let panics = delta_sum(prev, cur, ".panics");
    if panics > cfg.max_panics {
        out.push(AlertNote {
            rule: "panics".to_string(),
            severity: "crit".to_string(),
            message: format!("{panics} contained worker panic(s) over the window"),
            value: panics as f64,
            threshold: cfg.max_panics as f64,
        });
    }

    // -- queue saturation: high-water mark against the bound -----------
    let high_water = cur.counter("serve.queue.high_water");
    if cfg.max_queue_high_water != u64::MAX && high_water >= cfg.max_queue_high_water {
        out.push(AlertNote {
            rule: "queue_saturated".to_string(),
            severity: "warn".to_string(),
            message: format!(
                "job-queue depth high-water {high_water} reached the saturation \
                 bound {}",
                cfg.max_queue_high_water
            ),
            value: high_water as f64,
            threshold: cfg.max_queue_high_water as f64,
        });
    }

    // -- per-shard starvation ------------------------------------------
    let shard_deltas: Vec<(String, u64)> = cur
        .counters
        .iter()
        .filter(|(name, _)| name.starts_with("serve.worker.") && name.ends_with(".requests"))
        .map(|(name, &v)| (name.clone(), v.saturating_sub(prev.counter(name))))
        .collect();
    let total: u64 = shard_deltas.iter().map(|(_, d)| d).sum();
    if shard_deltas.len() > 1 && total >= cfg.starvation_min_requests {
        for (name, d) in &shard_deltas {
            if *d == 0 {
                out.push(AlertNote {
                    rule: "shard_starved".to_string(),
                    severity: "warn".to_string(),
                    message: format!("{name} served 0 of the {total} requests in the window"),
                    value: 0.0,
                    threshold: cfg.starvation_min_requests as f64,
                });
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    #[test]
    fn emit_is_a_no_op_without_a_recorder() {
        assert!(!installed());
        emit(LiveEventKind::RequestBegin, 1, 2, 3); // must not panic
        assert!(drain().is_none());
    }

    #[test]
    fn install_emit_drain_round_trip() {
        let ring = Arc::new(FlightRing::new(8));
        assert!(install(Arc::clone(&ring)).is_none());
        assert!(installed());
        emit(LiveEventKind::RequestBegin, 42, 1, 0);
        emit(LiveEventKind::RequestEnd, 42, 999, 0);
        let events = drain().expect("recorder installed");
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, LiveEventKind::RequestBegin);
        assert_eq!(events[1].b, 999);
        assert!(uninstall().is_some());
        assert!(!installed());
    }

    #[test]
    fn recorder_is_per_thread() {
        let ring = Arc::new(FlightRing::new(8));
        install(Arc::clone(&ring));
        std::thread::spawn(|| {
            assert!(!installed());
            emit(LiveEventKind::QueueDepth, 1, 1, 0); // silently dropped
        })
        .join()
        .unwrap();
        assert_eq!(ring.snapshot().len(), 0);
        uninstall();
    }

    #[test]
    fn flight_dump_round_trips_through_json() {
        let dump = FlightDump {
            worker: 3,
            request_id: 17,
            request_kind: "replay_mapped".to_string(),
            panic_message: "table size 3 is not a power of two \"quoted\"\n".to_string(),
            events_written: 900,
            events: vec![
                LiveEvent {
                    seq: 898,
                    ts_us: 1000,
                    kind: LiveEventKind::RequestBegin,
                    a: 17,
                    b: 4,
                    c: 0,
                },
                LiveEvent {
                    seq: 899,
                    ts_us: 1009,
                    kind: LiveEventKind::BatchConsumed,
                    a: 17,
                    b: 512,
                    c: 0,
                },
            ],
        };
        let text = dump.to_json();
        let parsed = FlightDump::parse(&text).expect("dump parses");
        assert_eq!(parsed, dump);
    }

    #[test]
    fn flight_dump_parse_rejects_malformed_documents() {
        assert!(FlightDump::parse("not json").is_err());
        assert!(FlightDump::parse("{}").is_err());
        let err = FlightDump::parse(
            r#"{"version": 1, "worker": 0, "request_id": 1, "request_kind": "replay",
                "panic_message": "x", "events_written": 1,
                "events": [{"seq": 0, "ts_us": 0, "kind": "martian", "a": 0, "b": 0, "c": 0}]}"#,
        )
        .expect_err("unknown kind rejected");
        assert!(err.msg.contains("martian"), "{err}");
    }

    #[test]
    fn flight_dump_writes_to_disk() {
        let dir = std::env::temp_dir().join(format!("obs-live-{}", std::process::id()));
        let dump = FlightDump {
            worker: 1,
            request_id: 2,
            request_kind: "pipeline".to_string(),
            panic_message: "boom".to_string(),
            events_written: 0,
            events: Vec::new(),
        };
        let path = dump.write_to(&dir).expect("dump writes");
        let text = std::fs::read_to_string(&path).expect("dump readable");
        assert_eq!(FlightDump::parse(&text).unwrap(), dump);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tail_sampler_keeps_errors_and_slow_requests_only() {
        let sampler = TailSampler::new(TailConfig {
            quantile: 0.9,
            warmup: 10,
            keep: 8,
        });
        let mk = |id: u64, latency: u64, error: Option<&str>| RequestTrace {
            id,
            kind: "pipeline".to_string(),
            latency_nanos: latency,
            error: error.map(str::to_string),
            stages: vec![("extract".to_string(), latency / 2)],
        };
        // cold sampler: fast healthy requests are not retained
        for id in 0..20 {
            let kept = sampler.observe(mk(id, 1_000, None));
            assert!(!kept, "request {id} retained while healthy and fast");
        }
        // errors are always retained, warm or cold
        assert!(sampler.observe(mk(100, 1_000, Some("vm error"))));
        // a tail outlier above the warm quantile is retained
        let threshold = sampler.threshold("pipeline").expect("warm after 20 obs");
        assert!(sampler.observe(mk(101, threshold.max(1) * 64, None)));
        let traces = sampler.traces();
        assert_eq!(traces.len(), 2);
        assert_eq!(traces[0].id, 100);
        assert_eq!(traces[1].id, 101);
        let (observed, retained) = sampler.totals();
        assert_eq!((observed, retained), (22, 2));
        // the store is bounded
        for id in 0..100 {
            sampler.observe(mk(200 + id, 1_000, Some("e")));
        }
        assert_eq!(sampler.traces().len(), 8);
        // and the JSON form parses
        let doc = json::parse(&sampler.traces_json()).expect("traces JSON parses");
        assert_eq!(doc.as_arr().unwrap().len(), 8);
    }

    fn serve_snapshot(requests: &[u64], panics: u64, dropped: u64, high_water: u64) -> Snapshot {
        let r = Registry::new();
        for (i, &n) in requests.iter().enumerate() {
            r.counter(&format!("serve.worker.{i}.requests")).add(n);
            r.counter(&format!("serve.worker.{i}.batches")).add(n * 4);
        }
        r.counter("serve.worker.0.panics").add(panics);
        r.counter("serve.worker.0.dropped_batches").add(dropped);
        r.counter("serve.queue.high_water").record_max(high_water);
        r.snapshot()
    }

    #[test]
    fn healthy_window_fires_no_alerts() {
        let prev = serve_snapshot(&[0, 0], 0, 0, 0);
        let cur = serve_snapshot(&[10, 12], 0, 0, 2);
        assert_eq!(
            evaluate_alerts(&prev, &cur, &AlertConfig::default()),
            vec![]
        );
    }

    #[test]
    fn panic_drop_saturation_and_starvation_rules_fire() {
        let prev = serve_snapshot(&[0, 0], 0, 0, 0);
        let cur = serve_snapshot(&[20, 0], 2, 5, 9);
        let cfg = AlertConfig {
            max_queue_high_water: 8,
            ..AlertConfig::default()
        };
        let alerts = evaluate_alerts(&prev, &cur, &cfg);
        let rules: Vec<&str> = alerts.iter().map(|a| a.rule.as_str()).collect();
        assert!(rules.contains(&"panics"), "{rules:?}");
        assert!(rules.contains(&"drop_rate"), "{rules:?}");
        assert!(rules.contains(&"queue_saturated"), "{rules:?}");
        assert!(rules.contains(&"shard_starved"), "{rules:?}");
        // and the JSON form parses back with every rule present
        let doc = json::parse(&alerts_json(&alerts)).expect("alerts JSON parses");
        assert_eq!(doc.as_arr().unwrap().len(), alerts.len());
    }

    #[test]
    fn idle_and_single_shard_windows_never_flag_starvation() {
        // idle: below the minimum request delta
        let prev = serve_snapshot(&[0, 0], 0, 0, 0);
        let cur = serve_snapshot(&[3, 0], 0, 0, 0);
        assert!(evaluate_alerts(&prev, &cur, &AlertConfig::default()).is_empty());
        // single shard: nothing to compare against
        let prev = serve_snapshot(&[0], 0, 0, 0);
        let cur = serve_snapshot(&[50], 0, 0, 0);
        assert!(evaluate_alerts(&prev, &cur, &AlertConfig::default()).is_empty());
    }
}
