//! The flight recorder's storage: a fixed-capacity, lock-free ring of
//! recent structured events.
//!
//! Each worker thread owns one [`FlightRing`] and appends to it on the
//! request hot path; nobody reads it until something goes wrong. The
//! design requirements follow from that asymmetry:
//!
//! * **Writes never block and never allocate.** A write is one
//!   `fetch_add` to claim a slot plus six relaxed/release stores —
//!   cheap enough to leave on for every request, batch, and tier
//!   transition in production.
//! * **Reads are rare and may retry.** [`FlightRing::snapshot`] is a
//!   per-slot seqlock read: each slot carries a sequence word that is
//!   odd while a write is in flight, so a reader can detect and skip
//!   torn slots. The common reader is the panicking worker draining
//!   its *own* ring (no concurrent writer), where every slot is clean.
//! * **Everything is plain atomics.** No unsafe code, no heap inside a
//!   slot; an event is five `u64`s (timestamp, kind, three payload
//!   words). Names and labels are decoded at dump time, never stored.
//!
//! The ring keeps the most recent `capacity` events; older claims are
//! overwritten in place. [`FlightRing::snapshot`] returns the
//! surviving events in claim order, so a [`crate::live::FlightDump`]
//! reads as a chronological tail of what the worker was doing.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// What a [`LiveEvent`] describes. Payload word meaning per kind:
///
/// | kind             | `a`          | `b`              | `c`        |
/// |------------------|--------------|------------------|------------|
/// | `RequestBegin`   | request id   | kind code        | —          |
/// | `RequestEnd`     | request id   | latency (nanos)  | 0 ok/1 err |
/// | `BatchConsumed`  | request id   | events in batch  | —          |
/// | `TierTransition` | loop id      | epoch            | tier code  |
/// | `QueueDepth`     | depth        | high-water       | —          |
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LiveEventKind {
    /// A worker claimed a request from the queue.
    RequestBegin,
    /// A worker finished a request (successfully or not).
    RequestEnd,
    /// A batch of trace events was streamed into an analyzer.
    BatchConsumed,
    /// The tier controller moved a loop to a new tier.
    TierTransition,
    /// A sample of the shared job-queue depth.
    QueueDepth,
}

impl LiveEventKind {
    /// Stable numeric code (what the ring stores).
    pub fn code(self) -> u64 {
        match self {
            LiveEventKind::RequestBegin => 1,
            LiveEventKind::RequestEnd => 2,
            LiveEventKind::BatchConsumed => 3,
            LiveEventKind::TierTransition => 4,
            LiveEventKind::QueueDepth => 5,
        }
    }

    /// Inverse of [`LiveEventKind::code`].
    pub fn from_code(code: u64) -> Option<LiveEventKind> {
        Some(match code {
            1 => LiveEventKind::RequestBegin,
            2 => LiveEventKind::RequestEnd,
            3 => LiveEventKind::BatchConsumed,
            4 => LiveEventKind::TierTransition,
            5 => LiveEventKind::QueueDepth,
            _ => return None,
        })
    }

    /// Short name used in dump JSON.
    pub fn name(self) -> &'static str {
        match self {
            LiveEventKind::RequestBegin => "request_begin",
            LiveEventKind::RequestEnd => "request_end",
            LiveEventKind::BatchConsumed => "batch_consumed",
            LiveEventKind::TierTransition => "tier_transition",
            LiveEventKind::QueueDepth => "queue_depth",
        }
    }

    /// Inverse of [`LiveEventKind::name`].
    pub fn from_name(name: &str) -> Option<LiveEventKind> {
        Some(match name {
            "request_begin" => LiveEventKind::RequestBegin,
            "request_end" => LiveEventKind::RequestEnd,
            "batch_consumed" => LiveEventKind::BatchConsumed,
            "tier_transition" => LiveEventKind::TierTransition,
            "queue_depth" => LiveEventKind::QueueDepth,
            _ => return None,
        })
    }
}

/// One decoded flight-recorder event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LiveEvent {
    /// Write sequence number (total events written before this one).
    pub seq: u64,
    /// Microseconds since the ring was created.
    pub ts_us: u64,
    /// What happened.
    pub kind: LiveEventKind,
    /// First payload word (see [`LiveEventKind`]).
    pub a: u64,
    /// Second payload word.
    pub b: u64,
    /// Third payload word.
    pub c: u64,
}

/// One slot: a per-slot seqlock (`seq` odd while a write is in
/// flight) guarding five payload words.
#[derive(Debug)]
struct Slot {
    seq: AtomicU64,
    ts_us: AtomicU64,
    kind: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
    c: AtomicU64,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            ts_us: AtomicU64::new(0),
            kind: AtomicU64::new(0),
            a: AtomicU64::new(0),
            b: AtomicU64::new(0),
            c: AtomicU64::new(0),
        }
    }
}

/// A lock-free ring buffer of the last `capacity` [`LiveEvent`]s.
#[derive(Debug)]
pub struct FlightRing {
    slots: Box<[Slot]>,
    mask: u64,
    cursor: AtomicU64,
    epoch: Instant,
}

impl FlightRing {
    /// Creates a ring holding the most recent `capacity` events
    /// (rounded up to a power of two; 0 is promoted to 1).
    pub fn new(capacity: usize) -> FlightRing {
        let cap = capacity.max(1).next_power_of_two();
        FlightRing {
            slots: (0..cap).map(|_| Slot::new()).collect(),
            mask: cap as u64 - 1,
            cursor: AtomicU64::new(0),
            epoch: Instant::now(),
        }
    }

    /// Slot count.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever written (including overwritten ones).
    pub fn written(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    /// Appends one event. Never blocks; overwrites the oldest slot
    /// once the ring is full.
    pub fn emit(&self, kind: LiveEventKind, a: u64, b: u64, c: u64) {
        let claim = self.cursor.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(claim & self.mask) as usize];
        // odd sequence = write in flight; readers skip the slot
        slot.seq.store(claim * 2 + 1, Ordering::Release);
        slot.ts_us
            .store(self.epoch.elapsed().as_micros() as u64, Ordering::Relaxed);
        slot.kind.store(kind.code(), Ordering::Relaxed);
        slot.a.store(a, Ordering::Relaxed);
        slot.b.store(b, Ordering::Relaxed);
        slot.c.store(c, Ordering::Relaxed);
        slot.seq.store(claim * 2 + 2, Ordering::Release);
    }

    /// The surviving events, oldest first. Slots with a write in
    /// flight (or torn by a concurrent overwrite) are skipped — the
    /// snapshot is best-effort under concurrency and exact when the
    /// owner thread reads its own ring.
    pub fn snapshot(&self) -> Vec<LiveEvent> {
        let cursor = self.cursor.load(Ordering::Acquire);
        let mut out: Vec<LiveEvent> = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 == 0 || s1 % 2 == 1 {
                continue; // never written, or write in flight
            }
            let ev = LiveEvent {
                seq: s1 / 2 - 1,
                ts_us: slot.ts_us.load(Ordering::Relaxed),
                kind: match LiveEventKind::from_code(slot.kind.load(Ordering::Relaxed)) {
                    Some(k) => k,
                    None => continue, // torn kind word
                },
                a: slot.a.load(Ordering::Relaxed),
                b: slot.b.load(Ordering::Relaxed),
                c: slot.c.load(Ordering::Relaxed),
            };
            let s2 = slot.seq.load(Ordering::Acquire);
            if s1 != s2 {
                continue; // overwritten while reading
            }
            // a slot overwritten after `cursor` was sampled would carry
            // a claim from the future; drop it to keep the tail coherent
            if ev.seq < cursor {
                out.push(ev);
            }
        }
        out.sort_by_key(|e| e.seq);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn keeps_the_most_recent_events_in_order() {
        let ring = FlightRing::new(8);
        for i in 0..20u64 {
            ring.emit(LiveEventKind::RequestBegin, i, 0, 0);
        }
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 8);
        let ids: Vec<u64> = snap.iter().map(|e| e.a).collect();
        assert_eq!(ids, (12..20).collect::<Vec<_>>());
        let seqs: Vec<u64> = snap.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (12..20).collect::<Vec<_>>());
        assert_eq!(ring.written(), 20);
    }

    #[test]
    fn capacity_rounds_up_to_a_power_of_two() {
        assert_eq!(FlightRing::new(0).capacity(), 1);
        assert_eq!(FlightRing::new(5).capacity(), 8);
        assert_eq!(FlightRing::new(64).capacity(), 64);
    }

    #[test]
    fn payload_words_round_trip() {
        let ring = FlightRing::new(4);
        ring.emit(LiveEventKind::TierTransition, 7, 3, 5);
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].kind, LiveEventKind::TierTransition);
        assert_eq!((snap[0].a, snap[0].b, snap[0].c), (7, 3, 5));
    }

    #[test]
    fn kind_codes_and_names_round_trip() {
        for kind in [
            LiveEventKind::RequestBegin,
            LiveEventKind::RequestEnd,
            LiveEventKind::BatchConsumed,
            LiveEventKind::TierTransition,
            LiveEventKind::QueueDepth,
        ] {
            assert_eq!(LiveEventKind::from_code(kind.code()), Some(kind));
            assert_eq!(LiveEventKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(LiveEventKind::from_code(0), None);
        assert_eq!(LiveEventKind::from_name("nope"), None);
    }

    #[test]
    fn readers_racing_the_owner_never_see_a_torn_slot() {
        // the deployment shape: one owning writer thread, with
        // snapshots taken concurrently (e.g. the scrape endpoint)
        let ring = Arc::new(FlightRing::new(64));
        let writer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                for i in 0..50_000u64 {
                    ring.emit(LiveEventKind::BatchConsumed, i, i * 3, i * 1_000_003);
                }
            })
        };
        // every surviving event must be internally consistent (b and c
        // are functions of a), and seq numbers strictly increasing
        for _ in 0..500 {
            let snap = ring.snapshot();
            for w in snap.windows(2) {
                assert!(w[0].seq < w[1].seq, "snapshot out of order");
            }
            for ev in snap {
                assert_eq!(ev.kind, LiveEventKind::BatchConsumed);
                assert_eq!(ev.b, ev.a * 3, "torn slot leaked");
                assert_eq!(ev.c, ev.a * 1_000_003, "torn slot leaked");
            }
        }
        writer.join().unwrap();
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 64);
        assert_eq!(ring.written(), 50_000);
        let ids: Vec<u64> = snap.iter().map(|e| e.a).collect();
        assert_eq!(ids, (49_936..50_000).collect::<Vec<_>>());
    }
}
