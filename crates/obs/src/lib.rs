//! Unified observability layer for the TEST pipeline.
//!
//! Three pieces, all dependency-free:
//!
//! * [`metrics`] — a thread-safe [`Registry`] of named counters,
//!   gauges, and log₂-bucket histograms. Instruments are lock-free
//!   atomics behind `Arc`; the registry snapshots to sorted maps so
//!   two runs diff cleanly.
//! * [`span`] — nested span tracing over named tracks in two time
//!   domains (wall-clock microseconds and simulated analyzer cycles),
//!   with counter series and instant markers. Misnested spans panic.
//! * [`chrome`] — exports traces as Chrome trace-event JSON, loadable
//!   in Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`.
//!
//! [`Telemetry`] bundles one registry and one trace for threading
//! through a pipeline run. The naming scheme instrumented code uses is
//! documented in DESIGN.md §11; the short version:
//!
//! * `pipeline.stage.<NN>.<name>` — per-stage wall nanoseconds, `NN`
//!   preserving execution order
//! * `bus.*`, `bus.kind.<kind>`, `bus.sink.<i>.*` — trace-bus totals,
//!   per-event-kind counts, and per-sink delivery/lag/drop counters
//! * `tracer.*` — analyzer self-profiling: per-candidate event
//!   attribution (`tracer.analyzer_events.<loop>`) and structure
//!   watermarks
//!
//! [`Registry`]: metrics::Registry

pub mod chrome;
pub mod json;
pub mod metrics;
pub mod span;

pub use chrome::chrome_json;
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, Registry, Snapshot};
pub use span::{SpanGuard, TimeDomain, Trace, Track, TrackEvent, TrackEventKind, TrackId};

use std::sync::Arc;

/// One pipeline run's observability handles: a metrics registry plus a
/// span trace, cheaply cloneable and shareable across threads.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    /// Named counters/gauges/histograms for the run.
    pub registry: Arc<Registry>,
    /// Span/counter tracks for the run.
    pub trace: Arc<Trace>,
}

impl Telemetry {
    /// Fresh, empty telemetry.
    pub fn new() -> Telemetry {
        Telemetry::default()
    }

    /// Sorted snapshot of the registry.
    pub fn snapshot(&self) -> Snapshot {
        self.registry.snapshot()
    }
}
