//! Unified observability layer for the TEST pipeline.
//!
//! Six pieces, all dependency-free:
//!
//! * [`metrics`] — a thread-safe [`Registry`] of named counters,
//!   gauges, and log₂-bucket histograms. Instruments are lock-free
//!   atomics behind `Arc`; the registry snapshots to sorted maps so
//!   two runs diff cleanly.
//! * [`span`] — nested span tracing over named tracks in two time
//!   domains (wall-clock microseconds and simulated analyzer cycles),
//!   with counter series and instant markers. Misnested spans panic.
//! * [`chrome`] — exports traces as Chrome trace-event JSON, loadable
//!   in Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`.
//! * [`ring`] — the flight recorder: a fixed-capacity, lock-free ring
//!   of recent structured events, one per worker thread.
//! * [`live`] — streaming telemetry over the recorder: thread-local
//!   [`live::emit`], crash-forensic [`FlightDump`]s, tail-based
//!   request sampling, and alert rules over snapshot deltas.
//! * [`expo`] — Prometheus-style text exposition of a snapshot (and a
//!   parser for it), what the server's `/metrics` endpoint serves.
//!
//! [`Telemetry`] bundles one registry and one trace for threading
//! through a pipeline run. The naming scheme instrumented code uses is
//! documented in DESIGN.md §11; the short version:
//!
//! * `pipeline.stage.<NN>.<name>` — per-stage wall nanoseconds, `NN`
//!   preserving execution order
//! * `bus.*`, `bus.kind.<kind>`, `bus.sink.<i>.*` — trace-bus totals,
//!   per-event-kind counts, and per-sink delivery/lag/drop counters
//! * `tracer.*` — analyzer self-profiling: per-candidate event
//!   attribution (`tracer.analyzer_events.<loop>`) and structure
//!   watermarks
//!
//! [`Registry`]: metrics::Registry

pub mod chrome;
pub mod expo;
pub mod json;
pub mod live;
pub mod metrics;
pub mod ring;
pub mod span;

pub use chrome::chrome_json;
pub use live::{
    evaluate_alerts, AlertConfig, AlertNote, FlightDump, RequestTrace, TailConfig, TailSampler,
};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, Registry, Snapshot};
pub use ring::{FlightRing, LiveEvent, LiveEventKind};
pub use span::{SpanGuard, TimeDomain, Trace, Track, TrackEvent, TrackEventKind, TrackId};

use std::sync::Arc;

/// One pipeline run's observability handles: a metrics registry plus a
/// span trace, cheaply cloneable and shareable across threads.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    /// Named counters/gauges/histograms for the run.
    pub registry: Arc<Registry>,
    /// Span/counter tracks for the run.
    pub trace: Arc<Trace>,
}

impl Telemetry {
    /// Fresh, empty telemetry.
    pub fn new() -> Telemetry {
        Telemetry::default()
    }

    /// Sorted snapshot of the registry.
    pub fn snapshot(&self) -> Snapshot {
        self.registry.snapshot()
    }
}
