//! Prometheus-style text exposition of a registry [`Snapshot`], plus
//! a parser for it — the round-trip half is what lets the serve tests
//! scrape `/metrics` and assert byte-level agreement with
//! [`crate::metrics::Registry::snapshot`].
//!
//! The format is the classic text exposition: a `# TYPE` line per
//! metric family, then one sample per line. Metric names are the
//! registry's dotted names with every non-`[a-zA-Z0-9_]` character
//! mapped to `_` (so `serve.worker.0.requests` scrapes as
//! `serve_worker_0_requests`). Histograms emit cumulative `le`
//! buckets keyed by the log₂ bucket's inclusive upper bound, plus
//! `_sum`/`_count`. Registry notes are carried as `# NOTE <name>
//! <value>` comment lines — outside the Prometheus data model but
//! preserved by [`parse_exposition`].

use std::collections::BTreeMap;

use crate::metrics::Snapshot;

/// Maps a registry name onto the Prometheus metric-name alphabet.
pub fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_alphanumeric() || c == '_' {
            if i == 0 && c.is_ascii_digit() {
                out.push('_');
            }
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Renders `snapshot` as Prometheus text exposition.
pub fn prometheus(snapshot: &Snapshot) -> String {
    let mut s = String::new();
    for (name, value) in &snapshot.counters {
        let m = sanitize(name);
        s.push_str(&format!("# TYPE {m} counter\n{m} {value}\n"));
    }
    for (name, value) in &snapshot.gauges {
        let m = sanitize(name);
        s.push_str(&format!("# TYPE {m} gauge\n{m} {value}\n"));
    }
    for (name, h) in &snapshot.histograms {
        let m = sanitize(name);
        s.push_str(&format!("# TYPE {m} histogram\n"));
        let mut cum = 0u64;
        for (_, hi, count) in h.nonzero() {
            cum += count;
            s.push_str(&format!("{m}_bucket{{le=\"{hi}\"}} {cum}\n"));
        }
        s.push_str(&format!("{m}_bucket{{le=\"+Inf\"}} {}\n", h.count));
        s.push_str(&format!("{m}_sum {}\n", h.sum));
        s.push_str(&format!("{m}_count {}\n", h.count));
    }
    for (name, value) in &snapshot.notes {
        // comment line: outside the data model, but the value survives
        // a round trip as long as it has no newlines (notes never do)
        s.push_str(&format!(
            "# NOTE {} {}\n",
            sanitize(name),
            value.replace('\n', " ")
        ));
    }
    s
}

/// One parsed histogram family.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExpoHistogram {
    /// Total observations (`_count`).
    pub count: u64,
    /// Sum of observations (`_sum`).
    pub sum: u64,
    /// Cumulative `(le label, count)` buckets in exposition order.
    pub buckets: Vec<(String, u64)>,
}

/// A parsed exposition document.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Exposition {
    /// Counter samples by (sanitized) name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge samples by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram families by name.
    pub histograms: BTreeMap<String, ExpoHistogram>,
    /// `# NOTE` comment payloads by name.
    pub notes: BTreeMap<String, String>,
}

/// Parses text exposition produced by [`prometheus`].
///
/// # Errors
///
/// A description of the first malformed line.
pub fn parse_exposition(text: &str) -> Result<Exposition, String> {
    let mut out = Exposition::default();
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let fail = |what: &str| Err(format!("line {}: {what}: {line}", lineno + 1));
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            match (it.next(), it.next()) {
                (Some(name), Some(ty)) => {
                    types.insert(name.to_string(), ty.to_string());
                }
                _ => return fail("malformed TYPE line"),
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("# NOTE ") {
            match rest.split_once(' ') {
                Some((name, value)) => {
                    out.notes.insert(name.to_string(), value.to_string());
                }
                None => {
                    out.notes.insert(rest.to_string(), String::new());
                }
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // other comments are legal and ignored
        }
        let Some((name_part, value_part)) = line.rsplit_once(' ') else {
            return fail("sample line without a value");
        };
        // histogram bucket sample: name_bucket{le="..."} value
        if let Some((name, labels)) = name_part.split_once('{') {
            let Some(family) = name.strip_suffix("_bucket") else {
                return fail("labelled sample that is not a _bucket");
            };
            let Some(le) = labels
                .strip_prefix("le=\"")
                .and_then(|l| l.strip_suffix("\"}"))
            else {
                return fail("bucket sample without an le label");
            };
            let cum: u64 = match value_part.parse() {
                Ok(v) => v,
                Err(_) => return fail("non-integer bucket count"),
            };
            let h = out.histograms.entry(family.to_string()).or_default();
            if le != "+Inf" {
                h.buckets.push((le.to_string(), cum));
            }
            continue;
        }
        let name = name_part;
        if let Some(family) = name.strip_suffix("_sum") {
            if types.get(family).map(String::as_str) == Some("histogram") {
                let sum = value_part
                    .parse()
                    .map_err(|_| format!("line {}: non-integer _sum: {line}", lineno + 1))?;
                out.histograms.entry(family.to_string()).or_default().sum = sum;
                continue;
            }
        }
        if let Some(family) = name.strip_suffix("_count") {
            if types.get(family).map(String::as_str) == Some("histogram") {
                let count = value_part
                    .parse()
                    .map_err(|_| format!("line {}: non-integer _count: {line}", lineno + 1))?;
                out.histograms.entry(family.to_string()).or_default().count = count;
                continue;
            }
        }
        match types.get(name).map(String::as_str) {
            Some("counter") => {
                let v: u64 = value_part
                    .parse()
                    .map_err(|_| format!("line {}: non-integer counter: {line}", lineno + 1))?;
                out.counters.insert(name.to_string(), v);
            }
            Some("gauge") => {
                let v: i64 = value_part
                    .parse()
                    .map_err(|_| format!("line {}: non-integer gauge: {line}", lineno + 1))?;
                out.gauges.insert(name.to_string(), v);
            }
            _ => return fail("sample without a preceding TYPE"),
        }
    }
    Ok(out)
}

/// Asserts that `expo` is exactly the exposition of `snapshot`:
/// every counter, gauge, histogram family, and note agrees. Returns
/// the mismatches (empty when they agree).
pub fn diff_against_snapshot(expo: &Exposition, snapshot: &Snapshot) -> Vec<String> {
    let mut out = Vec::new();
    for (name, &v) in &snapshot.counters {
        match expo.counters.get(&sanitize(name)) {
            Some(&e) if e == v => {}
            Some(&e) => out.push(format!("counter {name}: exposition {e}, snapshot {v}")),
            None => out.push(format!("counter {name} missing from the exposition")),
        }
    }
    if expo.counters.len() != snapshot.counters.len() {
        out.push(format!(
            "exposition has {} counters, snapshot {}",
            expo.counters.len(),
            snapshot.counters.len()
        ));
    }
    for (name, &v) in &snapshot.gauges {
        match expo.gauges.get(&sanitize(name)) {
            Some(&e) if e == v => {}
            Some(&e) => out.push(format!("gauge {name}: exposition {e}, snapshot {v}")),
            None => out.push(format!("gauge {name} missing from the exposition")),
        }
    }
    for (name, h) in &snapshot.histograms {
        let Some(e) = expo.histograms.get(&sanitize(name)) else {
            out.push(format!("histogram {name} missing from the exposition"));
            continue;
        };
        if e.count != h.count || e.sum != h.sum {
            out.push(format!(
                "histogram {name}: exposition count/sum {}/{}, snapshot {}/{}",
                e.count, e.sum, h.count, h.sum
            ));
        }
        let mut cum = 0u64;
        let expected: Vec<(String, u64)> = h
            .nonzero()
            .iter()
            .map(|(_, hi, c)| {
                cum += c;
                (hi.to_string(), cum)
            })
            .collect();
        if e.buckets != expected {
            out.push(format!("histogram {name}: bucket mismatch"));
        }
    }
    for (name, v) in &snapshot.notes {
        match expo.notes.get(&sanitize(name)) {
            Some(e) if e == &v.replace('\n', " ") => {}
            _ => out.push(format!("note {name} missing or changed in the exposition")),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    fn populated() -> Snapshot {
        let r = Registry::new();
        r.counter("serve.worker.0.requests").add(5);
        r.counter("serve.worker.1.requests").add(7);
        r.gauge("serve.queue.depth").set(-2);
        let h = r.histogram("serve.request.pipeline.latency_nanos");
        h.record(0);
        h.record(3);
        h.record(900);
        h.record(u64::MAX);
        r.note("serve.build", "jrpm 9");
        r.snapshot()
    }

    #[test]
    fn exposition_round_trips_and_agrees_with_the_snapshot() {
        let snap = populated();
        let text = prometheus(&snap);
        let expo = parse_exposition(&text).expect("exposition parses");
        assert_eq!(diff_against_snapshot(&expo, &snap), Vec::<String>::new());
        assert_eq!(expo.counters["serve_worker_0_requests"], 5);
        assert_eq!(expo.gauges["serve_queue_depth"], -2);
        let h = &expo.histograms["serve_request_pipeline_latency_nanos"];
        assert_eq!(h.count, 4);
        // cumulative buckets are monotone and end at the total count
        let mut prev = 0;
        for (_, c) in &h.buckets {
            assert!(*c >= prev);
            prev = *c;
        }
        assert_eq!(prev, h.count);
        assert_eq!(expo.notes["serve_build"], "jrpm 9");
    }

    #[test]
    fn sanitize_maps_onto_the_metric_alphabet() {
        assert_eq!(
            sanitize("serve.worker.0.requests"),
            "serve_worker_0_requests"
        );
        assert_eq!(sanitize("a-b c"), "a_b_c");
        assert_eq!(sanitize("0day"), "_0day");
        assert_eq!(sanitize(""), "_");
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse_exposition("lonely_sample 5").is_err(), "no TYPE");
        assert!(parse_exposition("# TYPE x counter\nx notanumber").is_err());
        assert!(
            parse_exposition("# TYPE x histogram\nx_bucket{ge=\"1\"} 2").is_err(),
            "wrong label"
        );
        assert!(parse_exposition("# TYPE x\n").is_err(), "truncated TYPE");
    }

    #[test]
    fn empty_snapshot_exposes_and_parses_as_empty() {
        let snap = Registry::new().snapshot();
        let expo = parse_exposition(&prometheus(&snap)).unwrap();
        assert_eq!(expo, Exposition::default());
    }
}
