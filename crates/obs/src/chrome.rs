//! Chrome trace-event JSON export.
//!
//! Serialises one or more [`Trace`]s into the Chrome trace-event
//! format (the `{"traceEvents": [...]}` flavour) loadable in Perfetto
//! (<https://ui.perfetto.dev>) or `chrome://tracing`.
//!
//! The format has a single time axis, but our traces carry two time
//! domains — wall-clock microseconds and simulated analyzer cycles —
//! so each named process is split into up to two trace *processes*:
//! `pid = 2i+1` holds its wall tracks and `pid = 2i+2` its cycle
//! tracks (labelled `"<name> [cycles]"`, with one simulated cycle
//! rendered as one microsecond). Tracks become threads with
//! `thread_name` metadata; spans map to `B`/`E`, counter series to
//! `C`, and point events to `i`.

use crate::json::quote;
use crate::span::{TimeDomain, Trace, TrackEventKind};

/// Renders named traces as a Chrome trace-event JSON document.
///
/// Each `(name, trace)` pair becomes one process (two, when it has
/// tracks in both time domains). Pass everything from a run in one
/// call so the viewer shows all tracks on a shared timeline.
pub fn chrome_json(processes: &[(&str, &Trace)]) -> String {
    let mut events: Vec<String> = Vec::new();
    for (i, (proc_name, trace)) in processes.iter().enumerate() {
        for domain in [TimeDomain::Wall, TimeDomain::Cycles] {
            let pid = match domain {
                TimeDomain::Wall => 2 * i + 1,
                TimeDomain::Cycles => 2 * i + 2,
            };
            let tracks: Vec<_> = trace
                .tracks()
                .into_iter()
                .filter(|t| t.domain == domain)
                .collect();
            if tracks.is_empty() {
                continue;
            }
            let label = match domain {
                TimeDomain::Wall => (*proc_name).to_string(),
                TimeDomain::Cycles => format!("{proc_name} [cycles]"),
            };
            events.push(meta(pid, 0, "process_name", &label));
            for (ti, track) in tracks.iter().enumerate() {
                let tid = ti + 1;
                events.push(meta(pid, tid, "thread_name", &track.name));
                for ev in &track.events {
                    events.push(match &ev.kind {
                        TrackEventKind::Begin(name) => format!(
                            r#"{{"name":{},"ph":"B","ts":{},"pid":{},"tid":{}}}"#,
                            quote(name),
                            ev.ts,
                            pid,
                            tid
                        ),
                        TrackEventKind::End(name) => format!(
                            r#"{{"name":{},"ph":"E","ts":{},"pid":{},"tid":{}}}"#,
                            quote(name),
                            ev.ts,
                            pid,
                            tid
                        ),
                        TrackEventKind::Counter(series, value) => format!(
                            r#"{{"name":{},"ph":"C","ts":{},"pid":{},"tid":{},"args":{{"value":{}}}}}"#,
                            quote(series),
                            ev.ts,
                            pid,
                            tid,
                            value
                        ),
                        TrackEventKind::Instant(name) => format!(
                            r#"{{"name":{},"ph":"i","ts":{},"pid":{},"tid":{},"s":"t"}}"#,
                            quote(name),
                            ev.ts,
                            pid,
                            tid
                        ),
                    });
                }
            }
        }
    }
    format!("{{\"traceEvents\":[\n{}\n]}}\n", events.join(",\n"))
}

// both the metadata kind and the payload name go through `quote` —
// every string embedded in the document is escaped, so span/track
// names carrying quotes, backslashes, or control characters cannot
// break the JSON (pinned by `adversarial_names_round_trip`)
fn meta(pid: usize, tid: usize, kind: &str, name: &str) -> String {
    format!(
        r#"{{"name":{},"ph":"M","pid":{},"tid":{},"args":{{"name":{}}}}}"#,
        quote(kind),
        pid,
        tid,
        quote(name)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn export_parses_back_with_both_domains() {
        let tr = Trace::new();
        let w = tr.track("pipeline");
        tr.begin(w, "extract");
        tr.end(w, "extract");
        let c = tr.cycle_track("tracer");
        tr.counter_at(c, "fifo_depth", 500, 3);
        tr.instant_at(c, "overflow", 700);

        let doc = chrome_json(&[("bench", &tr)]);
        let parsed = json::parse(&doc).expect("valid JSON");
        let events = parsed
            .get("traceEvents")
            .and_then(|v| v.as_arr())
            .expect("traceEvents array");

        // metadata names both processes
        let proc_names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("name").and_then(|n| n.as_str()) == Some("process_name"))
            .map(|e| {
                e.get("args")
                    .unwrap()
                    .get("name")
                    .unwrap()
                    .as_str()
                    .unwrap()
            })
            .collect();
        assert_eq!(proc_names, vec!["bench", "bench [cycles]"]);

        // wall B/E pair on pid 1, cycle events on pid 2
        let phs: Vec<(&str, u64)> = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) != Some("M"))
            .map(|e| {
                (
                    e.get("ph").unwrap().as_str().unwrap(),
                    e.get("pid").unwrap().as_u64().unwrap(),
                )
            })
            .collect();
        assert_eq!(phs[0].0, "B");
        assert_eq!(phs[1].0, "E");
        assert_eq!(phs[0].1, 1);
        assert_eq!(phs[2], ("C", 2));
        assert_eq!(phs[3], ("i", 2));

        // cycle timestamps are verbatim
        let counter = events
            .iter()
            .find(|e| e.get("ph").and_then(|p| p.as_str()) == Some("C"))
            .unwrap();
        assert_eq!(counter.get("ts").unwrap().as_u64(), Some(500));
        assert_eq!(
            counter.get("args").unwrap().get("value").unwrap().as_u64(),
            Some(3)
        );
    }

    #[test]
    fn adversarial_names_round_trip() {
        // span, counter, instant, track, and process names carrying
        // quotes, backslashes, newlines, and control characters must
        // survive export → parse byte-for-byte
        let hostile = "sp\"an \\ with\nnew\tline \u{1} end";
        let track_name = "track \"q\" \\ \r\u{7}";
        let proc_name = "proc\\\"ess\n";
        let tr = Trace::new();
        let t = tr.track(track_name);
        tr.begin(t, hostile);
        tr.end(t, hostile);
        tr.instant(t, hostile);
        let c = tr.cycle_track(track_name);
        tr.counter_at(c, hostile, 10, 42);

        let doc = chrome_json(&[(proc_name, &tr)]);
        let parsed = json::parse(&doc).expect("hostile names stay valid JSON");
        let events = parsed.get("traceEvents").and_then(|v| v.as_arr()).unwrap();

        let meta_names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("M"))
            .map(|e| {
                e.get("args")
                    .unwrap()
                    .get("name")
                    .unwrap()
                    .as_str()
                    .unwrap()
            })
            .collect();
        assert!(meta_names.contains(&proc_name), "{meta_names:?}");
        assert!(meta_names.contains(&track_name));
        assert!(
            meta_names.contains(&format!("{proc_name} [cycles]").as_str()),
            "cycle process label escaped"
        );
        let span_names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) != Some("M"))
            .map(|e| e.get("name").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(span_names, vec![hostile; 4]);
    }

    #[test]
    fn empty_trace_exports_an_empty_event_list() {
        let tr = Trace::new();
        let doc = chrome_json(&[("empty", &tr)]);
        let parsed = json::parse(&doc).expect("valid JSON");
        assert_eq!(
            parsed.get("traceEvents").unwrap().as_arr().unwrap().len(),
            0
        );
    }
}
