//! A minimal JSON reader/writer.
//!
//! The workspace deliberately carries no serialization dependency; the
//! observability layer needs just enough JSON to *write* Chrome trace
//! and metrics documents and to *read them back* — for the parse-back
//! integration tests and the snapshot regression gate. The parser
//! accepts standard JSON (objects, arrays, strings with escapes,
//! numbers, booleans, null); it is not a validator of exotic inputs.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as f64; integers up to 2^53 are exact, which
    /// covers every count the observability layer writes).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object (sorted by key).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Member of an object, if this is an object and the key exists.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number as f64, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as u64, if this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }
}

/// A parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub msg: String,
    /// Byte offset into the input.
    pub at: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses a JSON document.
///
/// # Errors
///
/// [`ParseError`] on malformed input or trailing garbage.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

/// Maximum container nesting the recursive parser accepts. Deeper
/// documents return a typed [`ParseError`] instead of overflowing the
/// stack; nothing the observability layer writes comes anywhere near
/// this.
pub const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            msg: msg.to_string(),
            at: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn enter(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err("nesting deeper than MAX_DEPTH"));
        }
        Ok(())
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("malformed number"))
    }

    /// Reads the 4 hex digits of a `\u` escape. On entry `pos` is at
    /// the `u`; on success it is left at the last hex digit (the
    /// caller's shared `pos += 1` then steps past it).
    fn hex4(&mut self) -> Result<u32, ParseError> {
        if self.pos + 4 >= self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
            .map_err(|_| self.err("non-ascii \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let code = self.hex4()?;
                            if (0xD800..0xDC00).contains(&code) {
                                // high surrogate: a \uXXXX low surrogate
                                // must follow to complete the pair
                                if self.bytes.get(self.pos + 1) != Some(&b'\\')
                                    || self.bytes.get(self.pos + 2) != Some(&b'u')
                                {
                                    return Err(self.err("unpaired high surrogate"));
                                }
                                self.pos += 2;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                out.push(
                                    char::from_u32(c)
                                        .ok_or_else(|| self.err("surrogate pair out of range"))?,
                                );
                            } else if (0xDC00..0xE000).contains(&code) {
                                return Err(self.err("unpaired low surrogate"));
                            } else {
                                out.push(
                                    char::from_u32(code)
                                        .ok_or_else(|| self.err("bad \\u escape"))?,
                                );
                            }
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // copy one UTF-8 scalar
                    let s = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        self.enter()?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Arr(out));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        self.enter()?;
        let mut out = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            out.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Obj(out));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Escapes and quotes a string for embedding in JSON output.
pub fn quote(v: &str) -> String {
    let mut out = String::with_capacity(v.len() + 2);
    out.push('"');
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a": [1, 2.5, -3], "b": {"c": "x\ny"}, "d": true, "e": null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("d"), Some(&Value::Bool(true)));
        assert_eq!(v.get("e"), Some(&Value::Null));
    }

    #[test]
    fn quote_roundtrips_through_parse() {
        for s in ["plain", "with \"quotes\"", "tab\there", "back\\slash", ""] {
            let q = quote(s);
            assert_eq!(parse(&q).unwrap().as_str(), Some(s), "{q}");
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn large_integers_in_range_are_exact() {
        let v = parse("9007199254740992").unwrap(); // 2^53
        assert_eq!(v.as_u64(), Some(1 << 53));
    }

    #[test]
    fn escaped_unicode_including_surrogate_pairs() {
        assert_eq!(parse("\"\\u00e9\"").unwrap().as_str(), Some("é"));
        assert_eq!(parse("\"A\\u00df\\u4e2d\"").unwrap().as_str(), Some("Aß中"));
        // a surrogate pair decodes to one astral-plane scalar
        assert_eq!(parse("\"\\ud83d\\ude00\"").unwrap().as_str(), Some("😀"));
        assert_eq!(
            parse("\"pre \\ud834\\udd1e post\"").unwrap().as_str(),
            Some("pre \u{1D11E} post")
        );
        // unpaired or malformed surrogates are typed errors
        for bad in [
            "\"\\ud83d\"",        // lone high surrogate
            "\"\\ud83dA\"",       // high followed by a raw char
            "\"\\ude00\"",        // lone low surrogate
            "\"\\ud83d\\u0041\"", // high followed by a non-surrogate escape
        ] {
            assert!(parse(bad).is_err(), "{bad}");
        }
        // raw (unescaped) astral characters still pass through
        assert_eq!(parse("\"😀\"").unwrap().as_str(), Some("😀"));
    }

    #[test]
    fn deep_nesting_is_a_typed_error_not_a_stack_overflow() {
        // within the limit: parses fine
        let ok_depth = MAX_DEPTH;
        let doc = format!("{}1{}", "[".repeat(ok_depth), "]".repeat(ok_depth));
        assert!(parse(&doc).is_ok(), "depth {ok_depth} should parse");
        // one past the limit: typed error
        let doc = format!("{}1{}", "[".repeat(ok_depth + 1), "]".repeat(ok_depth + 1));
        let err = parse(&doc).expect_err("over-deep array rejected");
        assert!(err.msg.contains("MAX_DEPTH"), "{err}");
        // pathological input that would previously overflow the stack
        let doc = "[".repeat(100_000);
        assert!(parse(&doc).is_err());
        // mixed object/array nesting counts against the same budget
        let doc = format!("{}1{}", r#"{"k":["#.repeat(70), "]}".repeat(70));
        let err = parse(&doc).expect_err("140 mixed levels rejected");
        assert!(err.msg.contains("MAX_DEPTH"), "{err}");
    }

    #[test]
    fn truncated_input_returns_typed_errors_never_panics() {
        let full = r#"{"a": [1, {"b": "text é"}, true], "c": null}"#;
        // every prefix of a valid document must fail cleanly (or parse,
        // for prefixes that happen to be complete values)
        for cut in 0..full.len() {
            if !full.is_char_boundary(cut) {
                continue;
            }
            let _ = parse(&full[..cut]); // must not panic
        }
        for bad in [
            "",
            "{",
            "[",
            "\"",
            "{\"a\"",
            "{\"a\":",
            "[1,",
            "tru",
            "nul",
            "-",
            "\"\\",
            "\"\\u",
            "\"\\u00",
            "\"\\ud83d\\u",
        ] {
            let err = parse(bad).expect_err(bad);
            assert!(!err.msg.is_empty());
            assert!(err.at <= bad.len());
        }
    }
}
