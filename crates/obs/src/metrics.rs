//! Thread-safe metrics: counters, gauges, log₂-bucket histograms, and
//! the [`Registry`] that names them.
//!
//! All instruments are lock-free atomics behind `Arc`, so sink threads
//! of a trace bus can increment them while the interpreter produces
//! events. The registry itself takes a mutex only on registration and
//! on [`Registry::snapshot`], never on the hot increment path: callers
//! register once, keep the `Arc`, and hammer it.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of histogram buckets: one for zero plus one per power of two
/// up to `u64::MAX`.
pub const N_BUCKETS: usize = 65;

/// A monotone event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n` to the counter (saturating at `u64::MAX`).
    #[inline]
    pub fn add(&self, n: u64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(n);
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(now) => cur = now,
            }
        }
    }

    /// Increments the counter by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Sets the counter to `max(current, v)` — a watermark update.
    pub fn record_max(&self, v: u64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        while cur < v {
            match self
                .0
                .compare_exchange_weak(cur, v, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(now) => cur = now,
            }
        }
    }
}

/// A last-write-wins signed value.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjusts the gauge by `delta` (wrapping; gauges are small).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A histogram with log₂ buckets: bucket 0 holds the value 0, bucket
/// `i` (1 ≤ i ≤ 64) holds values in `[2^(i-1), 2^i)` — the last bucket
/// is closed at `u64::MAX`.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; N_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// The bucket index a value lands in.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive `(lo, hi)` bounds of bucket `i`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    match i {
        0 => (0, 0),
        64 => (1 << 63, u64::MAX),
        _ => (1 << (i - 1), (1 << i) - 1),
    }
}

impl Histogram {
    /// Records one observation.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // saturating add: huge observations must not wrap the sum
        let mut cur = self.sum.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(v);
            match self
                .sum
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(now) => cur = now,
            }
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// A consistent-enough copy for reporting.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
        }
    }
}

/// Point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of observations (saturating).
    pub sum: u64,
    /// Per-bucket observation counts (see [`bucket_bounds`]).
    pub buckets: [u64; N_BUCKETS],
}

impl HistogramSnapshot {
    /// Estimates the `q`-quantile (`q` clamped to `[0, 1]`) of the
    /// recorded distribution.
    ///
    /// Semantics match taking the rank `q * (count - 1)` element of
    /// the sorted observations, except that positions inside a log₂
    /// bucket are linearly interpolated between the bucket's bounds —
    /// so the estimate is continuous as the distribution shifts
    /// across bucket edges and exact for single-value buckets (0 and
    /// 1). Returns 0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // clamp propagates NaN, and a NaN rank fails every comparison
        // below, silently falling through to the top bucket — pin NaN
        // to 0 instead
        let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
        let target = q * (self.count - 1) as f64; // fractional rank
        let mut cum = 0u64; // observations in buckets before this one
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            // this bucket covers sorted ranks [cum, cum + c)
            if target < (cum + c) as f64 {
                // the top bucket spans half the u64 range, where the
                // f64 width rounds *up* past 2^63 − 1: saturate rather
                // than let `lo + offset` wrap past `hi`
                let (lo, hi) = bucket_bounds(i);
                let pos = (target - cum as f64) / c as f64; // [0, 1)
                let off = ((hi - lo) as f64 * pos).round() as u64;
                return lo.saturating_add(off).min(hi);
            }
            cum += c;
        }
        // count > 0 guarantees some bucket matched; this is only
        // reachable through float rounding at q = 1.0
        let last = self.buckets.iter().rposition(|&c| c > 0).unwrap_or(0);
        bucket_bounds(last).1
    }

    /// `(lo, hi, count)` for every non-empty bucket.
    pub fn nonzero(&self) -> Vec<(u64, u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = bucket_bounds(i);
                (lo, hi, c)
            })
            .collect()
    }
}

#[derive(Debug, Default)]
struct Instruments {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Arc<Histogram>>,
    notes: BTreeMap<String, String>,
}

/// A named collection of instruments. Cheap to share (`Arc<Registry>`),
/// cheap to increment (atomics), snapshottable to sorted maps.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<Instruments>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut g = self.inner.lock().expect("registry poisoned");
        g.counters.entry(name.to_string()).or_default().clone()
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut g = self.inner.lock().expect("registry poisoned");
        g.gauges.entry(name.to_string()).or_default().clone()
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut g = self.inner.lock().expect("registry poisoned");
        g.histograms.entry(name.to_string()).or_default().clone()
    }

    /// Attaches a string annotation (labels, names — anything that is
    /// not a number but belongs with the metrics).
    pub fn note(&self, name: &str, value: impl Into<String>) {
        let mut g = self.inner.lock().expect("registry poisoned");
        g.notes.insert(name.to_string(), value.into());
    }

    /// Sorted point-in-time copy of every instrument.
    pub fn snapshot(&self) -> Snapshot {
        let g = self.inner.lock().expect("registry poisoned");
        Snapshot {
            counters: g
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: g.gauges.iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            histograms: g
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
            notes: g.notes.clone(),
        }
    }
}

/// Point-in-time copy of a [`Registry`], sorted by name so two
/// snapshots diff cleanly.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// String annotations by name.
    pub notes: BTreeMap<String, String>,
}

impl Snapshot {
    /// Counter value, or 0 when absent. Prefer [`Snapshot::try_counter`]
    /// anywhere a missing key should be an error rather than a
    /// phantom zero (regression gates, baselines).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Counter value, or `None` when no counter of that name was ever
    /// registered.
    pub fn try_counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// Note value, or "" when absent. Prefer [`Snapshot::try_note`]
    /// where absence should fail loudly.
    pub fn note(&self, name: &str) -> &str {
        self.notes.get(name).map(String::as_str).unwrap_or("")
    }

    /// Note value, or `None` when absent.
    pub fn try_note(&self, name: &str) -> Option<&str> {
        self.notes.get(name).map(String::as_str)
    }

    /// The snapshot as a JSON document (sorted keys; no dependencies).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        s.push_str("\"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("{}: {v}", crate::json::quote(k)));
        }
        s.push_str("}, \"gauges\": {");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("{}: {v}", crate::json::quote(k)));
        }
        s.push_str("}, \"histograms\": {");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!(
                "{}: {{\"count\": {}, \"sum\": {}, \"buckets\": [",
                crate::json::quote(k),
                h.count,
                h.sum
            ));
            for (j, (lo, hi, c)) in h.nonzero().iter().enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                s.push_str(&format!("[{lo}, {hi}, {c}]"));
            }
            s.push_str("]}");
        }
        s.push_str("}, \"notes\": {");
        for (i, (k, v)) in self.notes.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!(
                "{}: {}",
                crate::json::quote(k),
                crate::json::quote(v)
            ));
        }
        s.push_str("}}");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bucket_boundaries() {
        // 0 is its own bucket
        assert_eq!(bucket_index(0), 0);
        // 1 = 2^0 opens bucket 1
        assert_eq!(bucket_index(1), 1);
        // powers of two open a new bucket; one less stays below
        for i in 1..=63u32 {
            let p = 1u64 << i;
            assert_eq!(bucket_index(p), i as usize + 1, "2^{i}");
            assert_eq!(bucket_index(p - 1), i as usize, "2^{i}-1");
        }
        // the top bucket is closed at u64::MAX
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_bounds(64), (1 << 63, u64::MAX));
        assert_eq!(bucket_bounds(0), (0, 0));
        assert_eq!(bucket_bounds(1), (1, 1));
        assert_eq!(bucket_bounds(5), (16, 31));
    }

    #[test]
    fn histogram_records_extremes_without_wrapping() {
        let h = Histogram::default();
        h.record(0);
        h.record(1);
        h.record(u64::MAX);
        h.record(u64::MAX); // sum saturates, never wraps
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, u64::MAX);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[1], 1);
        assert_eq!(s.buckets[64], 2);
        assert_eq!(s.nonzero().len(), 3);
    }

    #[test]
    fn quantile_on_known_distributions() {
        // empty histogram: 0 at every quantile
        assert_eq!(
            HistogramSnapshot {
                count: 0,
                sum: 0,
                buckets: [0; N_BUCKETS]
            }
            .quantile(0.5),
            0
        );
        // single-value buckets are exact
        let h = Histogram::default();
        for _ in 0..100 {
            h.record(1);
        }
        let s = h.snapshot();
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(s.quantile(q), 1, "q={q}");
        }
        // all zeros
        let h = Histogram::default();
        h.record(0);
        h.record(0);
        assert_eq!(h.snapshot().quantile(0.9), 0);
        // uniform 1..=1000: interpolation lands near the exact ranks
        let h = Histogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        let p50 = s.quantile(0.50);
        let p99 = s.quantile(0.99);
        assert!((450..=550).contains(&p50), "p50 estimate {p50}");
        assert!((940..=1023).contains(&p99), "p99 estimate {p99}");
        // extremes pin to the distribution's ends
        assert_eq!(s.quantile(0.0), 1);
        assert!(s.quantile(1.0) >= 990, "max estimate {}", s.quantile(1.0));
        // monotone in q
        let mut prev = 0;
        for i in 0..=20 {
            let v = s.quantile(i as f64 / 20.0);
            assert!(v >= prev, "quantile not monotone at {i}");
            prev = v;
        }
        // out-of-range q clamps instead of panicking
        assert_eq!(s.quantile(-3.0), s.quantile(0.0));
        assert_eq!(s.quantile(7.0), s.quantile(1.0));
        // two-point distribution: q interpolates between the buckets
        let h = Histogram::default();
        h.record(1);
        h.record(1024);
        let s = h.snapshot();
        assert_eq!(s.quantile(0.0), 1);
        assert_eq!(s.quantile(1.0), 1024);
    }

    #[test]
    fn quantile_edge_cases() {
        // empty: every q (including NaN and infinities) reads 0
        let empty = HistogramSnapshot {
            count: 0,
            sum: 0,
            buckets: [0; N_BUCKETS],
        };
        for q in [0.0, 0.5, 1.0, -1.0, 2.0, f64::NAN, f64::INFINITY] {
            assert_eq!(empty.quantile(q), 0, "empty at q={q}");
        }
        // single sample: every finite q reads the one observation's
        // bucket, and NaN pins to q=0 instead of falling through
        let h = Histogram::default();
        h.record(7); // bucket 3 = [4, 7]
        let s = h.snapshot();
        for q in [0.0, 0.25, 0.5, 1.0, f64::NAN, f64::NEG_INFINITY] {
            assert_eq!(s.quantile(q), 4, "single sample at q={q}");
        }
        assert_eq!(s.quantile(f64::INFINITY), 4);
        // saturated top bucket: [2^63, u64::MAX] is wider than f64 can
        // represent exactly, so the interpolation must saturate at the
        // bucket's upper bound instead of wrapping past it
        let mut buckets = [0u64; N_BUCKETS];
        buckets[64] = u64::MAX;
        let top = HistogramSnapshot {
            count: u64::MAX,
            sum: u64::MAX,
            buckets,
        };
        let (lo, hi) = bucket_bounds(64);
        for q in [0.0, 0.5, 0.999_999_999, 1.0] {
            let v = top.quantile(q);
            assert!((lo..=hi).contains(&v), "top bucket at q={q} gave {v}");
        }
        assert_eq!(top.quantile(0.0), lo);
        assert_eq!(top.quantile(1.0), hi);
    }

    #[test]
    fn try_counter_and_try_note_distinguish_absent_keys() {
        let r = Registry::new();
        r.counter("present").add(0); // registered, value 0
        r.note("label", "x");
        let s = r.snapshot();
        assert_eq!(s.try_counter("present"), Some(0));
        assert_eq!(s.try_counter("absent"), None);
        assert_eq!(s.counter("absent"), 0); // legacy phantom zero
        assert_eq!(s.try_note("label"), Some("x"));
        assert_eq!(s.try_note("missing"), None);
    }

    #[test]
    fn counter_saturates_and_watermarks() {
        let c = Counter::default();
        c.add(u64::MAX - 1);
        c.add(5);
        assert_eq!(c.get(), u64::MAX);
        let w = Counter::default();
        w.record_max(7);
        w.record_max(3);
        assert_eq!(w.get(), 7);
    }

    #[test]
    fn registry_returns_the_same_instrument_per_name() {
        let r = Registry::new();
        r.counter("a").inc();
        r.counter("a").inc();
        r.gauge("g").set(-3);
        r.histogram("h").record(4);
        r.note("label", "x");
        let s = r.snapshot();
        assert_eq!(s.counter("a"), 2);
        assert_eq!(s.gauges["g"], -3);
        assert_eq!(s.histograms["h"].count, 1);
        assert_eq!(s.note("label"), "x");
        assert_eq!(s.counter("missing"), 0);
    }

    #[test]
    fn concurrent_counter_increments_from_threads() {
        let r = Arc::new(Registry::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let r = Arc::clone(&r);
            handles.push(std::thread::spawn(move || {
                let c = r.counter("shared");
                let h = r.histogram("sizes");
                for i in 0..10_000u64 {
                    c.inc();
                    h.record(i % 37);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = r.snapshot();
        assert_eq!(s.counter("shared"), 80_000);
        assert_eq!(s.histograms["sizes"].count, 80_000);
    }

    #[test]
    fn snapshot_json_is_sorted_and_balanced() {
        let r = Registry::new();
        r.counter("b.two").add(2);
        r.counter("a.one").add(1);
        r.note("z", "last");
        let j = r.snapshot().to_json();
        let a = j.find("a.one").unwrap();
        let b = j.find("b.two").unwrap();
        assert!(a < b, "keys sorted: {j}");
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        // and it parses back
        let v = crate::json::parse(&j).unwrap();
        assert_eq!(
            v.get("counters")
                .and_then(|c| c.get("a.one"))
                .unwrap()
                .as_u64(),
            Some(1)
        );
    }
}
