//! Annotation-pass edge cases: loops with breaks, continues,
//! multi-level exits and loop-entry branches must get exactly one
//! `sloop`/`eloop` pair per dynamic entry and one `eoi` per completed
//! iteration, on every path.

use jrpm::annotate::{annotate, AnnotateOptions};
use tvm::trace::CountingSink;
use tvm::{Cond, ElemKind, Interp, NullSink, Program, ProgramBuilder};

fn run_counted(p: &Program) -> (CountingSink, Option<tvm::Value>) {
    let cands = cfgir::extract_candidates(p);
    let ann = annotate(p, &cands, &AnnotateOptions::profiling()).unwrap();
    let plain = Interp::run(p, &mut NullSink).unwrap();
    let mut sink = CountingSink::default();
    let r = Interp::run(&ann, &mut sink).unwrap();
    assert_eq!(plain.ret, r.ret, "annotation changed semantics");
    (sink, r.ret)
}

/// `for i in 0..100 { work; if a[i] == 3 { break } }` — break at i=3.
#[test]
fn break_exits_fire_one_eloop() {
    let mut b = ProgramBuilder::new();
    let main = b.function("main", 0, true, |f| {
        let (a, i) = (f.local(), f.local());
        f.ci(128).newarray(ElemKind::Int).st(a);
        f.for_in(i, 0.into(), 128.into(), |f| {
            f.arr_set(
                a,
                |f| {
                    f.ld(i);
                },
                |f| {
                    f.ld(i);
                },
            );
        });
        let exit = f.new_label();
        f.for_in(i, 0.into(), 100.into(), |f| {
            f.arr_get(a, |f| {
                f.ld(i);
            })
            .ci(3)
            .br_icmp(Cond::Eq, exit);
        });
        f.bind(exit);
        f.ld(i).ret();
    });
    let p = b.finish(main).unwrap();
    let (sink, ret) = run_counted(&p);
    assert_eq!(ret.unwrap().as_int().unwrap(), 3);
    // two loops, each entered once; the second leaves via the break
    assert_eq!(sink.loop_enters, 2);
    assert_eq!(sink.loop_exits, 2);
    // fill loop: 128 iterations; search loop: 3 completed back edges
    assert_eq!(sink.loop_iters, 128 + 3);
}

/// continue-style back edge: the `eoi` must still fire each iteration.
#[test]
fn continue_paths_count_iterations() {
    let mut b = ProgramBuilder::new();
    let main = b.function("main", 0, true, |f| {
        let (a, i, n) = (f.local(), f.local(), f.local());
        f.ci(64).newarray(ElemKind::Int).st(a);
        f.ci(0).st(n);
        // while-style loop with an early back-jump (continue)
        let head = f.new_label();
        let cont = f.new_label();
        let exit = f.new_label();
        f.ci(0).st(i);
        f.bind(head);
        f.ld(i).ci(40).br_icmp(Cond::Ge, exit);
        f.inc(i, 1);
        // if i % 2 == 1 continue
        f.ld(i).ci(1).iand().ci(1).br_icmp(Cond::Eq, cont);
        f.arr_set(
            a,
            |f| {
                f.ld(i).ci(63).iand();
            },
            |f| {
                f.ld(i);
            },
        );
        f.inc(n, 1);
        f.bind(cont);
        f.goto(head);
        f.bind(exit);
        f.ld(n).ret();
    });
    let p = b.finish(main).unwrap();
    let (sink, ret) = run_counted(&p);
    assert_eq!(ret.unwrap().as_int().unwrap(), 20);
    assert_eq!(sink.loop_enters, 1);
    assert_eq!(sink.loop_exits, 1);
    assert_eq!(sink.loop_iters, 40, "every iteration, continue or not");
}

/// A branch out of BOTH levels of a nest must close both loops
/// (inner `eloop` before outer `eloop`).
#[test]
fn double_break_closes_both_loops() {
    let mut b = ProgramBuilder::new();
    let main = b.function("main", 0, true, |f| {
        let (a, i, j, found) = (f.local(), f.local(), f.local(), f.local());
        f.ci(64).newarray(ElemKind::Int).st(a);
        f.arr_set(
            a,
            |f| {
                f.ci(37);
            },
            |f| {
                f.ci(1);
            },
        );
        f.ci(-1).st(found);
        let done = f.new_label();
        f.for_in(i, 0.into(), 8.into(), |f| {
            f.for_in(j, 0.into(), 8.into(), |f| {
                f.if_icmp(
                    Cond::Ne,
                    |f| {
                        f.arr_get(a, |f| {
                            f.ld(i).ci(8).imul().ld(j).iadd();
                        })
                        .ci(0);
                    },
                    |f| {
                        f.ld(i).ci(8).imul().ld(j).iadd().st(found);
                        f.goto(done);
                    },
                );
            });
        });
        f.bind(done);
        f.ld(found).ret();
    });
    let p = b.finish(main).unwrap();
    let (sink, ret) = run_counted(&p);
    assert_eq!(ret.unwrap().as_int().unwrap(), 37);
    // outer entered once; inner entered 5 times (i = 0..4, found at
    // i=4,j=5); both exits fire even on the double break
    assert_eq!(sink.loop_enters, 1 + 5);
    assert_eq!(sink.loop_exits, 1 + 5, "double break must close both");
    // completed iterations: inner 8*4 + 5, outer 4
    assert_eq!(sink.loop_iters, 32 + 5 + 4);
}

/// A loop whose body returns from the function mid-iteration.
#[test]
fn return_from_nest_closes_all_banks() {
    let mut b = ProgramBuilder::new();
    let helper = b.function("find", 1, true, |f| {
        let a = f.param(0);
        let (i, j) = (f.local(), f.local());
        f.for_in(i, 0.into(), 8.into(), |f| {
            f.for_in(j, 0.into(), 8.into(), |f| {
                f.if_icmp(
                    Cond::Eq,
                    |f| {
                        f.arr_get(a, |f| {
                            f.ld(i).ci(8).imul().ld(j).iadd();
                        })
                        .ci(7);
                    },
                    |f| {
                        f.ld(i).ret();
                    },
                );
            });
        });
        f.ci(-1).ret();
    });
    let main = b.function("main", 0, true, |f| {
        let (a, i) = (f.local(), f.local());
        f.ci(64).newarray(ElemKind::Int).st(a);
        f.for_in(i, 0.into(), 64.into(), |f| {
            f.arr_set(
                a,
                |f| {
                    f.ld(i);
                },
                |f| {
                    f.ld(i).ci(13).irem();
                },
            );
        });
        f.ld(a).call(helper).ret();
    });
    let p = b.finish(main).unwrap();
    let (sink, ret) = run_counted(&p);
    assert_eq!(ret.unwrap().as_int().unwrap(), 0); // a[7] == 7
                                                   // fill loop 1 + helper outer 1 + helper inner 1 (returns in i=0)
    assert_eq!(sink.loop_enters, 3);
    assert_eq!(sink.loop_exits, 3, "return must close the whole nest");
}

/// Loops entered from two different predecessors (if/else joining at
/// the loop header) still get exactly one sloop per entry.
#[test]
fn multiple_entry_edges_fire_one_sloop() {
    let mut b = ProgramBuilder::new();
    let g = b.global(ElemKind::Int);
    let main = b.function("main", 0, true, |f| {
        let (i, s) = (f.local(), f.local());
        // set starting point via a branch: both arms enter the loop
        f.if_else_icmp(
            Cond::Eq,
            |f| {
                f.getstatic(g).ci(0);
            },
            |f| {
                f.ci(2).st(i);
            },
            |f| {
                f.ci(5).st(i);
            },
        );
        f.ci(0).st(s);
        let head = f.new_label();
        let exit = f.new_label();
        f.bind(head);
        f.ld(i).ci(30).br_icmp(Cond::Ge, exit);
        // write-only global traffic: memory ops without a provable
        // cross-iteration RAW, so the static pre-screen keeps the loop
        f.ld(i).putstatic(g);
        f.ld(s).ld(i).iadd().st(s);
        f.inc(i, 1);
        f.goto(head);
        f.bind(exit);
        f.ld(s).ret();
    });
    let p = b.finish(main).unwrap();
    let (sink, ret) = run_counted(&p);
    assert_eq!(ret.unwrap().as_int().unwrap(), (2..30).sum::<i64>());
    assert_eq!(sink.loop_enters, 1);
    assert_eq!(sink.loop_exits, 1);
    assert_eq!(sink.loop_iters, 28);
}
