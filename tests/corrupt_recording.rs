//! Byte-level corruption fuzzing of the recording wire format against
//! the committed FourierTest fixture: every truncation, every
//! single-byte flip and a few thousand seeded random mutations must
//! parse or be rejected with a typed error — never panic.

use fuzzgen::corrupt::corruption_sweep;
use tvm::record::Recording;

const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/fixtures/fouriertest_small.trace"
);

#[test]
fn fixture_corruption_sweep_never_panics() {
    let bytes = std::fs::read(FIXTURE).expect("committed fixture");
    // the pristine fixture must of course still parse
    Recording::from_bytes(&bytes).expect("pristine fixture parses");
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let sweep = corruption_sweep(&bytes, 0xDEAD_BEEF, 2_000);
    std::panic::set_hook(prev_hook);
    let stats = sweep.unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(
        stats.attempts,
        bytes.len() as u64 * 4 + 2_000,
        "truncations + 3 flip patterns + random rounds"
    );
    assert!(stats.rejected > 0);
}

#[test]
fn empty_and_garbage_inputs_are_typed_errors() {
    assert!(Recording::from_bytes(&[]).is_err());
    assert!(Recording::from_bytes(b"not a recording").is_err());
    // huge declared event count must not preallocate unboundedly
    let mut b = b"TVMR\x01\x00".to_vec();
    b.extend_from_slice(&[0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F]);
    assert!(Recording::from_bytes(&b).is_err());
}
