//! Byte-level corruption fuzzing of the recording wire format against
//! the committed FourierTest fixture: every truncation, every
//! single-byte flip and a few thousand seeded random mutations must
//! parse or be rejected with a typed error — never panic.

use fuzzgen::corrupt::{corruption_sweep, mmap_sweep};
use tvm::record::{MappedRecording, Recording, RecordingError};

const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/fixtures/fouriertest_small.trace"
);

#[test]
fn fixture_corruption_sweep_never_panics() {
    let bytes = std::fs::read(FIXTURE).expect("committed fixture");
    // the pristine fixture must of course still parse
    Recording::from_bytes(&bytes).expect("pristine fixture parses");
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let sweep = corruption_sweep(&bytes, 0xDEAD_BEEF, 2_000);
    std::panic::set_hook(prev_hook);
    let stats = sweep.unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(
        stats.attempts,
        bytes.len() as u64 * 4 + 2_000,
        "truncations + 3 flip patterns + random rounds"
    );
    assert!(stats.rejected > 0);
}

/// The zero-copy mmap load path parses the same wire format from a
/// file the kernel hands over at face value, so it gets its own sweep:
/// header-boundary truncations, header bit flips, and random stream
/// mutations — never a panic, and always the same verdict as the
/// in-memory parser.
#[test]
fn fixture_mmap_sweep_never_panics_and_agrees_with_from_bytes() {
    let bytes = std::fs::read(FIXTURE).expect("committed fixture");
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let sweep = mmap_sweep(&bytes, 0xDEAD_BEEF, 500);
    std::panic::set_hook(prev_hook);
    let stats = sweep.unwrap_or_else(|e| panic!("{e}"));
    assert!(stats.parsed > 0, "benign mutations must still parse");
    assert!(stats.rejected > 0, "header corruption must be rejected");
}

/// Every truncation inside the header (magic + version + count varint)
/// of a real on-disk recording must come back as a typed error from
/// the mmap path, with the boundary cases naming the right variant.
#[test]
fn mapped_header_boundary_truncations_are_typed_errors() {
    let bytes = std::fs::read(FIXTURE).expect("committed fixture");
    let dir = std::env::temp_dir().join(format!("corrupt-recording-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("truncated.tvmr");
    for cut in 0..16.min(bytes.len()) {
        std::fs::write(&path, &bytes[..cut]).expect("write truncation");
        let err = MappedRecording::open(&path)
            .and_then(|m| m.view().and_then(|v| v.to_recording()))
            .expect_err("a header truncation must not parse");
        match (cut, &err) {
            // inside the magic: too short to even say "wrong magic"
            (0..=3, RecordingError::Truncated) => {}
            // magic complete, version or count cut off
            (4..=6, RecordingError::Truncated) => {}
            // count varint present but the declared events are missing
            (_, RecordingError::Truncated | RecordingError::CountTooLarge { .. }) => {}
            (_, other) => panic!("truncate to {cut}: unexpected error {other:?}"),
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn empty_and_garbage_inputs_are_typed_errors() {
    assert!(Recording::from_bytes(&[]).is_err());
    assert!(Recording::from_bytes(b"not a recording").is_err());
    // huge declared event count must not preallocate unboundedly
    let mut b = b"TVMR\x01\x00".to_vec();
    b.extend_from_slice(&[0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F]);
    assert!(Recording::from_bytes(&b).is_err());
}
