//! Integration: every Table 6 benchmark through the full pipeline.
//!
//! These tests assert the *shape* of the paper's results on the whole
//! suite at the reduced data size: annotation preserves semantics,
//! profiling slowdown stays minor, predictions track actual
//! speculative execution, and TEST finds real parallelism where the
//! paper's Figure 10 shows it.

use benchsuite::{all, by_name, DataSize};
use jrpm::annotate::{annotate, AnnotateOptions};
use jrpm::pipeline::{run_pipeline, PipelineConfig};
use tvm::{Interp, NullSink};

#[test]
fn annotation_preserves_semantics_on_every_benchmark() {
    for bench in all() {
        let program = (bench.build)(DataSize::Small);
        let plain = Interp::run(&program, &mut NullSink)
            .unwrap_or_else(|e| panic!("{} plain run failed: {e}", bench.name));
        let cands = cfgir::extract_candidates(&program);
        for opts in [AnnotateOptions::base(), AnnotateOptions::profiling()] {
            let ann = annotate(&program, &cands, &opts).unwrap();
            let r = Interp::run(&ann, &mut NullSink)
                .unwrap_or_else(|e| panic!("{} annotated run failed: {e}", bench.name));
            assert_eq!(
                plain.ret, r.ret,
                "{}: annotation changed the result",
                bench.name
            );
            assert!(
                r.cycles >= plain.cycles,
                "{}: annotations cannot be free",
                bench.name
            );
        }
    }
}

#[test]
fn full_pipeline_runs_on_every_benchmark() {
    let mut total_err = 0.0;
    let mut count = 0;
    for bench in all() {
        let program = (bench.build)(DataSize::Small);
        let r = run_pipeline(&program, &PipelineConfig::default())
            .unwrap_or_else(|e| panic!("{} pipeline failed: {e}", bench.name));
        assert!(
            r.candidates.total_loops() > 0,
            "{}: no loops found",
            bench.name
        );
        let pred = r.predicted_normalized();
        let act = r.actual_normalized();
        assert!(pred > 0.0 && pred <= 1.01, "{}: pred {pred}", bench.name);
        assert!(act > 0.0, "{}: act {act}", bench.name);
        total_err += (pred - act).abs();
        count += 1;
    }
    // Figure 11's headline: TEST's predictions are good
    let mean_err = total_err / f64::from(count);
    assert!(
        mean_err < 0.12,
        "mean |predicted-actual| too high: {mean_err:.3}"
    );
}

#[test]
fn profiling_slowdown_is_minor_across_the_suite() {
    // the paper's headline: 3-25% slowdown during analysis. Every
    // benchmark must stay inside the band (with a whisker of
    // measurement tolerance).
    let mut worst: f64 = 0.0;
    for bench in all() {
        let program = (bench.build)(DataSize::Small);
        let r = run_pipeline(&program, &PipelineConfig::default())
            .unwrap_or_else(|e| panic!("{} pipeline failed: {e}", bench.name));
        let slow = r.profiling_slowdown() - 1.0;
        assert!(
            slow < 0.27,
            "{}: profiling slowdown {:.1}% is beyond the paper's 3-25% band",
            bench.name,
            slow * 100.0
        );
        worst = worst.max(slow);
    }
    assert!(worst > 0.0, "annotations cannot be free");
}

#[test]
fn floating_point_suite_is_predicted_parallel() {
    // Figure 10: the floating point programs show large predicted
    // speedups
    for name in [
        "euler",
        "fft",
        "LuFactor",
        "moldyn",
        "shallow",
        "FourierTest",
    ] {
        let bench = by_name(name).unwrap();
        let program = (bench.build)(DataSize::Small);
        let r = run_pipeline(&program, &PipelineConfig::default()).unwrap();
        assert!(
            r.predicted_normalized() < 0.55,
            "{name}: predicted only {:.2}",
            r.predicted_normalized()
        );
    }
}

#[test]
fn serial_regions_limit_db_style_benchmarks() {
    // the paper: some programs (db, mp3, jess, jLex) have significant
    // serial execution not covered by any STL. Our db carries a
    // genuinely serial aggregation phase; it must stay unselected.
    let bench = by_name("db").unwrap();
    let program = (bench.build)(DataSize::Small);
    let r = run_pipeline(&program, &PipelineConfig::default()).unwrap();
    let coverage = r.selection.coverage();
    assert!(
        coverage < 0.95,
        "db: coverage {coverage:.2} should leave the aggregation serial"
    );
    // the serializing aggregation loop itself (tight t-1 arcs, short
    // lengths) must never be selected
    let serial_loop = r
        .profile
        .stl
        .iter()
        .filter(|(_, s)| s.threads > 100 && s.arc_freq_t1() > 0.9)
        .min_by(|a, b| {
            a.1.avg_arc_len_t1()
                .partial_cmp(&b.1.avg_arc_len_t1())
                .unwrap()
        })
        .map(|(l, _)| *l)
        .expect("db has a serializing loop");
    assert!(
        r.selection.chosen.iter().all(|c| c.loop_id != serial_loop),
        "the aggregation loop {serial_loop} must stay serial"
    );
}

#[test]
fn selection_is_deterministic() {
    let bench = by_name("Huffman").unwrap();
    let program = (bench.build)(DataSize::Small);
    let a = run_pipeline(&program, &PipelineConfig::default()).unwrap();
    let b = run_pipeline(&program, &PipelineConfig::default()).unwrap();
    let ids = |r: &jrpm::pipeline::PipelineReport| {
        r.selection
            .chosen
            .iter()
            .map(|c| c.loop_id)
            .collect::<Vec<_>>()
    };
    assert_eq!(ids(&a), ids(&b));
    assert_eq!(a.profile_cycles, b.profile_cycles);
    assert_eq!(a.actual.tls_cycles, b.actual.tls_cycles);
}

#[test]
fn data_sensitive_benchmarks_shift_selection_with_size() {
    // Table 6 column (b): programs whose best decomposition depends on
    // the data-set size. Growing the input must visibly change TEST's
    // view for at least half of the flagged programs — higher overflow
    // frequencies on outer loops and/or a different selected set.
    let sensitive: Vec<_> = all().into_iter().filter(|b| b.data_sensitive).collect();
    assert!(sensitive.len() >= 5);
    let mut shifted = 0;
    for bench in &sensitive {
        let small =
            run_pipeline(&(bench.build)(DataSize::Small), &PipelineConfig::default()).unwrap();
        let big = run_pipeline(
            &(bench.build)(DataSize::Default),
            &PipelineConfig::default(),
        )
        .unwrap();
        let max_ovf = |r: &jrpm::pipeline::PipelineReport| {
            r.profile
                .stl
                .values()
                .map(|s| s.overflow_freq())
                .fold(0.0f64, f64::max)
        };
        let sel = |r: &jrpm::pipeline::PipelineReport| {
            let mut v: Vec<_> = r
                .selection
                .chosen_above(0.005)
                .iter()
                .map(|c| c.loop_id)
                .collect();
            v.sort_unstable();
            v
        };
        if max_ovf(&big) > max_ovf(&small) + 0.2 || sel(&big) != sel(&small) {
            shifted += 1;
        }
    }
    assert!(
        shifted * 2 >= sensitive.len(),
        "only {shifted}/{} sensitive benchmarks shifted",
        sensitive.len()
    );
}

#[test]
fn pipeline_surfaces_program_errors_cleanly() {
    use tvm::ProgramBuilder;
    // division by zero inside a candidate loop must come back as a
    // clean VmError from whichever pipeline stage executes it
    let mut b = ProgramBuilder::new();
    let main = b.function("main", 0, false, |f| {
        let (a, i) = (f.local(), f.local());
        f.ci(16).newarray(tvm::ElemKind::Int).st(a);
        f.for_in(i, 0.into(), 16.into(), |f| {
            f.arr_set(
                a,
                |f| {
                    f.ld(i);
                },
                |f| {
                    f.ci(100).ld(i).ci(8).isub().idiv();
                },
            );
        });
        f.ret_void();
    });
    let p = b.finish(main).unwrap();
    let err = run_pipeline(&p, &PipelineConfig::default()).unwrap_err();
    assert_eq!(err, tvm::VmError::DivisionByZero);
}

/// Full-suite validation at the paper's data sizes.
#[test]
fn default_size_suite_is_healthy() {
    for bench in all() {
        let program = (bench.build)(DataSize::Default);
        let r = run_pipeline(&program, &PipelineConfig::default())
            .unwrap_or_else(|e| panic!("{} failed: {e}", bench.name));
        assert!(!r.selection.chosen.is_empty(), "{}", bench.name);
        assert!(
            r.profiling_slowdown() < 1.27,
            "{}: slowdown {:.3}",
            bench.name,
            r.profiling_slowdown()
        );
        let err = (r.predicted_normalized() - r.actual_normalized()).abs();
        assert!(err < 0.35, "{}: |err| {err:.2}", bench.name);
    }
}
