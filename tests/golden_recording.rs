//! Golden-fixture test for the compact `Recording` serialization.
//!
//! The committed fixture pins the on-disk format: if either the event
//! stream of the benchmark or the binary encoding changes, this test
//! fails and the fixture must be regenerated deliberately (run the
//! ignored `regenerate_fixture` test) and the format version bumped
//! when the layout changed.

use benchsuite::DataSize;
use jrpm::annotate::{annotate, AnnotateOptions};
use tvm::record::{Recording, RecordingSink};
use tvm::Interp;

const FIXTURE_BENCH: &str = "FourierTest";
const FIXTURE_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/fixtures/fouriertest_small.trace"
);

/// Records the fixture benchmark's annotated profiling run.
fn record_fixture_program() -> Recording {
    let bench = benchsuite::by_name(FIXTURE_BENCH).expect("fixture benchmark exists");
    let program = (bench.build)(DataSize::Small);
    let cands = cfgir::extract_candidates(&program);
    let ann = annotate(&program, &cands, &AnnotateOptions::profiling()).expect("annotate");
    let mut sink = RecordingSink::default();
    Interp::run(&ann, &mut sink).expect("profiling run");
    sink.into_recording()
}

#[test]
fn golden_fixture_matches_a_fresh_recording() {
    let golden = Recording::load(FIXTURE_PATH).expect("fixture loads");
    let fresh = record_fixture_program();
    assert_eq!(
        golden.events.len(),
        fresh.events.len(),
        "event count drifted from the committed fixture"
    );
    assert_eq!(
        golden, fresh,
        "event stream drifted from the committed fixture"
    );
    // byte-exactness of the encoder, not just value round-tripping
    let on_disk = std::fs::read(FIXTURE_PATH).expect("fixture bytes");
    assert_eq!(
        on_disk,
        fresh.to_bytes(),
        "serialized bytes drifted from the committed fixture"
    );
}

#[test]
fn fixture_round_trips_through_save_and_load() {
    let fresh = record_fixture_program();
    let dir = std::env::temp_dir().join(format!("tvm-golden-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("roundtrip.trace");
    fresh.save(&path).expect("save");
    let loaded = Recording::load(&path).expect("load");
    assert_eq!(fresh, loaded);
    std::fs::remove_dir_all(&dir).ok();
}

/// Rewrites the committed fixture; run manually after an intentional
/// format or benchmark change:
/// `cargo test -p jrpm --test golden_recording -- --ignored`
#[test]
#[ignore = "regenerates the committed fixture"]
fn regenerate_fixture() {
    for b in benchsuite::all() {
        let program = (b.build)(DataSize::Small);
        let cands = cfgir::extract_candidates(&program);
        let ann = annotate(&program, &cands, &AnnotateOptions::profiling()).expect("annotate");
        let mut sink = RecordingSink::default();
        Interp::run(&ann, &mut sink).expect("profiling run");
        let rec = sink.into_recording();
        println!(
            "{:<16} {:>8} events {:>9} bytes",
            b.name,
            rec.events.len(),
            rec.to_bytes().len()
        );
    }
    let fresh = record_fixture_program();
    fresh.save(FIXTURE_PATH).expect("write fixture");
    println!(
        "wrote {FIXTURE_PATH}: {} events, {} bytes",
        fresh.events.len(),
        fresh.to_bytes().len()
    );
}
