//! Property tests on the Hydra TLS schedule solver.

use hydra_sim::collect::{Access, AccessKind, EntryTrace, IterTrace};
use hydra_sim::config::TlsConfig;
use hydra_sim::sim::simulate_entry;
use proptest::prelude::*;
use tvm::isa::LoopId;

fn arb_iter() -> impl Strategy<Value = IterTrace> {
    (
        50u32..500,
        prop::collection::vec((0u32..50, 0u32..32, prop::bool::ANY), 0..8),
    )
        .prop_map(|(cycles, accesses)| {
            let mut acc: Vec<Access> = accesses
                .into_iter()
                .map(|(relpct, slot, is_store)| Access {
                    rel: relpct * cycles / 50,
                    addr: 0x2000 + slot * 8,
                    kind: if is_store {
                        AccessKind::Store
                    } else {
                        AccessKind::Load
                    },
                })
                .collect();
            acc.sort_by_key(|a| a.rel);
            IterTrace {
                cycles,
                accesses: acc,
            }
        })
}

fn arb_entry() -> impl Strategy<Value = EntryTrace> {
    prop::collection::vec(arb_iter(), 1..24).prop_map(|iters| {
        let seq: u64 = iters.iter().map(|i| u64::from(i.cycles)).sum();
        EntryTrace {
            loop_id: LoopId(0),
            start: 0,
            iters,
            tail_cycles: 0,
            seq_cycles: seq,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn tls_time_respects_fundamental_bounds(entry in arb_entry()) {
        let cfg = TlsConfig::default();
        let r = simulate_entry(&entry, &cfg);
        let n = entry.iters.len() as u64;
        let max_iter = entry.iters.iter().map(|i| u64::from(i.cycles)).max().unwrap_or(0);
        // lower bound: overheads + the longest single thread
        prop_assert!(r.tls_cycles >= cfg.startup + cfg.shutdown + max_iter);
        // speedup can never exceed the processor count
        let speedup = entry.seq_cycles as f64 / r.tls_cycles as f64;
        prop_assert!(speedup <= cfg.processors as f64 + 1e-9, "speedup {speedup}");
        prop_assert_eq!(r.threads, n);
    }

    #[test]
    fn serial_execution_upper_bounds_worst_case(entry in arb_entry()) {
        // even a violation storm cannot be much worse than running the
        // threads back to back: each thread's restart chain is bounded
        // by its producers' finish times
        let cfg = TlsConfig::default();
        let r = simulate_entry(&entry, &cfg);
        let n = entry.iters.len() as u64;
        let serial_with_overheads = entry.seq_cycles
            + cfg.startup
            + cfg.shutdown
            + n * (cfg.eoi + cfg.comm_delay + cfg.violation_restart)
            + entry.seq_cycles; // generous slack for restart re-execution
        prop_assert!(
            r.tls_cycles <= serial_with_overheads,
            "tls {} vs bound {}",
            r.tls_cycles,
            serial_with_overheads
        );
    }

    #[test]
    fn synchronization_never_hurts(entry in arb_entry()) {
        let with_sync = TlsConfig::default();
        let without = TlsConfig { sync_after_violation: false, ..with_sync };
        let a = simulate_entry(&entry, &with_sync);
        let b = simulate_entry(&entry, &without);
        // sync converts restarts into stalls: fewer violations, and
        // the schedule cannot be slower by more than rounding effects
        prop_assert!(a.violations <= b.violations);
        prop_assert!(a.tls_cycles <= b.tls_cycles + 1);
    }

    #[test]
    fn simulation_is_deterministic(entry in arb_entry()) {
        let cfg = TlsConfig::default();
        let a = simulate_entry(&entry, &cfg);
        let b = simulate_entry(&entry, &cfg);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn adding_a_dependency_never_speeds_things_up(entry in arb_entry()) {
        let cfg = TlsConfig::default();
        let base = simulate_entry(&entry, &cfg);
        // add a store at the end of the first thread and a load at the
        // start of the last thread
        let mut harder = entry.clone();
        let n = harder.iters.len();
        let c0 = harder.iters[0].cycles;
        harder.iters[0].accesses.push(Access {
            rel: c0.saturating_sub(1),
            addr: 0x00BE_EF00,
            kind: AccessKind::Store,
        });
        harder.iters[n - 1].accesses.insert(0, Access {
            rel: 0,
            addr: 0x00BE_EF00,
            kind: AccessKind::Load,
        });
        let r = simulate_entry(&harder, &cfg);
        prop_assert!(r.tls_cycles >= base.tls_cycles);
    }
}

#[test]
fn four_independent_threads_fill_four_cpus() {
    let cfg = TlsConfig::default();
    let iters: Vec<IterTrace> = (0..4)
        .map(|_| IterTrace {
            cycles: 1000,
            accesses: vec![],
        })
        .collect();
    let entry = EntryTrace {
        loop_id: LoopId(0),
        start: 0,
        iters,
        tail_cycles: 0,
        seq_cycles: 4000,
    };
    let r = simulate_entry(&entry, &cfg);
    // all four run concurrently: startup + thread + eoi + shutdown
    assert_eq!(r.tls_cycles, 25 + 1000 + 5 + 25);
}

#[test]
fn set_conflicts_overflow_despite_low_line_count() {
    // Table 1: the L1 speculative load state is 4-way. Five lines
    // mapping to the same set overflow it even though the total is far
    // below the 512-line capacity — the tracer's direct-mapped,
    // associativity-blind analysis cannot see this (paper section 5.3).
    let cfg = TlsConfig::default();
    let n_sets = cfg.ld_line_limit / cfg.ld_associativity; // 128
    let stride = n_sets * 32; // same set every time
    let accesses: Vec<Access> = (0..5)
        .map(|k| Access {
            rel: 10 + k,
            addr: k * stride,
            kind: AccessKind::Load,
        })
        .collect();
    let e = EntryTrace {
        loop_id: LoopId(0),
        start: 0,
        iters: vec![IterTrace {
            cycles: 100,
            accesses,
        }],
        tail_cycles: 0,
        seq_cycles: 100,
    };
    let r = simulate_entry(&e, &cfg);
    assert_eq!(r.overflows, 1, "5 conflicting lines must overflow 4 ways");

    // the same five lines spread across sets fit comfortably
    let spread: Vec<Access> = (0..5)
        .map(|k| Access {
            rel: 10 + k,
            addr: k * 32,
            kind: AccessKind::Load,
        })
        .collect();
    let e2 = EntryTrace {
        loop_id: LoopId(0),
        start: 0,
        iters: vec![IterTrace {
            cycles: 100,
            accesses: spread,
        }],
        tail_cycles: 0,
        seq_cycles: 100,
    };
    assert_eq!(simulate_entry(&e2, &cfg).overflows, 0);
}
