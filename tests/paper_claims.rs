//! The paper's headline numeric claims, asserted end to end.

use benchsuite::DataSize;
use jrpm::pipeline::{run_pipeline, PipelineConfig};
use jrpm::slowdown::software_comparison;
use test_tracer::estimate::{estimate, EstimatorParams};
use test_tracer::hwcost::{hydra_budget, CostParams};
use test_tracer::stats::StlStats;

/// "Total hardware requirements for implementing TEST are minimal …
/// < 1% of the total CMP transistor count."
#[test]
fn test_hardware_costs_under_one_percent() {
    let budget = hydra_budget(&CostParams::default(), 8);
    assert!(budget.share("Comparator bank") < 0.01);
    // and the CMP total lands near the paper's 115.8M estimate
    let total = budget.total();
    assert!((100_000_000..130_000_000).contains(&total), "total {total}");
}

/// "…causes only minor slowdowns to programs during analysis (3-25%)"
/// — on the paper's own running example.
#[test]
fn huffman_profiles_within_the_slowdown_band() {
    let bench = benchsuite::by_name("Huffman").unwrap();
    let program = (bench.build)(DataSize::Small);
    let r = run_pipeline(&program, &PipelineConfig::default()).unwrap();
    let slow = r.profiling_slowdown() - 1.0;
    assert!(
        (0.0..0.30).contains(&slow),
        "Huffman slowdown {:.1}%",
        slow * 100.0
    );
}

/// "…a software-only implementation … slows execution over 100x
/// during analysis."
#[test]
fn software_only_profiling_exceeds_one_hundred_x() {
    let bench = benchsuite::by_name("compress").unwrap();
    let program = (bench.build)(DataSize::Small);
    let cands = cfgir::extract_candidates(&program);
    let c = software_comparison(&program, &cands).unwrap();
    assert!(
        c.sw_slowdown > 100.0,
        "software slowdown {:.0}x",
        c.sw_slowdown
    );
    assert!(
        c.hw_slowdown < 1.5,
        "hardware slowdown {:.2}x",
        c.hw_slowdown
    );
}

/// "…we expect maximal speedup if the average critical arc length is
/// at least ¾ the average thread size."
#[test]
fn three_quarters_rule_holds_in_the_estimator() {
    let params = EstimatorParams {
        comm_delay: 0,
        ..EstimatorParams::default()
    };
    let mut s = StlStats {
        entries: 1,
        threads: 10_000,
        cycles: 10_000_000, // 1000-cycle threads
        ..StlStats::default()
    };
    s.arcs_t1 = 9_999;
    s.arc_len_sum_t1 = 9_999 * 750;
    let at = estimate(&s, &params);
    assert!((at.base_speedup - 4.0).abs() < 1e-6, "{}", at.base_speedup);
    s.arc_len_sum_t1 = 9_999 * 749;
    let below = estimate(&s, &params);
    assert!(below.base_speedup < 4.0);
}

/// Table 3: Equation 2 chooses Huffman's outer decode loop over the
/// inner tree-descent loop.
#[test]
fn equation_two_prefers_huffmans_outer_loop() {
    let bench = benchsuite::by_name("Huffman").unwrap();
    let program = (bench.build)(DataSize::Small);
    let r = run_pipeline(&program, &PipelineConfig::default()).unwrap();
    let outer = r
        .profile
        .stl
        .iter()
        .filter(|(l, _)| r.profile.dominant_parent(**l).is_none())
        .max_by_key(|(_, s)| s.cycles)
        .map(|(l, _)| *l)
        .unwrap();
    let inners = r.profile.children_of(Some(outer));
    assert!(!inners.is_empty(), "decode nest not observed");
    assert!(
        r.selection.chosen.iter().any(|c| c.loop_id == outer),
        "outer decode loop must be selected"
    );
    for inner in inners {
        assert!(
            r.selection.chosen.iter().all(|c| c.loop_id != inner),
            "inner loop must not be selected alongside the outer"
        );
    }
}

/// Figure 9: the gated-copy loop is judged (almost) serial by TEST
/// although parallelism exists at every n-th iteration.
#[test]
fn figure9_pathology_misleads_test() {
    let p = jrpm_fig9(8);
    let r = run_pipeline(&p, &PipelineConfig::default()).unwrap();
    let (outer, stats) = r.profile.stl.iter().max_by_key(|(_, s)| s.cycles).unwrap();
    assert!(stats.arc_freq_t1() > 0.5, "freq {}", stats.arc_freq_t1());
    let est = &r.selection.estimates[outer];
    assert!(
        est.speedup < 1.6,
        "TEST should conclude near-serial, got {:.2}",
        est.speedup
    );
}

/// The Figure 9 kernel, inlined (the bench crate has the same shape).
fn jrpm_fig9(n: i64) -> tvm::Program {
    use tvm::{Cond, ElemKind, ProgramBuilder};
    let mut b = ProgramBuilder::new();
    let main = b.function("main", 0, false, |f| {
        let (a, i, x, k) = (f.local(), f.local(), f.local(), f.local());
        f.ci(4096).newarray(ElemKind::Int).st(a);
        f.for_in(i, 1.into(), 2000.into(), |f| {
            f.if_icmp(
                Cond::Ne,
                |f| {
                    f.ld(i).ci(n - 1).iand().ci(0);
                },
                |f| {
                    f.arr_get(a, |f| {
                        f.ld(i).ci(1).isub().ci(4095).iand();
                    })
                    .st(x);
                    f.for_in(k, 0.into(), 8.into(), |f| {
                        f.ld(x).ci(3).imul().ci(1).iadd().st(x);
                        f.ld(x).ld(x).ci(5).iushr().ixor().st(x);
                    });
                    f.arr_set(
                        a,
                        |f| {
                            f.ld(i).ci(4095).iand();
                        },
                        |f| {
                            f.ld(x);
                        },
                    );
                },
            );
        });
        f.ret_void();
    });
    b.finish(main).unwrap()
}

/// Dynamic depth stays within the eight comparator banks for the whole
/// suite ("eight comparator banks are sufficient to analyze most of
/// the benchmark programs").
#[test]
fn eight_banks_cover_the_suite() {
    for bench in benchsuite::all() {
        let program = (bench.build)(DataSize::Small);
        let r = run_pipeline(&program, &PipelineConfig::default()).unwrap();
        assert!(
            r.profile.max_dynamic_depth <= 8,
            "{}: dynamic depth {}",
            bench.name,
            r.profile.max_dynamic_depth
        );
        let untraced: u64 = r.profile.stl.values().map(|s| s.untraced_entries).sum();
        assert_eq!(untraced, 0, "{}: untraced entries", bench.name);
    }
}

/// §4.1: "Our experiments so far have not found many method call
/// return … decompositions that are either not covered by similar
/// loop decompositions or have significant coverage" — loop STLs must
/// dominate method forks on the suite.
#[test]
fn loop_decompositions_dominate_method_forks() {
    use test_tracer::MethodTracer;
    let mut loops_win = 0;
    let mut total = 0;
    for name in [
        "EmFloatPnt",
        "NumHeapSort",
        "IDEA",
        "NeuralNet",
        "FourierTest",
    ] {
        let bench = benchsuite::by_name(name).unwrap();
        let program = (bench.build)(DataSize::Small);
        let report = run_pipeline(&program, &PipelineConfig::default()).unwrap();
        let loop_save = 1.0 - report.predicted_normalized();

        let mut mt = MethodTracer::new();
        let run = tvm::Interp::run(&program, &mut mt).unwrap();
        let stats = mt.into_stats();
        let fork_save = test_tracer::rank_sites(&stats, run.cycles, 10)
            .first()
            .map(|m| m.coverage * (1.0 - 1.0 / m.speedup))
            .unwrap_or(0.0);
        total += 1;
        if loop_save > fork_save {
            loops_win += 1;
        }
    }
    assert!(loops_win >= total - 1, "loops won only {loops_win}/{total}");
}
