//! Property tests: the hardware tracer against the exact software
//! oracle.
//!
//! With unbounded capacities the hardware model must agree with the
//! software implementation on every statistic, for arbitrary event
//! streams. With real capacities it may only *miss* dependencies
//! (FIFO eviction, aliasing), never invent them.

use proptest::prelude::*;
use test_tracer::config::TracerConfig;
use test_tracer::software::SoftwareTracer;
use test_tracer::tracer::TestTracer;
use tvm::isa::{FuncId, LoopId, Pc};
use tvm::trace::TraceSink;

/// A synthetic trace event.
#[derive(Debug, Clone)]
enum Ev {
    Load(u32),
    Store(u32),
    LocalLoad(u16),
    LocalStore(u16),
    Eoi,
}

fn event_strategy() -> impl Strategy<Value = Ev> {
    prop_oneof![
        (0u32..64).prop_map(|a| Ev::Load(0x1000 + a * 8)),
        (0u32..64).prop_map(|a| Ev::Store(0x1000 + a * 8)),
        (0u16..4).prop_map(Ev::LocalLoad),
        (0u16..4).prop_map(Ev::LocalStore),
        Just(Ev::Eoi),
    ]
}

fn drive(sink: &mut dyn TraceSink, events: &[Ev]) {
    let pc = Pc {
        func: FuncId(0),
        idx: 0,
    };
    let l = LoopId(0);
    sink.loop_enter(l, 4, 1, 10);
    let mut now = 10;
    for e in events {
        now += 7;
        match e {
            Ev::Load(a) => sink.heap_load(*a, now, pc),
            Ev::Store(a) => sink.heap_store(*a, now, pc),
            Ev::LocalLoad(v) => sink.local_load(*v, 1, now, pc),
            Ev::LocalStore(v) => sink.local_store(*v, 1, now, pc),
            Ev::Eoi => sink.loop_iter(l, now),
        }
    }
    sink.loop_iter(l, now + 1);
    sink.loop_exit(l, now + 2);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn unbounded_hardware_matches_the_oracle(events in prop::collection::vec(event_strategy(), 1..200)) {
        let mut hw = TestTracer::new(TracerConfig::unbounded());
        let mut sw = SoftwareTracer::new();
        drive(&mut hw, &events);
        drive(&mut sw, &events);
        let hp = hw.into_profile();
        let sp = sw.into_profile();
        let h = &hp.stl[&LoopId(0)];
        let s = &sp.stl[&LoopId(0)];
        prop_assert_eq!(h.threads, s.threads);
        prop_assert_eq!(h.entries, s.entries);
        prop_assert_eq!(h.arcs_t1, s.arcs_t1);
        prop_assert_eq!(h.arc_len_sum_t1, s.arc_len_sum_t1);
        prop_assert_eq!(h.arcs_lt, s.arcs_lt);
        prop_assert_eq!(h.arc_len_sum_lt, s.arc_len_sum_lt);
        prop_assert_eq!(h.overflow_threads, s.overflow_threads);
        prop_assert_eq!(h.max_st_lines, s.max_st_lines);
        prop_assert_eq!(h.max_ld_lines, s.max_ld_lines);
        prop_assert_eq!(h.cycles, s.cycles);
        prop_assert_eq!(h.thread_size_sum, s.thread_size_sum);
        prop_assert_eq!(h.thread_size_sq_sum, s.thread_size_sq_sum);
    }

    #[test]
    fn real_capacities_never_invent_dependencies(events in prop::collection::vec(event_strategy(), 1..200)) {
        let mut hw = TestTracer::new(TracerConfig {
            store_ts_lines: 4, // aggressively tiny history
            ..TracerConfig::default()
        });
        let mut sw = SoftwareTracer::new();
        drive(&mut hw, &events);
        drive(&mut sw, &events);
        let hp = hw.into_profile();
        let sp = sw.into_profile();
        let h = &hp.stl[&LoopId(0)];
        let s = &sp.stl[&LoopId(0)];
        // heap arcs can be lost to eviction; local arcs are exact
        prop_assert!(h.arcs_t1 + h.arcs_lt <= s.arcs_t1 + s.arcs_lt);
        prop_assert_eq!(h.threads, s.threads);
    }

    #[test]
    fn arc_lengths_are_bounded_by_elapsed_time(events in prop::collection::vec(event_strategy(), 1..150)) {
        let mut hw = TestTracer::new(TracerConfig::default());
        drive(&mut hw, &events);
        let p = hw.into_profile();
        let s = &p.stl[&LoopId(0)];
        let span = p.end_time; // all events happen before end_time
        if let Some(avg) = s.arc_len_sum_t1.checked_div(s.arcs_t1) {
            prop_assert!(avg <= span);
        }
        if let Some(avg) = s.arc_len_sum_lt.checked_div(s.arcs_lt) {
            prop_assert!(avg <= span);
        }
        prop_assert!(s.overflow_threads <= s.threads);
    }
}

#[test]
fn masked_slots_are_ignored_by_the_bank() {
    let pc = Pc {
        func: FuncId(0),
        idx: 0,
    };
    let l = LoopId(0);
    let mut masked = TestTracer::new(TracerConfig::default());
    masked.set_local_mask(l, 0b01); // slot 1 excluded
    let mut open = TestTracer::new(TracerConfig::default());
    for t in [&mut masked, &mut open] {
        t.loop_enter(l, 2, 1, 0);
        t.local_store(1, 1, 5, pc);
        t.loop_iter(l, 10);
        t.local_load(1, 1, 12, pc);
        t.loop_iter(l, 20);
        t.loop_exit(l, 21);
    }
    assert_eq!(masked.into_profile().stl[&l].arcs_t1, 0);
    assert_eq!(open.into_profile().stl[&l].arcs_t1, 1);
}
