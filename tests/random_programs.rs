//! Structured program fuzzing: arbitrary nested-loop programs through
//! the entire pipeline.
//!
//! A recursive statement grammar (loops, branches, array reads/writes,
//! local updates) is compiled with the TraceVM builder; for every
//! generated program the whole stack must hold its invariants:
//! verification passes, execution is deterministic, annotation
//! preserves semantics, and the pipeline produces sane predictions.

use jrpm::annotate::{annotate, AnnotateOptions};
use jrpm::pipeline::{run_pipeline, PipelineConfig};
use proptest::prelude::*;
use tvm::{Cond, ElemKind, FnBuilder, Interp, Local, NullSink, Program, ProgramBuilder};

const ARRAY_LEN: i64 = 64;
const N_TEMPS: u8 = 3;
const MAX_DEPTH: u8 = 3;

#[derive(Debug, Clone)]
enum Expr {
    Const(i8),
    Temp(u8),
    LoopVar(u8),
    Add(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
}

#[derive(Debug, Clone)]
enum Stmt {
    /// `a[e1 & 63] = e2`
    ArrWrite(Expr, Expr),
    /// `tN = a[e & 63]`
    ArrRead(u8, Expr),
    /// `tN = e`
    SetTemp(u8, Expr),
    /// `for v in 0..trips { body }`
    For(u8, Vec<Stmt>),
    /// `if e1 < e2 { then } else { other }`
    If(Expr, Expr, Vec<Stmt>, Vec<Stmt>),
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        any::<i8>().prop_map(Expr::Const),
        (0..N_TEMPS).prop_map(Expr::Temp),
        (0..MAX_DEPTH).prop_map(Expr::LoopVar),
    ];
    leaf.prop_recursive(2, 8, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::Xor(Box::new(a), Box::new(b))),
        ]
    })
}

fn arb_stmt() -> impl Strategy<Value = Stmt> {
    let leaf = prop_oneof![
        (arb_expr(), arb_expr()).prop_map(|(i, v)| Stmt::ArrWrite(i, v)),
        ((0..N_TEMPS), arb_expr()).prop_map(|(t, e)| Stmt::ArrRead(t, e)),
        ((0..N_TEMPS), arb_expr()).prop_map(|(t, e)| Stmt::SetTemp(t, e)),
    ];
    leaf.prop_recursive(u32::from(MAX_DEPTH), 24, 4, |inner| {
        prop_oneof![
            ((2u8..6), prop::collection::vec(inner.clone(), 1..4))
                .prop_map(|(trips, body)| Stmt::For(trips, body)),
            (
                arb_expr(),
                arb_expr(),
                prop::collection::vec(inner.clone(), 1..3),
                prop::collection::vec(inner, 0..2)
            )
                .prop_map(|(a, b, t, e)| Stmt::If(a, b, t, e)),
        ]
    })
}

fn arb_program_ast() -> impl Strategy<Value = Vec<Stmt>> {
    prop::collection::vec(arb_stmt(), 1..6)
}

struct Ctx {
    arr: Local,
    temps: Vec<Local>,
    loop_vars: Vec<Local>,
    depth: usize,
}

fn emit_expr(f: &mut FnBuilder, ctx: &Ctx, e: &Expr) {
    match e {
        Expr::Const(c) => {
            f.ci(i64::from(*c));
        }
        Expr::Temp(t) => {
            f.ld(ctx.temps[*t as usize]);
        }
        Expr::LoopVar(v) => {
            // unopened loop vars read as 0 (locals default-init)
            f.ld(ctx.loop_vars[*v as usize % ctx.loop_vars.len()]);
        }
        Expr::Add(a, b) => {
            emit_expr(f, ctx, a);
            emit_expr(f, ctx, b);
            f.iadd();
        }
        Expr::Mul(a, b) => {
            emit_expr(f, ctx, a);
            emit_expr(f, ctx, b);
            f.imul();
        }
        Expr::Xor(a, b) => {
            emit_expr(f, ctx, a);
            emit_expr(f, ctx, b);
            f.ixor();
        }
    }
}

fn emit_stmt(f: &mut FnBuilder, ctx: &mut Ctx, s: &Stmt) {
    match s {
        Stmt::ArrWrite(i, v) => {
            f.ld(ctx.arr);
            emit_expr(f, ctx, i);
            f.ci(ARRAY_LEN - 1).iand();
            emit_expr(f, ctx, v);
            f.astore();
        }
        Stmt::ArrRead(t, e) => {
            f.ld(ctx.arr);
            emit_expr(f, ctx, e);
            f.ci(ARRAY_LEN - 1).iand();
            f.aload();
            f.st(ctx.temps[*t as usize]);
        }
        Stmt::SetTemp(t, e) => {
            emit_expr(f, ctx, e);
            f.st(ctx.temps[*t as usize]);
        }
        Stmt::For(trips, body) => {
            if ctx.depth >= ctx.loop_vars.len() {
                // depth exhausted: inline the body once
                for st in body {
                    emit_stmt(f, ctx, st);
                }
                return;
            }
            let v = ctx.loop_vars[ctx.depth];
            ctx.depth += 1;
            let trips = i64::from(*trips);
            let body = body.clone();
            // cannot capture ctx mutably twice; emit manually
            let head = f.new_label();
            let exit = f.new_label();
            f.ci(0).st(v);
            f.bind(head);
            f.ld(v).ci(trips).br_icmp(Cond::Ge, exit);
            for st in &body {
                emit_stmt(f, ctx, st);
            }
            f.inc(v, 1);
            f.goto(head);
            f.bind(exit);
            ctx.depth -= 1;
        }
        Stmt::If(a, b, then_b, else_b) => {
            let else_l = f.new_label();
            let end = f.new_label();
            emit_expr(f, ctx, a);
            emit_expr(f, ctx, b);
            f.br_icmp(Cond::Ge, else_l);
            for st in then_b {
                emit_stmt(f, ctx, st);
            }
            f.goto(end);
            f.bind(else_l);
            for st in else_b {
                emit_stmt(f, ctx, st);
            }
            f.bind(end);
        }
    }
}

fn compile(ast: &[Stmt]) -> Program {
    let mut b = ProgramBuilder::new();
    let main = b.function("main", 0, true, |f| {
        let arr = f.local();
        let temps: Vec<Local> = (0..N_TEMPS).map(|_| f.local()).collect();
        let loop_vars: Vec<Local> = (0..MAX_DEPTH).map(|_| f.local()).collect();
        f.ci(ARRAY_LEN).newarray(ElemKind::Int).st(arr);
        let mut ctx = Ctx {
            arr,
            temps,
            loop_vars,
            depth: 0,
        };
        for s in ast {
            emit_stmt(f, &mut ctx, s);
        }
        // checksum so results are comparable
        let (sum, i) = (f.local(), f.local());
        f.ci(0).st(sum);
        f.for_in(i, 0.into(), ARRAY_LEN.into(), |f| {
            f.ld(sum)
                .arr_get(ctx.arr, |f| {
                    f.ld(i);
                })
                .ixor()
                .ld(sum)
                .ci(3)
                .imul()
                .iadd()
                .st(sum);
        });
        f.ld(sum).ret();
    });
    b.finish(main).expect("generated program must verify")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn generated_programs_run_deterministically(ast in arb_program_ast()) {
        let p = compile(&ast);
        let a = Interp::run(&p, &mut NullSink).unwrap();
        let b = Interp::run(&p, &mut NullSink).unwrap();
        prop_assert_eq!(a.ret, b.ret);
        prop_assert_eq!(a.cycles, b.cycles);
    }

    #[test]
    fn annotation_preserves_generated_semantics(ast in arb_program_ast()) {
        let p = compile(&ast);
        let plain = Interp::run(&p, &mut NullSink).unwrap();
        let cands = cfgir::extract_candidates(&p);
        for opts in [AnnotateOptions::base(), AnnotateOptions::profiling()] {
            let ann = annotate(&p, &cands, &opts).unwrap();
            let r = Interp::run(&ann, &mut NullSink).unwrap();
            prop_assert_eq!(plain.ret, r.ret);
            prop_assert!(r.cycles >= plain.cycles);
        }
    }

    #[test]
    fn pipeline_is_sane_on_generated_programs(ast in arb_program_ast()) {
        let p = compile(&ast);
        let r = run_pipeline(&p, &PipelineConfig::default()).unwrap();
        let pred = r.predicted_normalized();
        prop_assert!(pred > 0.0 && pred <= 1.0 + 1e-9, "pred {pred}");
        let act = r.actual_normalized();
        prop_assert!(act > 0.0, "act {act}");
        // chosen loops are pairwise non-nested (Equation 2 invariant)
        for a in &r.selection.chosen {
            let mut cur = r.profile.dominant_parent(a.loop_id);
            while let Some(parent) = cur {
                prop_assert!(
                    r.selection.chosen.iter().all(|c| c.loop_id != parent),
                    "{} selected inside selected {}", a.loop_id, parent
                );
                cur = r.profile.dominant_parent(parent);
            }
        }
        // coverage cannot exceed the whole program
        prop_assert!(r.selection.coverage() <= 1.0 + 1e-9);
    }
}
