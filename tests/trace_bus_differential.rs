//! Differential test: the trace bus must be an invisible transport.
//!
//! For every benchsuite program, profiling through the bus — batched
//! single-thread replay, threaded fan-out replay, and live threaded
//! execution — produces a `Profile` bit-identical to feeding the
//! `TestTracer` callbacks directly from the interpreter, and the
//! pipeline's derived sequential baseline equals a real run of the
//! un-annotated program.

use benchsuite::DataSize;
use jrpm::annotate::{annotate, AnnotateOptions};
use jrpm::pipeline::{run_pipeline, BusConfig, PipelineConfig};
use test_tracer::{TestTracer, TracerConfig};
use tvm::bus::{record_batches, TraceBus, DEFAULT_BATCH_CAPACITY};
use tvm::trace::CountingSink;
use tvm::{Interp, NullSink};

fn tracer(cands: &cfgir::ProgramCandidates) -> TestTracer {
    TestTracer::with_masks(TracerConfig::default(), cands.tracked_masks())
}

#[test]
fn bus_replay_matches_direct_profiling_on_the_whole_suite() {
    for b in benchsuite::all() {
        let program = (b.build)(DataSize::Small);
        let cands = cfgir::extract_candidates(&program);
        let ann = annotate(&program, &cands, &AnnotateOptions::profiling()).expect("annotate");

        let mut direct = tracer(&cands);
        let run = Interp::run(&ann, &mut direct).expect("direct run");
        let direct = direct.into_profile();

        let (rec_run, batches) = record_batches(&ann, DEFAULT_BATCH_CAPACITY).expect("record");
        assert_eq!(
            run.cycles, rec_run.cycles,
            "{}: recording changed the timing",
            b.name
        );
        let events: u64 = batches.iter().map(|batch| batch.len() as u64).sum();

        // single-thread batched replay
        let mut serial = tracer(&cands);
        TraceBus::new()
            .sink("profile", &mut serial)
            .replay(&batches);
        assert_eq!(
            serial.into_profile(),
            direct,
            "{}: serial bus replay diverged",
            b.name
        );

        // threaded fan-out: the profiler plus a second sink, each on
        // its own consumer thread behind a shallow channel
        let mut threaded = tracer(&cands);
        let mut counter = CountingSink::default();
        let report = TraceBus::new()
            .channel_depth(2)
            .sink("profile", &mut threaded)
            .sink("count", &mut counter)
            .replay_threaded(&batches);
        assert_eq!(
            threaded.into_profile(),
            direct,
            "{}: threaded fan-out replay diverged",
            b.name
        );
        for sink in &report.sinks {
            assert_eq!(
                sink.dropped_batches, 0,
                "{}: {} dropped",
                b.name, sink.label
            );
            assert_eq!(
                sink.events, events,
                "{}: {} lost events",
                b.name, sink.label
            );
        }

        // live threaded execution (no materialized recording)
        let mut live = tracer(&cands);
        let (live_run, live_report) = TraceBus::new()
            .sink("profile", &mut live)
            .run_threaded(&ann, 512)
            .expect("live threaded run");
        assert_eq!(live_run.cycles, run.cycles, "{}", b.name);
        assert_eq!(
            live.into_profile(),
            direct,
            "{}: live threaded run diverged",
            b.name
        );
        assert_eq!(live_report.sinks[0].dropped_batches, 0, "{}", b.name);

        // the derived sequential baseline is exact: annotated cycles
        // minus tallied annotation overhead equals a real plain run
        let plain = Interp::run(&program, &mut NullSink).expect("plain run");
        assert_eq!(
            run.cycles - run.annotation_cycles.total(),
            plain.cycles,
            "{}: derived sequential baseline broke",
            b.name
        );
    }
}

#[test]
fn threaded_pipeline_matches_serial_numerics() {
    for name in ["Huffman", "compress", "MipsSimulator", "db"] {
        let b = benchsuite::by_name(name).expect("benchmark exists");
        let program = (b.build)(DataSize::Small);
        let serial = run_pipeline(&program, &PipelineConfig::default()).expect("serial pipeline");
        let threaded_cfg = PipelineConfig {
            bus: BusConfig {
                batch_capacity: 1024,
                channel_depth: 4,
                threaded: true,
            },
            ..PipelineConfig::default()
        };
        let threaded = run_pipeline(&program, &threaded_cfg).expect("threaded pipeline");

        assert_eq!(serial.profile, threaded.profile, "{name}: profile");
        assert_eq!(serial.seq_cycles, threaded.seq_cycles, "{name}: seq");
        assert_eq!(
            serial.profile_cycles, threaded.profile_cycles,
            "{name}: profile cycles"
        );
        let chosen = |r: &jrpm::pipeline::PipelineReport| -> Vec<tvm::LoopId> {
            r.selection.chosen.iter().map(|c| c.loop_id).collect()
        };
        assert_eq!(chosen(&serial), chosen(&threaded), "{name}: selection");
        assert_eq!(
            serial.actual.baseline_cycles, threaded.actual.baseline_cycles,
            "{name}: baseline"
        );
        assert_eq!(
            serial.actual.tls_cycles, threaded.actual.tls_cycles,
            "{name}: tls cycles"
        );
        assert!(threaded.obs.interpreter_passes <= 2, "{name}: pass count");
    }
}
