//! Regression seeds from differential-fuzzing runs.
//!
//! Each seed listed here once tripped an oracle (see the notes on the
//! individual tests); the full stack must stay green on all of them,
//! plus a small fresh smoke range, forever.

use fuzzgen::oracle::{check_seed, check_spec};
use fuzzgen::spec::{Expr, HelperSpec, ProgramSpec, Stmt};

#[test]
fn smoke_seed_range_stays_green() {
    for seed in 0..50 {
        if let Err(f) = check_seed(seed) {
            panic!("seed {seed}: {f}");
        }
    }
}

/// Seed 398 made `cfgir::memdep` claim a guaranteed cross-iteration
/// RAW for a static that an *earlier unconditional store in the same
/// iteration* rewrites before every load — the recurrence never
/// reaches across iterations, so the memdep-stream oracle flagged the
/// demotion as a false alarm. Fixed by the masking-store check in
/// `analyze_loop`.
#[test]
fn seed_398_masked_static_recurrence() {
    check_seed(398).unwrap_or_else(|f| panic!("seed 398 regressed: {f}"));
}

/// Seed 1546 was the same false claim routed through a call: the
/// masking store lives in a helper function's body, invisible until
/// `collect_accesses` learned transitive may-store summaries for
/// calls. Fixed by `Access::Opaque` masking sites.
#[test]
fn seed_1546_masking_store_behind_call() {
    check_seed(1546).unwrap_or_else(|f| panic!("seed 1546 regressed: {f}"));
}

/// The shrunk form of seed 398: `for { g0 = -3; g0 = g0; }`. The
/// second statement is a (load, store) recurrence pair on `g0`, but
/// the unconditional `g0 = -3` earlier in the iteration masks the
/// load every time.
#[test]
fn shrunk_masked_static_recurrence() {
    let spec = ProgramSpec {
        seed: 0,
        n_locals: 2,
        n_globals: 1,
        n_fields: 0,
        arrays: vec![],
        helper: None,
        body: vec![Stmt::For {
            var: 1,
            from: 0,
            to: 8,
            step: 1,
            body: vec![
                Stmt::GlobalWrite(0, Expr::Const(-3)),
                Stmt::GlobalWrite(0, Expr::Global(0)),
            ],
        }],
    };
    check_spec(&spec).unwrap_or_else(|f| panic!("shrunk 398 shape regressed: {f}"));
}

/// The shrunk form of seed 1546: `for { l0 = helper(l0); g0 = g0; }`
/// where the helper ends with `putstatic g0`. The masking store sits
/// behind the call boundary.
#[test]
fn shrunk_masking_store_behind_call() {
    let spec = ProgramSpec {
        seed: 0,
        n_locals: 2,
        n_globals: 1,
        n_fields: 0,
        arrays: vec![],
        helper: Some(HelperSpec {
            trip: 3,
            reads_global: false,
            writes_global: true,
        }),
        body: vec![Stmt::For {
            var: 1,
            from: 0,
            to: 8,
            step: 1,
            body: vec![
                Stmt::Assign(0, Expr::Call(Box::new(Expr::Local(0)))),
                Stmt::GlobalWrite(0, Expr::Global(0)),
            ],
        }],
    };
    check_spec(&spec).unwrap_or_else(|f| panic!("shrunk 1546 shape regressed: {f}"));
}
