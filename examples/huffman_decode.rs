//! The paper's running example: Huffman decode (Figure 3, Table 3).
//!
//! ```text
//! cargo run --release -p jrpm --example huffman_decode
//! ```
//!
//! Profiles the Huffman benchmark, prints the Figure 3 statistics for
//! the decode nest (thread sizes, critical arc frequencies and
//! lengths for the bit cursor `in_p` and output cursor `out_p`), and
//! shows Equation 2 choosing the outer loop as the paper's Table 3
//! does.

use benchsuite::DataSize;
use jrpm::pipeline::{run_pipeline, PipelineConfig};

fn main() {
    let bench = benchsuite::by_name("Huffman").expect("suite has Huffman");
    let program = (bench.build)(DataSize::Default);
    let report = run_pipeline(&program, &PipelineConfig::default()).expect("pipeline runs");

    // find the decode nest: the most expensive top-level loop and its
    // dynamic children
    let outer = report
        .profile
        .stl
        .iter()
        .filter(|(l, _)| report.profile.dominant_parent(**l).is_none())
        .max_by_key(|(_, s)| s.cycles)
        .map(|(l, _)| *l)
        .expect("profiled outer loop");
    let inners = report.profile.children_of(Some(outer));

    println!("=== Figure 3 statistics (accumulated counters) ===");
    for l in std::iter::once(outer).chain(inners.iter().copied()) {
        let s = &report.profile.stl[&l];
        let role = if l == outer { "outer" } else { "inner" };
        println!(
            "{role} loop {l}:\n  \
             threads = {}   entries = {}   avg iterations/entry = {:.1}\n  \
             avg thread size = {:.1} cycles\n  \
             critical arc freq to t-1  = {:.2}  (avg length {:.1})\n  \
             critical arc freq to <t-1 = {:.2}  (avg length {:.1})\n  \
             overflow frequency = {:.3}",
            s.threads,
            s.entries,
            s.avg_iterations_per_entry(),
            s.avg_thread_size(),
            s.arc_freq_t1(),
            s.avg_arc_len_t1(),
            s.arc_freq_lt(),
            s.avg_arc_len_lt(),
            s.overflow_freq(),
        );
    }

    println!();
    println!("=== Dependency profile (extended TEST, section 6.3) ===");
    for (pc, bin) in report.profile.pc_bins.hottest(outer).into_iter().take(4) {
        println!(
            "  consumer at pc {pc}: {} arcs, avg length {:.0} cycles (min {})",
            bin.count,
            bin.avg_len(),
            bin.min_len
        );
    }

    println!();
    println!("=== Table 3: Equation 2 comparison ===");
    let os = &report.profile.stl[&outer];
    let oe = &report.selection.estimates[&outer];
    println!(
        "outer: sequential {} cycles, speedup {:.2}, TLS {} cycles",
        os.cycles, oe.speedup, oe.est_tls_cycles
    );
    let mut nested = os.cycles;
    for l in &inners {
        let is = &report.profile.stl[l];
        let ie = &report.selection.estimates[l];
        println!(
            "inner {l}: sequential {} cycles, speedup {:.2}, TLS {} cycles",
            is.cycles, ie.speedup, ie.est_tls_cycles
        );
        nested = nested - is.cycles + ie.est_tls_cycles.min(is.cycles);
    }
    println!(
        "outer-as-STL {} cycles  vs  inner-as-STL + serial rest {} cycles",
        oe.est_tls_cycles, nested
    );
    let picked_outer = report.selection.chosen.iter().any(|c| c.loop_id == outer);
    println!(
        "Equation 2 picks the {} loop{}",
        if picked_outer { "OUTER" } else { "inner" },
        if picked_outer {
            " — as in the paper's Table 3"
        } else {
            ""
        }
    );

    println!();
    println!(
        "actual speculative run: {:.2}x whole-program speedup ({} violations)",
        1.0 / report.actual_normalized(),
        report
            .actual
            .per_loop
            .values()
            .map(|l| l.violations)
            .sum::<u64>()
    );
}
