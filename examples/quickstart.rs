//! Quickstart: write a small program, let TEST find its parallelism.
//!
//! ```text
//! cargo run --release -p jrpm --example quickstart
//! ```
//!
//! Builds a tiny image-blur-style kernel with one parallel loop and
//! one accumulator loop, runs the full Jrpm pipeline (candidate
//! extraction → annotation → TEST profiling → Equation 1+2 selection
//! → speculative execution on the Hydra model) and prints what
//! happened.

use jrpm::pipeline::{run_pipeline, PipelineConfig};
use tvm::{ElemKind, ProgramBuilder};

fn main() {
    // ---- "compile" a program with the TraceVM builder ----
    let n: i64 = 300;
    let mut b = ProgramBuilder::new();
    let main_fn = b.function("main", 0, true, |f| {
        let (src, dst, i, acc) = (f.local(), f.local(), f.local(), f.local());
        f.ci(n + 2).newarray(ElemKind::Int).st(src);
        f.ci(n).newarray(ElemKind::Int).st(dst);
        // fill the source
        f.for_in(i, 0.into(), (n + 2).into(), |f| {
            f.arr_set(
                src,
                |f| {
                    f.ld(i);
                },
                |f| {
                    f.ld(i).ci(37).imul().ci(255).iand();
                },
            );
        });
        // blur: dst[i] = (src[i] + src[i+1] + src[i+2]) / 3  — parallel
        f.for_in(i, 0.into(), n.into(), |f| {
            f.arr_set(
                dst,
                |f| {
                    f.ld(i);
                },
                |f| {
                    f.arr_get(src, |f| {
                        f.ld(i);
                    });
                    f.arr_get(src, |f| {
                        f.ld(i).ci(1).iadd();
                    })
                    .iadd();
                    f.arr_get(src, |f| {
                        f.ld(i).ci(2).iadd();
                    })
                    .iadd()
                    .ci(3)
                    .idiv();
                },
            );
        });
        // checksum — a sum reduction the speculative compiler eliminates
        f.ci(0).st(acc);
        f.for_in(i, 0.into(), n.into(), |f| {
            f.ld(acc)
                .arr_get(dst, |f| {
                    f.ld(i);
                })
                .iadd()
                .st(acc);
        });
        f.ld(acc).ret();
    });
    let program = b.finish(main_fn).expect("program verifies");

    // ---- run the whole Jrpm pipeline ----
    let report = run_pipeline(&program, &PipelineConfig::default()).expect("pipeline runs");

    println!(
        "candidate loops found : {}",
        report.candidates.total_loops()
    );
    println!(
        "rejected statically   : {}",
        report.candidates.rejected.len()
    );
    println!(
        "profiling slowdown    : {:.1}% (paper: 3-25%)",
        (report.profiling_slowdown() - 1.0) * 100.0
    );
    println!();
    for (l, s) in &report.profile.stl {
        let e = &report.selection.estimates[l];
        println!(
            "loop {l}: {} threads of ~{:.0} cycles, arc freq {:.2}, est. speedup {:.2}",
            s.threads,
            s.avg_thread_size(),
            s.arc_freq_t1(),
            e.speedup
        );
    }
    println!();
    println!("TEST selected:");
    for c in &report.selection.chosen {
        println!(
            "  {} covering {:.0}% of execution, estimated {:.2}x",
            c.loop_id,
            c.coverage * 100.0,
            c.estimate.speedup
        );
    }
    println!();
    println!(
        "whole-program predicted: {:.2}x   actual on Hydra: {:.2}x",
        1.0 / report.predicted_normalized(),
        1.0 / report.actual_normalized()
    );
}
