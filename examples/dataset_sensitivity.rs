//! Data-set sensitivity (paper §6.1).
//!
//! ```text
//! cargo run --release -p jrpm --example dataset_sensitivity
//! ```
//!
//! "For these programs, loops lower in a loop nest must be chosen with
//! larger data sets because the number of inner loop iterations will
//! rise, increasing the probability of overflowing speculative state
//! when speculating higher in a loop nest." This example sweeps
//! LuFactor and euler across data sizes and prints, per size, the
//! selected loops' static heights and the overflow frequencies TEST
//! observed — the drift toward inner loops is visible directly.

use benchsuite::DataSize;
use jrpm::pipeline::{run_pipeline, PipelineConfig};

fn main() {
    for name in ["LuFactor", "euler", "NeuralNet"] {
        let bench = benchsuite::by_name(name).expect("benchmark exists");
        println!("=== {name} ===");
        println!(
            "{:>9} {:>10} {:>12} {:>14} {:>12}",
            "size", "selected", "avg height", "max ovf freq", "pred. speedup"
        );
        for size in [DataSize::Small, DataSize::Default, DataSize::Large] {
            let program = (bench.build)(size);
            let r = run_pipeline(&program, &PipelineConfig::default()).expect("pipeline runs");
            let sel = r.selection.chosen_above(0.005);
            let avg_height = if sel.is_empty() {
                0.0
            } else {
                sel.iter()
                    .map(|c| f64::from(r.candidates.candidate(c.loop_id).height))
                    .sum::<f64>()
                    / sel.len() as f64
            };
            let max_ovf = r
                .profile
                .stl
                .values()
                .map(|s| s.overflow_freq())
                .fold(0.0f64, f64::max);
            println!(
                "{:>9} {:>10} {:>12.2} {:>14.2} {:>12.2}",
                format!("{size:?}"),
                sel.len(),
                avg_height,
                max_ovf,
                1.0 / r.predicted_normalized()
            );
        }
        println!();
    }
    println!(
        "Larger data sets raise overflow frequencies on outer loops and pull\n\
         selection toward the inner levels — the paper's dynamic-selection\n\
         advantage over one-time static decomposition."
    );
}
