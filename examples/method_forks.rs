//! Method-call-return speculation analysis (paper §4.1's alternative
//! thread shape).
//!
//! ```text
//! cargo run --release -p jrpm --example method_forks
//! ```
//!
//! Builds a program with two call sites — one whose result the caller
//! consumes immediately (a bad fork) and one whose result is consumed
//! only at the very end (a good fork) — and lets the
//! `MethodTracer` measure both, no annotations required: the call and
//! return units feed it directly.

use test_tracer::{rank_sites, MethodTracer};
use tvm::{ElemKind, Interp, ProgramBuilder};

fn main() {
    let n: i64 = 200;
    let mut b = ProgramBuilder::new();
    // an expensive pure function: sum of k squares
    let work = b.function("work", 1, true, |f| {
        let (k, i, acc) = (f.param(0), f.local(), f.local());
        f.ci(0).st(acc);
        f.for_in(i, 0.into(), tvm::build::Operand::Loc(k), |f| {
            f.ld(acc).ld(i).ld(i).imul().iadd().st(acc);
        });
        f.ld(acc).ret();
    });
    let main_fn = b.function("main", 0, true, |f| {
        let (a, i, early, late) = (f.local(), f.local(), f.local(), f.local());
        f.ci(256).newarray(ElemKind::Int).st(a);
        f.for_in(i, 0.into(), n.into(), |f| {
            // BAD fork: result needed immediately by the next store
            f.ci(60).call(work).st(early);
            f.arr_set(
                a,
                |f| {
                    f.ld(i).ci(255).iand();
                },
                |f| {
                    f.ld(early);
                },
            );
            // GOOD fork: result parked until the end of the iteration
            f.ci(60).call(work).st(late);
            // a long independent tail the callee could overlap
            f.arr_set(
                a,
                |f| {
                    f.ld(i).ci(7).iadd().ci(255).iand();
                },
                |f| {
                    f.ld(i).ci(3).imul();
                },
            );
            let k = f.local();
            f.for_in(k, 0.into(), 40.into(), |f| {
                f.arr_set(
                    a,
                    |f| {
                        f.ld(k).ci(64).iadd();
                    },
                    |f| {
                        f.ld(k).ld(i).ixor();
                    },
                );
            });
            // ... and only now consumed
            f.arr_set(
                a,
                |f| {
                    f.ld(i).ci(15).iadd().ci(255).iand();
                },
                |f| {
                    f.ld(late);
                },
            );
        });
        f.arr_get(a, |f| {
            f.ci(0);
        })
        .ret();
    });
    let _ = work;
    let program = b.finish(main_fn).expect("program verifies");

    let mut tracer = MethodTracer::new();
    let run = Interp::run(&program, &mut tracer).expect("program runs");
    let stats = tracer.into_stats();
    let ranked = rank_sites(&stats, run.cycles, 10);

    println!("method-call-return fork candidates (best first):");
    for site in &ranked {
        println!(
            "  call at pc {}: {} invocations, callee ~{:.0} cycles, \
             dependent {:.0}%, est. fork speedup {:.2}x, coverage {:.0}%",
            site.site,
            site.stats.invocations,
            site.stats.avg_callee_cycles(),
            site.stats.dependence_freq() * 100.0,
            site.speedup,
            site.coverage * 100.0,
        );
    }
    assert!(ranked.len() >= 2, "both call sites observed");
    assert!(
        ranked[0].speedup > ranked.last().unwrap().speedup,
        "the parked-result call must rank above the immediate one"
    );
    println!();
    println!(
        "the fork whose result is parked until the end of the iteration\n\
         overlaps its callee almost fully; the immediately-consumed one\n\
         cannot — the distinction the paper's section 4.1 is about."
    );
}
