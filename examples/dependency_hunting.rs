//! Dependency hunting with the extended TEST (paper §6.3).
//!
//! ```text
//! cargo run --release -p jrpm --example dependency_hunting
//! ```
//!
//! The paper reports that TEST's per-PC dependency statistics "quickly
//! identified one or two critical dependencies that could be
//! restructured or removed" in NumericSort, Huffman, db and
//! MipsSimulator. This example recreates that workflow: a histogram
//! kernel keeps a running "last bucket" cursor in the heap purely for
//! convenience; the profile pinpoints the consumer of the serializing
//! arc; removing it recovers the parallelism.

use jrpm::pipeline::{run_pipeline, PipelineConfig};
use tvm::{ElemKind, Program, ProgramBuilder};

/// Histogram with an incidental serializing dependency: every
/// iteration reads and rewrites `last` (a heap global) even though no
/// result depends on it.
fn build(with_cursor_bug: bool) -> Program {
    let n: i64 = 3000;
    let mut b = ProgramBuilder::new();
    let last = b.global(ElemKind::Int);
    let main = b.function("main", 0, true, |f| {
        let (hist, i, v) = (f.local(), f.local(), f.local());
        f.ci(64).newarray(ElemKind::Int).st(hist);
        f.for_in(i, 0.into(), n.into(), |f| {
            // v = hash-ish of i
            f.ld(i)
                .ci(2654435761)
                .imul()
                .ci(16)
                .iushr()
                .ci(63)
                .iand()
                .st(v);
            if with_cursor_bug {
                // "remember where we were" — reads last iteration's
                // store: an accidental loop-carried dependency
                f.getstatic(last).ld(v).iadd().ci(63).iand().st(v);
                f.ld(v).putstatic(last);
            }
            f.arr_set(
                hist,
                |f| {
                    f.ld(v);
                },
                |f| {
                    f.arr_get(hist, |f| {
                        f.ld(v);
                    })
                    .ci(1)
                    .iadd();
                },
            );
        });
        f.arr_get(hist, |f| {
            f.ci(0);
        })
        .ret();
    });
    b.finish(main).expect("program verifies")
}

fn main() {
    println!("--- version with the accidental cursor dependency ---");
    let buggy = build(true);
    let r1 = run_pipeline(&buggy, &PipelineConfig::default()).expect("pipeline runs");
    let (hot_loop, _) = r1
        .profile
        .stl
        .iter()
        .max_by_key(|(_, s)| s.cycles)
        .expect("a loop profiled");
    let est1 = r1.selection.estimates[hot_loop];
    println!(
        "hot loop {hot_loop}: estimated speedup {:.2} (predicted whole-program {:.2}x)",
        est1.speedup,
        1.0 / r1.predicted_normalized()
    );
    println!("extended TEST dependency profile:");
    for (pc, bin) in r1.profile.pc_bins.hottest(*hot_loop).into_iter().take(3) {
        println!(
            "  consumer pc {pc}: {} arcs, avg {:.0} cycles, min {} — {}",
            bin.count,
            bin.avg_len(),
            bin.min_len,
            // the paper's rule of thumb: arcs shorter than (p-1)/p of
            // the thread size limit speedup (§4.3)
            if bin.avg_len() < r1.profile.stl[hot_loop].avg_thread_size() * 0.75 {
                "SHORT: restructure or remove this access"
            } else {
                "long: harmless"
            }
        );
    }

    println!();
    println!("--- after removing the cursor (the programmer's fix) ---");
    let fixed = build(false);
    let r2 = run_pipeline(&fixed, &PipelineConfig::default()).expect("pipeline runs");
    let (hot2, _) = r2
        .profile
        .stl
        .iter()
        .max_by_key(|(_, s)| s.cycles)
        .expect("a loop profiled");
    let est2 = r2.selection.estimates[hot2];
    println!(
        "hot loop {hot2}: estimated speedup {:.2} (predicted whole-program {:.2}x)",
        est2.speedup,
        1.0 / r2.predicted_normalized()
    );
    println!(
        "actual on Hydra: {:.2}x -> {:.2}x",
        1.0 / r1.actual_normalized(),
        1.0 / r2.actual_normalized()
    );
    assert!(
        est2.speedup > est1.speedup,
        "removing the dependency must raise the estimate"
    );
}
