//! Offline subset of the `criterion` benchmarking API.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate supplies the slice of criterion the workspace's benches use:
//! `Criterion::benchmark_group`, `BenchmarkGroup::{throughput,
//! sample_size, bench_function, finish}`, `Bencher::iter`,
//! `Throughput::Elements` and the `criterion_group!`/`criterion_main!`
//! macros. Each benchmark is timed with `std::time::Instant` over a
//! fixed warm-up plus measurement window and reports mean time per
//! iteration (and element throughput when configured) to stdout.
//! Passing `--test` (as `cargo bench -- --test` does in CI smoke runs)
//! runs every benchmark body once without timing.

use std::time::{Duration, Instant};

/// Work-amount declaration used to derive throughput numbers.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per benchmark iteration.
    Elements(u64),
    /// Bytes processed per benchmark iteration.
    Bytes(u64),
}

/// Top-level benchmark driver.
pub struct Criterion {
    test_mode: bool,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            test_mode,
            measurement: Duration::from_millis(400),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            criterion: self,
            throughput: None,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, None, self.test_mode, self.measurement, f);
        self
    }
}

/// A named collection of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares per-iteration work for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; sampling here is time-bounded.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement = d;
        self
    }

    /// Times `f` and prints mean time per iteration.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            name,
            self.throughput,
            self.criterion.test_mode,
            self.criterion.measurement,
            f,
        );
        self
    }

    /// Ends the group (separator line only; nothing is buffered).
    pub fn finish(self) {
        println!();
    }
}

/// Passed to each benchmark closure; `iter` times the routine.
pub struct Bencher {
    test_mode: bool,
    measurement: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Calls `routine` repeatedly and records total elapsed time.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        if self.test_mode {
            std::hint::black_box(routine());
            self.iters = 1;
            self.elapsed = Duration::ZERO;
            return;
        }
        // warm-up: run until ~10% of the window has passed, also
        // calibrating how many iterations fit
        let warmup = self.measurement / 10;
        let start = Instant::now();
        let mut warm_iters = 0u64;
        while start.elapsed() < warmup || warm_iters == 0 {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let per_iter = start.elapsed() / warm_iters.max(1) as u32;
        let budget = self.measurement.saturating_sub(start.elapsed());
        let planned = if per_iter.is_zero() {
            1_000_000
        } else {
            (budget.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 10_000_000) as u64
        };
        let timed = Instant::now();
        for _ in 0..planned {
            std::hint::black_box(routine());
        }
        self.elapsed = timed.elapsed();
        self.iters = planned;
    }
}

fn run_one<F>(
    name: &str,
    throughput: Option<Throughput>,
    test_mode: bool,
    measurement: Duration,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        test_mode,
        measurement,
        iters: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    if test_mode {
        println!("  {name}: ok (test mode)");
        return;
    }
    if b.iters == 0 {
        println!("  {name}: benchmark body never called iter()");
        return;
    }
    let per_iter_ns = b.elapsed.as_nanos() as f64 / b.iters as f64;
    let mut line = format!(
        "  {name}: {} / iter ({} iters)",
        fmt_ns(per_iter_ns),
        b.iters
    );
    match throughput {
        Some(Throughput::Elements(n)) if per_iter_ns > 0.0 => {
            let rate = n as f64 / (per_iter_ns / 1e9);
            line.push_str(&format!(", {:.1} Melem/s", rate / 1e6));
        }
        Some(Throughput::Bytes(n)) if per_iter_ns > 0.0 => {
            let rate = n as f64 / (per_iter_ns / 1e9);
            line.push_str(&format!(", {:.1} MiB/s", rate / (1024.0 * 1024.0)));
        }
        _ => {}
    }
    println!("{line}");
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Declares the benchmark entry list for `criterion_main!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Expands to `main` running each declared group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_bodies() {
        let mut c = Criterion {
            test_mode: true,
            measurement: Duration::from_millis(1),
        };
        let mut hits = 0u32;
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(4)).sample_size(10);
        g.bench_function("one", |b| b.iter(|| hits += 1));
        g.finish();
        assert_eq!(hits, 1);
    }

    #[test]
    fn formats_scale() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("µs"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
    }
}
