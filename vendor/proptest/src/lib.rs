//! Offline subset of the `proptest` API.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate supplies the slice of proptest the workspace's property tests
//! use: `Strategy` with `prop_map`/`prop_recursive`, tuple and range
//! strategies, `Just`, `any`, `prop::collection::vec`, `prop::bool::ANY`,
//! the `proptest!`/`prop_oneof!`/`prop_assert*` macros and
//! `ProptestConfig`. Generation is a deterministic splitmix64 stream
//! seeded per test; there is no shrinking — a failing case panics with
//! the generated inputs' `Debug` rendering so it can be reproduced by
//! hand.

use std::fmt::Debug;
use std::rc::Rc;

pub mod test_runner {
    /// Per-test configuration (case count only).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// A failed property case: carries the assertion message.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Builds a failure with a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }
}

/// Deterministic splitmix64 generator.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A value generator. The `proptest` strategies used in this workspace
/// map onto plain deterministic sampling; shrinking is not implemented.
pub trait Strategy {
    /// The generated value type.
    type Value: Debug;

    /// Samples one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U: Debug, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        let s = Rc::new(self);
        BoxedStrategy {
            sample: Rc::new(move |rng| s.gen_value(rng)),
        }
    }

    /// Builds recursive structures: up to `depth` nested applications
    /// of `recurse`, bottoming out at `self` (the leaf strategy). The
    /// `desired_size`/`expected_branch_size` hints are accepted for
    /// API compatibility and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + Clone + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut level = self.clone().boxed();
        for _ in 0..depth {
            let branch = recurse(level).boxed();
            let leaf = self.clone().boxed();
            level = BoxedStrategy {
                sample: Rc::new(move |rng| {
                    // favor branching slightly so deep shapes appear
                    if rng.below(3) < 2 {
                        branch.gen_value(rng)
                    } else {
                        leaf.gen_value(rng)
                    }
                }),
            };
        }
        level
    }
}

/// Type-erased strategy handle (cheaply cloneable).
pub struct BoxedStrategy<T> {
    sample: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            sample: Rc::clone(&self.sample),
        }
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        (self.sample)(rng)
    }
}

/// `prop_map` adapter.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    U: Debug,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn gen_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized + Debug {
    /// Samples an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64() * 2e6 - 1e6
    }
}

/// Strategy over a type's whole domain.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(std::marker::PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (`any::<i8>()` style).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u64;
                (lo + rng.below(span) as i128) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn gen_value(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.gen_value(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

pub mod collection {
    use super::{Strategy, TestRng};

    /// Vec strategy: length drawn from `len`, elements from `element`.
    #[derive(Clone)]
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S, L> Strategy for VecStrategy<S, L>
    where
        S: Strategy,
        L: Strategy<Value = usize>,
    {
        type Value = Vec<S::Value>;

        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.gen_value(rng);
            (0..n).map(|_| self.element.gen_value(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, size_range)`.
    pub fn vec<S: Strategy>(
        element: S,
        len: impl Into<SizeRange>,
    ) -> VecStrategy<S, std::ops::Range<usize>> {
        VecStrategy {
            element,
            len: len.into().0,
        }
    }

    /// Accepted length specifications.
    pub struct SizeRange(pub std::ops::Range<usize>);

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange(r)
        }
    }

    impl From<std::ops::Range<i32>> for SizeRange {
        fn from(r: std::ops::Range<i32>) -> Self {
            SizeRange(r.start as usize..r.end as usize)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange(n..n + 1)
        }
    }
}

#[allow(clippy::module_inception)]
pub mod bool {
    use super::{Strategy, TestRng};

    /// Uniform boolean strategy (`prop::bool::ANY`).
    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;

    /// The canonical boolean strategy.
    pub const ANY: BoolAny = BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;

        fn gen_value(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Union of same-valued strategies (the `prop_oneof!` backend).
pub struct Union<T> {
    variants: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a uniform union over `variants`.
    pub fn new(variants: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!variants.is_empty(), "prop_oneof! needs at least one arm");
        Union { variants }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            variants: self.variants.clone(),
        }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.variants.len() as u64) as usize;
        self.variants[i].gen_value(rng)
    }
}

/// Uniformly picks one of the listed strategies each sample.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Fails the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}: {}", stringify!($cond), format!($($fmt)*)
            )));
        }
    };
}

/// Fails the current property case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($a), stringify!($b), a, b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?}): {}",
                stringify!($a), stringify!($b), a, b, format!($($fmt)*)
            )));
        }
    }};
}

/// Declares property tests: each `name(pat in strategy, ...)` runs its
/// body over `cases` sampled inputs and panics with the generated
/// inputs on the first failure.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $( $(#[$meta:meta])* fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                // distinct deterministic stream per test
                let test_seed = {
                    let name = concat!(module_path!(), "::", stringify!($name));
                    name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                        (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
                    })
                };
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::new(
                        test_seed ^ (u64::from(case)).wrapping_mul(0x2545_f491_4f6c_dd1d),
                    );
                    let mut inputs: Vec<String> = Vec::new();
                    let sampled = ( $( {
                        let v = $crate::Strategy::gen_value(&($strat), &mut rng);
                        inputs.push(format!("{:?}", v));
                        v
                    }, )+ );
                    let ( $($pat,)+ ) = sampled;
                    #[allow(unused_mut)]
                    let mut run = || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        Ok(())
                    };
                    if let Err(e) = run() {
                        panic!(
                            "proptest case {}/{} failed: {}\ninputs:\n  {}",
                            case + 1,
                            config.cases,
                            e.0,
                            inputs.join("\n  ")
                        );
                    }
                }
            }
        )*
    };
}

pub mod prelude {
    //! Everything the property tests import.
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_oneof, proptest, Just, Strategy};

    pub mod prop {
        //! The `prop::` namespace (`prop::collection`, `prop::bool`).
        pub use crate::bool;
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn determinism() {
        let mut a = crate::TestRng::new(7);
        let mut b = crate::TestRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::new(3);
        for _ in 0..1000 {
            let v = (10u32..20).gen_value(&mut rng);
            assert!((10..20).contains(&v));
            let f = (-4.0f64..4.0).gen_value(&mut rng);
            assert!((-4.0..4.0).contains(&f));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn vec_lengths_respect_range(v in prop::collection::vec(0u8..10, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            for x in &v {
                prop_assert!(*x < 10, "x = {}", x);
            }
        }

        #[test]
        fn oneof_and_map_compose(v in prop_oneof![
            (0u32..4).prop_map(|x| x * 2),
            Just(99u32),
        ]) {
            prop_assert!(v == 99 || v < 8);
            prop_assert_eq!(v % 2, if v == 99 { 1 } else { 0 });
        }
    }
}
